"""Benchmark fixtures: run an experiment once, save + emit its report.

Each benchmark file regenerates one paper table/figure (quick scale by
default; set REPRO_FULL_SCALE=1 for the paper's concurrency-200 runs).
The rendered figure/table and the paper-vs-measured comparison land in
``benchmarks/results/<experiment>.txt`` and in the pytest output.

Knobs (environment):

* ``REPRO_JOBS=N`` — run an experiment's independent launch cells in N
  worker processes (wall-clock only; numbers are unchanged).
* ``REPRO_CACHE=1`` — serve repeated cells from the result cache.
  Off by default here: a benchmark that hits the cache measures file
  reads, not the simulator.
"""

import os
import pathlib

import pytest

from repro.experiments import get_experiment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0")
JOBS = int(os.environ.get("REPRO_JOBS", "0")) or None
USE_CACHE = os.environ.get("REPRO_CACHE", "") not in ("", "0")


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark one experiment end-to-end and persist its report."""

    def _run(experiment_id):
        result_box = {}

        def execute():
            result_box["result"] = get_experiment(experiment_id).run(
                quick=not FULL_SCALE, jobs=JOBS, use_cache=USE_CACHE
            )

        benchmark.pedantic(execute, rounds=1, iterations=1)
        result = result_box["result"]
        report = (
            f"{result.render()}\n\n{result.comparison_table()}\n"
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(report)
        print(f"\n{report}")
        # Every benchmark asserts the experiment produced comparisons.
        assert result.comparisons()
        return result

    return _run
