"""Wall-clock performance report for the simulator fast path.

Times a fixed set of experiments end-to-end (quick scale, cache off)
and writes ``BENCH_wallclock.json`` next to this file::

    python benchmarks/perf_report.py                 # measure + write
    python benchmarks/perf_report.py --check         # compare vs baseline
    python benchmarks/perf_report.py --jobs 4        # parallel cells

``--check`` compares against the committed baseline and exits non-zero
if any experiment regressed by more than ``--threshold`` (default 20%),
which is what CI runs.  After an intentional perf change, regenerate the
baseline with ``--update-baseline``.
"""

import argparse
import json
import pathlib
import platform
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent / "src"))

REPORT_PATH = HERE / "BENCH_wallclock.json"
BASELINE_PATH = HERE / "wallclock_baseline.json"

#: Experiments timed by the report (quick scale).
EXPERIMENTS = ("fig1", "fig11", "fig13c")


def measure(experiment_ids, jobs=None):
    from repro.experiments import get_experiment

    timings = {}
    for experiment_id in experiment_ids:
        experiment = get_experiment(experiment_id)
        started = time.perf_counter()
        result = experiment.run(quick=True, jobs=jobs, use_cache=False)
        elapsed = time.perf_counter() - started
        assert result.comparisons()
        timings[experiment_id] = round(elapsed, 4)
        print(f"{experiment_id:8s} {elapsed:8.3f} s")
    return timings


def check(timings, threshold):
    """Compare against the committed baseline; returns failures."""
    if not BASELINE_PATH.is_file():
        print(f"no baseline at {BASELINE_PATH}; skipping regression check")
        return []
    baseline = json.loads(BASELINE_PATH.read_text())["timings"]
    failures = []
    for experiment_id, elapsed in timings.items():
        base = baseline.get(experiment_id)
        if base is None:
            continue
        ratio = elapsed / base
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            failures.append((experiment_id, base, elapsed, ratio))
        print(
            f"{experiment_id:8s} baseline {base:7.3f} s  now {elapsed:7.3f} s "
            f"({ratio * 100:5.1f}%)  {status}"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--check", action="store_true",
                        help="fail on >threshold regression vs baseline")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional slowdown (default 0.20)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the measured timings as the new baseline")
    args = parser.parse_args(argv)

    timings = measure(EXPERIMENTS, jobs=args.jobs)
    report = {
        "timings": timings,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "jobs": args.jobs or 1,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {REPORT_PATH}")

    if args.update_baseline:
        BASELINE_PATH.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {BASELINE_PATH}")
    if args.check:
        failures = check(timings, args.threshold)
        if failures:
            print(f"{len(failures)} wall-clock regression(s) detected")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
