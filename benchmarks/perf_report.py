"""Wall-clock performance report for the simulator fast path.

Times a fixed set of experiments end-to-end (quick scale, cache off) —
including the quick scale experiment re-run over 4 cluster shards, a
spread-arrival sharded pair timed under both sync protocols
(``scale_conservative4`` / ``scale_optimistic4``, gated against each
other: optimistic must never bench slower than conservative), and the
same spread cell at 8 shards under hierarchical sync
(``scale_hier8``: relay tree + digest replies + pipelined
coordinator, riding the baseline ratio gate) —
measures raw event-engine throughput with three synthetic storms (a
dispatch-heavy mix, a timer-dense churn shape also run against the
retained heap scheduler, and an idle-daemon tick storm run with and
without the aggregated DaemonTicker), and writes
``BENCH_wallclock.json`` next to this file plus a runstamped
``BENCH_<runstamp>.json`` (a flat metric -> value map for downstream
tooling; CI uploads it as an artifact) at the repo root::

    python benchmarks/perf_report.py                 # measure + write
    python benchmarks/perf_report.py --check         # compare vs baseline
    python benchmarks/perf_report.py --jobs 4        # parallel cells
    python benchmarks/perf_report.py --sharded-speedup
                                   # heavy 48-host cell, 1 vs 8 shards
    python benchmarks/perf_report.py --compare BENCH_a.json BENCH_b.json
                                   # delta table between two runs

``--check`` compares against the committed baseline and exits non-zero
if any experiment regressed by more than ``--threshold`` (default 20%)
or either engine storm's events/sec dropped by more than the same
threshold, which is what CI runs.  After an intentional perf change,
regenerate the baseline with ``--update-baseline``.

The sharded quick scale is also timed with runtime probes armed
(``scale_probes4`` — the wall-clock telemetry plane of ``repro trace
--wallclock`` / ``repro top``), and ``--check`` gates it against the
probes-off twin: telemetry must stay in the measurement noise.
``--compare A.json B.json`` diffs two runstamped flat metric files
(older run first): every shared metric prints with its delta,
>threshold moves in the worse direction are flagged, and a flagged
move on a gated key (experiment timings, engine storms) exits
non-zero — the ad-hoc bisection tool the baseline gate is too coarse
for.

``--sharded-speedup`` is the headline number of the sharded runner: one
heavy cluster cell (48 hosts, 2000 startups) timed single-process and at
8 shards/8 worker processes, with the two summaries asserted identical.
It needs the cores to show a speedup, so it is reported, not gated.

``--optimistic-smoke`` runs a 100,000-host spread-arrival cell to
completion under hierarchical sync (optimistic workers behind the
pipelined digest-reply coordinator) and records its wall-clock,
rollback counters, speculation commit rate,
replayed-events-per-rollback, and the coordinator occupancy figures
(wait/place/reduce seconds, placement heap ops) — the scale headline
of the speculative runner (reported; takes minutes at the default
size, rescalable with ``--smoke-hosts`` / ``--smoke-concurrent`` up to
the 1,000,000-host headline run, and gated by wall clock only when
``--smoke-ceiling-s`` is set, as the weekly CI leg does).

The default report also times one adversarial rollback storm twice —
with fork checkpoints and with ``checkpoint_every=0`` — and records
the replayed-events-per-rollback of each (``checkpoint_rollback`` in
the report): the O(Δ) vs O(history) rollback-cost figure of the
checkpoint subsystem.
"""

import argparse
import json
import os
import pathlib
import platform
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
ROOT = HERE.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT))  # for tests.reference_scheduler (oracle)

REPORT_PATH = HERE / "BENCH_wallclock.json"
BASELINE_PATH = HERE / "wallclock_baseline.json"

#: Experiments timed by the report (quick scale).
EXPERIMENTS = ("fig1", "fig11", "fig13c", "scale")

#: Shard count for the gated sharded quick-scale timing.
GATE_SHARDS = 4

#: Shard count for the gated hierarchical-sync timing: 8 shards under
#: the default relay fan-in of 4 is the smallest cell that actually
#: builds a two-level relay tree (2 relays x 4 workers).
HIER_SHARDS = 8

#: Arrival rate for the sync-protocol timings: spread arrivals drive
#: the epoch protocol (a burst places everything in epoch 0 and never
#: exercises the barriers the sync modes differ on).
GATE_RATE = 150.0


def engine_events_per_sec(procs=200, rounds=200, repeats=5):
    """Raw dispatch throughput of the discrete-event engine.

    A synthetic storm with the simulator's real event mix: zero-delay
    resumes (the ready-ring fast path), mutex hand-offs, and short
    heap-scheduled timeouts.  Model callbacks are trivial, so this
    isolates the engine — `Simulator.run` dispatch, `schedule`, the
    Process trampoline, and the sync grant path.  Returns the
    best-of-``repeats`` events/sec (best-of defuses scheduler noise).
    """
    from repro.sim import Mutex, Simulator, Timeout

    def one_run():
        sim = Simulator()
        lock = Mutex(sim, name="bench")

        def worker(index):
            for _ in range(rounds):
                yield Timeout(0.0)
                yield lock.acquire()
                yield Timeout(1e-6)
                lock.release()
                yield Timeout((index % 7) * 1e-5)

        for index in range(procs):
            sim.spawn(worker(index))
        started = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - started
        return sim.events_dispatched / elapsed

    return max(one_run() for _ in range(repeats))


def _noop():
    return None


def engine_timer_events_per_sec(procs=4000, rounds=25, repeats=3,
                                sim_factory=None):
    """Dispatch throughput under a *timer-dense* storm (churn shape).

    Every worker arms a retry timer and a deadline watchdog a few
    milliseconds out and cancels both after a couple of short sleeps —
    the retry/deadline pattern of the cluster churn driver, where the
    timers are always ahead of the typical completion but the clock
    soon passes them.  Two hundred thousand timers are armed and
    cancelled without ever firing; the heap engine must carry every
    tombstone until the clock reaches its timestamp and then heappop it
    individually (O(log n) in a heap bloated with the others), while
    the timing wheel sweeps them out in bulk compactions and keeps its
    per-op structures a bucket wide.  ``sim_factory`` selects the
    engine (default: the production wheel; the report also runs
    ``tests.reference_scheduler`` for comparison).
    """
    from repro.sim import Simulator, Timeout

    make_sim = sim_factory or Simulator

    def one_run():
        sim = make_sim()

        def worker(index):
            for _ in range(rounds):
                # ~10x the event timescale: cancelled before firing,
                # but the clock passes their slots a few rounds later.
                retry = sim.call_later(
                    0.0015 + (index % 17) * 1e-4, _noop
                )
                deadline = sim.call_later(
                    0.002 + (index % 40) * 1e-4, _noop
                )
                yield Timeout(1e-4 + (index % 13) * 1e-5)
                yield Timeout(0.0)
                retry.cancel()
                deadline.cancel()

        for index in range(procs):
            sim.spawn(worker(index))
        started = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - started
        return sim.events_dispatched / elapsed

    return max(one_run() for _ in range(repeats))


def engine_daemon_tick_events_per_sec(daemons=200, ticks=1000,
                                      interval=0.004, busy_every=50,
                                      aggregated=True, repeats=3):
    """Throughput on a cluster cell's dominant event population:
    periodic daemon scan ticks that are almost always idle.

    ``daemons`` scanner loops tick every ``interval`` of virtual time;
    a driver hands a small rotating subset of them work between ticks
    (1 in ``busy_every`` per tick), so the overwhelming majority of
    ticks are no-ops — the fastiovd shape on a mostly idle cell.  With
    ``aggregated=True`` the scanners park on a shared
    :class:`~repro.sim.ticker.DaemonTicker` (one event per cell per
    tick, idle members swept with a predicate call); with False each
    scanner arms its own ``Timeout`` — the pre-ticker engine's
    behavior.  ``events_dispatched`` is identical in both modes (the
    ticker compensates for the events it elides), so the reported
    *logical* events/sec are directly comparable.
    """
    from repro.sim import DaemonTicker, Simulator, Timeout

    def one_run():
        sim = Simulator()
        work = [False] * daemons
        ticker = DaemonTicker(sim, interval) if aggregated else None

        def scanner(index):
            if ticker is not None:
                park = ticker.park(lambda: work[index])
                while True:
                    yield park
                    work[index] = False
            else:
                while True:
                    yield Timeout(interval)
                    if work[index]:
                        work[index] = False

        def driver():
            # Off-phase by half an interval so flag writes never share
            # a timestamp with scanner ticks — both modes then see the
            # exact same flag values at every tick.
            yield Timeout(interval / 2)
            for step in range(ticks):
                for j in range((step * 7) % busy_every, daemons, busy_every):
                    work[j] = True
                yield Timeout(interval)

        for index in range(daemons):
            sim.spawn(scanner(index), daemon=True)
        sim.spawn(driver())
        started = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - started
        return sim.events_dispatched / elapsed

    return max(one_run() for _ in range(repeats))


def _timed_run(factory, jobs, repeats):
    best = None
    for _ in range(repeats):
        experiment = factory()
        started = time.perf_counter()
        result = experiment.run(quick=True, jobs=jobs, use_cache=False)
        elapsed = time.perf_counter() - started
        assert result.comparisons()
        if best is None or elapsed < best:
            best = elapsed
    return round(best, 4)


def measure(experiment_ids, jobs=None, repeats=2):
    """Time each experiment end-to-end; best-of-``repeats`` per id.

    One-shot timings of 1-3 s experiments swing by 20%+ on shared CI
    runners; the minimum of two runs is what the machine can actually
    do and keeps the regression gate quiet.

    Besides the plain experiments, the quick scale run is repeated with
    the cluster split over :data:`GATE_SHARDS` shard worker processes
    (``scale_shards4``).  That timing rides the same >threshold gate, so
    a regression in shard spawn/merge overhead fails CI even on runners
    where sharding cannot be faster than single-process.
    """
    from repro.experiments import get_experiment

    timings = {}
    for experiment_id in experiment_ids:
        timings[experiment_id] = _timed_run(
            lambda: get_experiment(experiment_id), jobs, repeats
        )
        print(f"{experiment_id:14s} {timings[experiment_id]:8.3f} s")
    label = f"scale_shards{GATE_SHARDS}"
    timings[label] = _timed_run(
        lambda: get_experiment("scale").configure(shards=GATE_SHARDS),
        jobs, repeats,
    )
    print(f"{label:14s} {timings[label]:8.3f} s")
    # The same sharded run again, immediately, with runtime probes
    # armed (``repro.obs.runtime``): the telemetry plane's overhead
    # rides the baseline ratio gate, and --check additionally gates it
    # against the probes-off twin just measured — wall-clock spans
    # around every epoch-loop phase must stay in the noise, or the
    # plane is too expensive to leave on for ``repro trace`` /
    # ``repro top``.  The pair is timed back to back (not with the
    # probed leg at the end of the schedule) so both legs fork their
    # workers from the same parent-heap state; anything else charges
    # unrelated allocator growth to the probes.
    label = f"scale_probes{GATE_SHARDS}"
    previous = os.environ.get("REPRO_RUNTIME_PROBES")
    os.environ["REPRO_RUNTIME_PROBES"] = "1"
    try:
        timings[label] = _timed_run(
            lambda: get_experiment("scale").configure(shards=GATE_SHARDS),
            jobs, repeats,
        )
    finally:
        if previous is None:
            os.environ.pop("REPRO_RUNTIME_PROBES", None)
        else:
            os.environ["REPRO_RUNTIME_PROBES"] = previous
    overhead = timings[label] / timings[f"scale_shards{GATE_SHARDS}"] - 1.0
    print(f"{label:14s} {timings[label]:8.3f} s  "
          f"(probe overhead {overhead * 100:+5.1f}%)")
    # The sync-protocol pair: the same spread-arrival sharded quick
    # scale run under both barrier protocols.  Each rides the baseline
    # ratio gate, and --check additionally asserts optimistic never
    # benches slower than conservative (see check()).
    for mode in ("conservative", "optimistic"):
        label = f"scale_{mode}{GATE_SHARDS}"
        timings[label] = _timed_run(
            lambda mode=mode: get_experiment("scale").configure(
                shards=GATE_SHARDS, rate=GATE_RATE, sync=mode,
            ),
            jobs, repeats,
        )
        print(f"{label:14s} {timings[label]:8.3f} s")
    # The hierarchical coordinator at 8 shards: the same spread cell
    # through the full relay-tree / digest-reply / pipelined path.  It
    # rides the baseline ratio gate, so a regression in relay fan-out
    # or pipelining overhead fails CI even on single-core runners.
    label = f"scale_hier{HIER_SHARDS}"
    timings[label] = _timed_run(
        lambda: get_experiment("scale").configure(
            shards=HIER_SHARDS, rate=GATE_RATE, sync="hierarchical",
        ),
        jobs, repeats,
    )
    print(f"{label:14s} {timings[label]:8.3f} s")
    return timings


def measure_optimistic_stats(preset="fastiov", concurrency=40, hosts=4,
                             rate=12.0, shards=2, seed=2):
    """Rollback/speculation counters of one spread optimistic cell.

    Runs in-process (workers=0), where speculation is eager and the
    counters are deterministic — so the BENCH numbers trend cleanly
    across runs instead of following worker-scheduling noise.  Besides
    the speculation counters this exports the coordinator-side figures
    of the hierarchical work: ``placement_heap_ops`` (heap operations
    of the incremental least-loaded tracker — deterministic) and
    ``coordinator_wait_s`` (wall-clock the coordinator spent blocked on
    shard replies — trend-only, like every timing here).
    """
    from repro.cluster.churn import cluster_arrivals
    from repro.cluster.sharded import run_sharded_cluster

    stats = {}
    run_sharded_cluster(
        preset, concurrency, hosts=hosts, seed=seed, shards=shards,
        workers=0, arrivals=cluster_arrivals(seed, rate),
        sync="optimistic", engine_stats=stats,
    )
    counters = {
        key: stats[f"sync_{key}"]
        for key in ("epochs", "rollbacks", "speculated_events",
                    "replayed_events", "speculation_commits",
                    "throttled_shards", "placement_heap_ops")
    }
    counters["coordinator_wait_s"] = round(
        stats["sync_coordinator_wait_s"], 4
    )
    return counters


def measure_optimistic_smoke(hosts=100000, concurrency=5000, rate=500.0,
                             shards=4, seed=0, sync="hierarchical",
                             ceiling_s=None, live=False):
    """Completion smoke: a 100k-host-and-up cell under the speculative
    protocol (hierarchical by default: optimistic workers behind the
    pipelined digest-reply coordinator — the configuration that has to
    carry the 1M-host target).

    The cell is sized for feasibility, not realism: 2 VFs per host
    instead of the NIC's 256 (the pool dominates per-host memory) and
    a daemon scan interval that stretches with the cell
    (``0.5 s * max(1, hosts // 100000)`` — at 0.004 s, 100k mostly-idle
    hosts would spend the whole run ticking).  What it proves: the
    protocol drives a cluster three-plus orders of magnitude past the
    paper testbed to completion, with the rollback counters and the
    coordinator-occupancy figures (wait/place/reduce seconds, heap
    ops) exported.  ``--smoke-hosts`` / ``--smoke-concurrent`` rescale
    the cell (the default takes minutes; a 10k/500 smoke fits a coffee
    break; 1M hosts is the headline run).  With ``ceiling_s`` set the
    smoke *fails* (AssertionError) if the wall clock exceeds it — the
    weekly CI leg pins a ceiling on a fixed cell size so a scaling
    regression shows up as a red run, while ad-hoc headline runs stay
    unceilinged.  Returns ``(elapsed_s, counters)``.
    """
    import dataclasses

    from repro.cluster.churn import cluster_arrivals
    from repro.cluster.sharded import run_sharded_cluster
    from repro.spec import PAPER_TESTBED

    scan_interval = 0.5 * max(1, hosts // 100000)
    spec = dataclasses.replace(
        PAPER_TESTBED, fastiovd_scan_interval_s=scan_interval
    )
    stats = {}

    def drive():
        return run_sharded_cluster(
            "fastiov", concurrency, hosts=hosts, seed=seed, shards=shards,
            vf_count=2, spec=spec, arrivals=cluster_arrivals(seed, rate),
            sync=sync, engine_stats=stats,
            telemetry={} if live else None,
        )

    started = time.perf_counter()
    if live:
        # ``--top``: repaint the live engine dashboard while the smoke
        # runs (wall-clock telemetry only; the counters and the
        # summary below are byte-identical with the dashboard off).
        from repro.obs.live import LiveView

        with LiveView():
            summary = drive()
    else:
        summary = drive()
    elapsed = time.perf_counter() - started
    assert summary["count"] == concurrency, "smoke cell lost containers"
    counters = {
        key: stats[f"sync_{key}"]
        for key in ("epochs", "rollbacks", "speculated_events",
                    "replayed_events", "speculation_commits",
                    "throttled_shards", "checkpoints",
                    "checkpoint_resumes", "full_replays",
                    "placement_heap_ops")
    }
    for key in ("coordinator_wait_s", "coordinator_place_s",
                "coordinator_reduce_s"):
        counters[key] = round(stats[f"sync_{key}"], 4)
    print(f"{'smoke':14s} {elapsed:8.3f} s  "
          f"({hosts} hosts, {concurrency} containers, {sync} sync, "
          f"rollbacks={counters['rollbacks']}, "
          f"checkpoints={counters['checkpoints']})")
    print(f"{'  coordinator':14s} wait {counters['coordinator_wait_s']:.3f} s  "
          f"place {counters['coordinator_place_s']:.3f} s  "
          f"reduce {counters['coordinator_reduce_s']:.3f} s  "
          f"heap-ops {counters['placement_heap_ops']:,}")
    commits = counters["speculation_commits"]
    attempts = commits + counters["rollbacks"]
    commit_rate = commits / attempts if attempts else 1.0
    replayed_per_rollback = (
        counters["replayed_events"] / counters["rollbacks"]
        if counters["rollbacks"] else 0.0
    )
    print(f"{'  speculation':14s} commit-rate {commit_rate * 100:5.1f}%  "
          f"replayed/rollback {replayed_per_rollback:,.0f} events")
    counters["commit_rate"] = round(commit_rate, 4)
    counters["replayed_per_rollback"] = round(replayed_per_rollback, 1)
    if ceiling_s is not None:
        assert elapsed <= ceiling_s, (
            f"smoke took {elapsed:.1f} s, over the {ceiling_s:.0f} s "
            f"wall-clock ceiling — the cell's scaling regressed"
        )
    return round(elapsed, 4), counters


def measure_checkpoint_rollback(concurrency=200, hosts=4, rate=20.0,
                                shards=2, seed=11, checkpoint_every=2):
    """Rollback cost with fork checkpoints vs full replay from t=0.

    One deep-history spread cell (many epochs of committed journal) is
    driven through an adversarial rollback storm twice — the
    coordinator under-promises the ``safe`` bound and the workers
    speculate eagerly, so conflicts land on nearly every batched epoch
    — once with CoW fork checkpoints at a short cadence and once with
    ``checkpoint_every=0`` (the pre-checkpoint rebuild-and-replay
    path).  The figure of merit is *replayed events per rollback*: with
    checkpoints it is O(events since the last checkpoint) and flat in
    history depth; without, it grows with every committed epoch.  The
    two summaries are asserted identical — checkpoints move wall-clock
    only.  Returns a dict of both runs' counters and the improvement.
    """
    from repro.cluster.churn import cluster_arrivals
    from repro.cluster.sharded import run_sharded_cluster

    def storm(interval):
        stats = {}
        summary = run_sharded_cluster(
            "fastiov", concurrency, hosts=hosts, seed=seed, shards=shards,
            arrivals=cluster_arrivals(seed, rate), sync="optimistic",
            eager_speculation=True, checkpoint_every=interval,
            worker_context="fork", engine_stats=stats,
        )
        rollbacks = stats["sync_rollbacks"]
        replayed = stats["sync_replayed_events"]
        return summary, {
            "rollbacks": rollbacks,
            "replayed_events": replayed,
            "replayed_per_rollback": round(
                replayed / rollbacks if rollbacks else 0.0, 1
            ),
            "checkpoints": stats["sync_checkpoints"],
            "checkpoint_resumes": stats["sync_checkpoint_resumes"],
            "full_replays": stats["sync_full_replays"],
        }

    os.environ["REPRO_OPTIMISTIC_ADVERSARIAL_SAFE"] = "1"
    try:
        with_ckpt_summary, with_ckpt = storm(checkpoint_every)
        without_summary, without = storm(0)
    finally:
        del os.environ["REPRO_OPTIMISTIC_ADVERSARIAL_SAFE"]
    assert with_ckpt_summary == without_summary, (
        "checkpointed storm diverged from the full-replay storm"
    )
    improvement = (
        without["replayed_per_rollback"]
        / with_ckpt["replayed_per_rollback"]
        if with_ckpt["replayed_per_rollback"] else 0.0
    )
    print(f"{'ckpt-rollback':14s} "
          f"replayed/rollback {with_ckpt['replayed_per_rollback']:,.0f} "
          f"(checkpointed) vs {without['replayed_per_rollback']:,.0f} "
          f"(full replay)  {improvement:,.1f}x less replay")
    return {
        "with_checkpoints": with_ckpt,
        "full_replay": without,
        "replay_improvement_x": round(improvement, 2),
    }


def measure_sharded_speedup(shards=8, hosts=48, concurrency=2000):
    """Wall-clock speedup of one heavy cluster cell from sharding.

    Runs the same fastiov 48-host burst cell single-process and split
    over ``shards`` shard simulators in ``shards`` worker processes, and
    asserts the two summaries are identical (burst placement is
    byte-deterministic across shard counts).  Returns
    ``(t_single, t_sharded, speedup)``.
    """
    from repro.cluster.churn import run_cluster_cell

    def run(n_shards):
        started = time.perf_counter()
        summary = run_cluster_cell(
            "fastiov", concurrency, hosts=hosts, shards=n_shards
        )
        return time.perf_counter() - started, summary

    t_single, single = run(1)
    print(f"{'1 shard':14s} {t_single:8.3f} s")
    t_sharded, sharded = run(shards)
    print(f"{f'{shards} shards':14s} {t_sharded:8.3f} s")
    assert sharded == single, "sharded summary diverged from single-process"
    speedup = t_single / t_sharded
    print(f"{'speedup':14s} {speedup:8.2f} x")
    return round(t_single, 4), round(t_sharded, 4), round(speedup, 2)


#: Keys the regression gate requires in the baseline file.  A baseline
#: missing any of them predates the current report schema, and silently
#: gating against it would skip exactly the newest metrics.
REQUIRED_BASELINE_KEYS = (
    "timings",
    "engine_events_per_sec",
    "engine_timer_events_per_sec",
    "engine_daemon_tick_events_per_sec",
    "optimistic_sync",
    "checkpoint_rollback",
)

#: Timings the baseline's ``timings`` map must itself contain.  The
#: sync-protocol pair joined the schema with the optimistic runner; a
#: baseline predating it would silently skip exactly those gates.
REQUIRED_BASELINE_TIMINGS = (
    "scale",
    f"scale_shards{GATE_SHARDS}",
    f"scale_conservative{GATE_SHARDS}",
    f"scale_optimistic{GATE_SHARDS}",
    f"scale_hier{HIER_SHARDS}",
    f"scale_probes{GATE_SHARDS}",
)


def check(timings, engine_rates, threshold):
    """Compare against the committed baseline; returns failures.

    ``engine_rates`` maps baseline key -> measured events/sec; each is
    gated the same way: a drop of more than ``threshold`` fails.
    Beyond the baseline ratios, the sync-protocol pair is gated against
    *each other*: optimistic slower than conservative by more than the
    threshold fails, because the adaptive throttle exists precisely to
    bound optimistic's downside at conservative-plus-noise.  (On
    multi-core runners optimistic should win outright — speculation
    overlaps the barrier wait; a single-core runner has no idle cycles
    to hide speculation in, so parity is the honest expectation.)

    A missing or schema-stale baseline is itself a failure — a gate
    that silently skips is indistinguishable from a gate that passed.
    Regenerate with ``--update-baseline`` after intentional changes.
    """
    if not BASELINE_PATH.is_file():
        print(
            f"ERROR: no baseline at {BASELINE_PATH} — the regression "
            f"gate cannot run; regenerate with --update-baseline",
            file=sys.stderr,
        )
        return [("baseline", "missing", str(BASELINE_PATH), 0.0)]
    baseline = json.loads(BASELINE_PATH.read_text())
    missing = [key for key in REQUIRED_BASELINE_KEYS if key not in baseline]
    missing += [
        f"timings.{key}" for key in REQUIRED_BASELINE_TIMINGS
        if key not in baseline.get("timings", {})
    ]
    if missing:
        print(
            f"ERROR: baseline {BASELINE_PATH} is schema-stale (missing "
            f"{', '.join(missing)}) — regenerate with --update-baseline",
            file=sys.stderr,
        )
        return [("baseline", "schema-stale", ", ".join(missing), 0.0)]
    failures = []
    for experiment_id, elapsed in timings.items():
        base = baseline["timings"].get(experiment_id)
        if base is None:
            continue
        ratio = elapsed / base
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            failures.append((experiment_id, base, elapsed, ratio))
        print(
            f"{experiment_id:8s} baseline {base:7.3f} s  now {elapsed:7.3f} s "
            f"({ratio * 100:5.1f}%)  {status}"
        )
    for key, events_per_sec in engine_rates.items():
        base_eps = baseline.get(key)
        if not base_eps:
            continue
        ratio = events_per_sec / base_eps
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            failures.append((key, base_eps, events_per_sec, ratio))
        print(
            f"{key:8s} baseline {base_eps:9,.0f} ev/s  "
            f"now {events_per_sec:9,.0f} ev/s ({ratio * 100:5.1f}%)  {status}"
        )
    conservative = timings.get(f"scale_conservative{GATE_SHARDS}")
    optimistic = timings.get(f"scale_optimistic{GATE_SHARDS}")
    if conservative and optimistic:
        ratio = optimistic / conservative
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            failures.append(
                ("optimistic-vs-conservative", conservative, optimistic,
                 ratio)
            )
        print(
            f"{'sync-gate':8s} conservative {conservative:7.3f} s  "
            f"optimistic {optimistic:7.3f} s ({ratio * 100:5.1f}%)  {status}"
        )
    # Probes-on vs probes-off twin: the telemetry plane's per-run cost,
    # gated so probe instrumentation creep fails CI even when the
    # absolute timing still clears its baseline ratio.
    plain = timings.get(f"scale_shards{GATE_SHARDS}")
    probed = timings.get(f"scale_probes{GATE_SHARDS}")
    if plain and probed:
        ratio = probed / plain
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            failures.append(
                ("probes-vs-plain", plain, probed, ratio)
            )
        print(
            f"{'probe-gate':8s} plain {plain:7.3f} s  "
            f"probed {probed:7.3f} s ({ratio * 100:5.1f}%)  {status}"
        )
    return failures


def _metric_direction(key):
    """Whether a flat BENCH metric is better high, better low, or
    informational: ``_s`` suffixes are wall-clock (lower is better),
    ``_per_sec``/``_x``/``_rate`` are throughput-like (higher is
    better), anything else is a counter (reported, never gated)."""
    if key.endswith("_s"):
        return "lower"
    if key.endswith("_per_sec") or key.endswith("_x") \
            or key.endswith("_rate"):
        return "higher"
    return "info"


#: Flat-metric keys whose regression fails ``--compare`` with a
#: nonzero exit (the same quantities the baseline gate holds):
#: the gated experiment timings and the engine throughput storms.
GATED_COMPARE_KEYS = tuple(
    f"{name}_s" for name in REQUIRED_BASELINE_TIMINGS
) + (
    "engine_events_per_sec",
    "engine_timer_events_per_sec",
    "engine_daemon_tick_events_per_sec",
)


def compare(path_a, path_b, threshold):
    """Delta table between two runstamped BENCH metric files.

    ``A`` is the reference (older) run, ``B`` the candidate.  Every
    shared key prints with its delta; moves beyond ``threshold`` in
    the *worse* direction are marked ``REGRESSION`` (better ones
    ``improved``).  Returns the regressed keys that are *gated*
    (:data:`GATED_COMPARE_KEYS`) — the caller exits nonzero on any.
    """
    a = json.loads(pathlib.Path(path_a).read_text())
    b = json.loads(pathlib.Path(path_b).read_text())
    shared = sorted(set(a) & set(b))
    only = sorted(set(a) ^ set(b))
    width = max((len(key) for key in shared), default=10)
    gated_failures = []
    print(f"{'metric':{width}s} {'A':>12s} {'B':>12s} {'delta':>8s}")
    print("-" * (width + 36))
    for key in shared:
        va, vb = a[key], b[key]
        if not isinstance(va, (int, float)) \
                or not isinstance(vb, (int, float)):
            continue
        delta = (vb - va) / va if va else 0.0
        direction = _metric_direction(key)
        status = ""
        if direction != "info" and abs(delta) > threshold:
            worse = delta > 0 if direction == "lower" else delta < 0
            status = "  REGRESSION" if worse else "  improved"
            if worse and key in GATED_COMPARE_KEYS:
                gated_failures.append((key, va, vb, delta))
        print(f"{key:{width}s} {va:12,.4g} {vb:12,.4g} "
              f"{delta * 100:+7.1f}%{status}")
    for key in only:
        source = "A" if key in a else "B"
        print(f"{key}: only in {source}")
    if gated_failures:
        print(f"\n{len(gated_failures)} gated regression(s) beyond "
              f"{threshold * 100:.0f}%:")
        for key, va, vb, delta in gated_failures:
            print(f"  {key}: {va:,.4g} -> {vb:,.4g} ({delta * 100:+.1f}%)")
    return gated_failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--check", action="store_true",
                        help="fail on >threshold regression vs baseline")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional slowdown (default 0.20)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the measured timings as the new baseline")
    parser.add_argument("--sharded-speedup", action="store_true",
                        help="also time a heavy 48-host cell at 1 vs 8 "
                             "shards (needs cores; reported, not gated)")
    parser.add_argument("--optimistic-smoke", action="store_true",
                        help="also run the 100,000-host completion smoke "
                             "under hierarchical sync (minutes; reported, "
                             "not gated unless --smoke-ceiling-s is set)")
    parser.add_argument("--smoke-hosts", type=int, default=100000,
                        help="host count for --optimistic-smoke "
                             "(default 100000)")
    parser.add_argument("--smoke-concurrent", type=int, default=5000,
                        help="container count for --optimistic-smoke "
                             "(default 5000)")
    parser.add_argument("--smoke-ceiling-s", type=float, default=None,
                        help="fail the smoke if it exceeds this wall-clock "
                             "budget in seconds (the weekly CI leg sets "
                             "one; default: no ceiling)")
    parser.add_argument("--top", action="store_true",
                        help="repaint the repro top live dashboard while "
                             "--optimistic-smoke runs (telemetry only; "
                             "results unchanged)")
    parser.add_argument("--compare", nargs=2, default=None,
                        metavar=("A.json", "B.json"),
                        help="diff two runstamped BENCH metric files "
                             "(A = reference, B = candidate) instead of "
                             "measuring; >threshold moves are "
                             "highlighted and a regression on a gated "
                             "key exits nonzero")
    args = parser.parse_args(argv)

    if args.compare:
        failures = compare(args.compare[0], args.compare[1],
                           args.threshold)
        return 1 if failures else 0

    events_per_sec = round(engine_events_per_sec())
    print(f"{'engine':14s} {events_per_sec:9,} events/s")
    timer_eps = round(engine_timer_events_per_sec())
    print(f"{'engine-timer':14s} {timer_eps:9,} events/s")
    # The retained heap scheduler under the same timer-dense storm:
    # reported (not gated) so the wheel's advantage stays visible.
    from tests.reference_scheduler import ReferenceHeapSimulator

    timer_eps_heap = round(
        engine_timer_events_per_sec(sim_factory=ReferenceHeapSimulator)
    )
    wheel_speedup = round(timer_eps / timer_eps_heap, 2)
    print(f"{'  (heap ref)':14s} {timer_eps_heap:9,} events/s  "
          f"wheel speedup {wheel_speedup:.2f}x")
    daemon_eps = round(engine_daemon_tick_events_per_sec())
    print(f"{'engine-daemon':14s} {daemon_eps:9,} events/s")
    # The same tick storm with one private timer per daemon — the
    # pre-ticker engine's behavior; reported (not gated) so the
    # aggregation multiple stays visible.
    daemon_eps_per_timer = round(
        engine_daemon_tick_events_per_sec(aggregated=False)
    )
    ticker_speedup = round(daemon_eps / daemon_eps_per_timer, 2)
    print(f"{'  (per-timer)':14s} {daemon_eps_per_timer:9,} events/s  "
          f"ticker speedup {ticker_speedup:.2f}x")
    timings = measure(EXPERIMENTS, jobs=args.jobs)
    optimistic_sync = measure_optimistic_stats()
    print(f"{'sync-counters':14s} epochs={optimistic_sync['epochs']} "
          f"rollbacks={optimistic_sync['rollbacks']} "
          f"speculated={optimistic_sync['speculated_events']} "
          f"replayed={optimistic_sync['replayed_events']}")
    checkpoint_rollback = measure_checkpoint_rollback()
    probe_overhead = round(
        timings[f"scale_probes{GATE_SHARDS}"]
        / timings[f"scale_shards{GATE_SHARDS}"] - 1.0, 4
    )
    report = {
        "timings": timings,
        "probe_overhead_frac": probe_overhead,
        "optimistic_sync": optimistic_sync,
        "checkpoint_rollback": checkpoint_rollback,
        "engine_events_per_sec": events_per_sec,
        "engine_timer_events_per_sec": timer_eps,
        "engine_timer_events_per_sec_heap_ref": timer_eps_heap,
        "timer_wheel_speedup_x": wheel_speedup,
        "engine_daemon_tick_events_per_sec": daemon_eps,
        "engine_daemon_tick_events_per_sec_per_timer": daemon_eps_per_timer,
        "daemon_ticker_speedup_x": ticker_speedup,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "jobs": args.jobs or 1,
    }
    if args.sharded_speedup:
        t_single, t_sharded, speedup = measure_sharded_speedup()
        report["sharded_speedup"] = {
            "single_s": t_single,
            "sharded_s": t_sharded,
            "speedup_x": speedup,
            "cpus": os.cpu_count(),
        }
    if args.optimistic_smoke:
        smoke_s, smoke_counters = measure_optimistic_smoke(
            hosts=args.smoke_hosts, concurrency=args.smoke_concurrent,
            ceiling_s=args.smoke_ceiling_s, live=args.top,
        )
        report["optimistic_smoke"] = {
            "elapsed_s": smoke_s,
            "cpus": os.cpu_count(),
            **smoke_counters,
        }
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {REPORT_PATH}")

    # Flat metric -> seconds (or events/sec) map, runstamped, written at
    # the repo root for downstream tooling that trends numbers across
    # runs (CI uploads it as a build artifact).
    runstamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    metrics = {f"{name}_s": elapsed for name, elapsed in timings.items()}
    metrics["engine_events_per_sec"] = events_per_sec
    metrics["engine_timer_events_per_sec"] = timer_eps
    metrics["engine_timer_events_per_sec_heap_ref"] = timer_eps_heap
    metrics["timer_wheel_speedup_x"] = wheel_speedup
    metrics["engine_daemon_tick_events_per_sec"] = daemon_eps
    metrics["engine_daemon_tick_events_per_sec_per_timer"] = (
        daemon_eps_per_timer
    )
    metrics["daemon_ticker_speedup_x"] = ticker_speedup
    metrics["probe_overhead_frac"] = probe_overhead
    for key, value in optimistic_sync.items():
        metrics[f"optimistic_{key}"] = value
    metrics["checkpoint_replayed_per_rollback"] = (
        checkpoint_rollback["with_checkpoints"]["replayed_per_rollback"]
    )
    metrics["full_replayed_per_rollback"] = (
        checkpoint_rollback["full_replay"]["replayed_per_rollback"]
    )
    metrics["checkpoint_replay_improvement_x"] = (
        checkpoint_rollback["replay_improvement_x"]
    )
    speedup = report.get("sharded_speedup")
    if speedup:
        metrics["sharded_cell_single_s"] = speedup["single_s"]
        metrics["sharded_cell_sharded_s"] = speedup["sharded_s"]
        metrics["sharded_cell_speedup_x"] = speedup["speedup_x"]
    smoke = report.get("optimistic_smoke")
    if smoke:
        metrics["optimistic_smoke_100k_s"] = smoke["elapsed_s"]
        metrics["optimistic_smoke_100k_rollbacks"] = smoke["rollbacks"]
        metrics["optimistic_smoke_commit_rate"] = smoke["commit_rate"]
        metrics["optimistic_smoke_replayed_per_rollback"] = (
            smoke["replayed_per_rollback"]
        )
        metrics["optimistic_smoke_coordinator_wait_s"] = (
            smoke["coordinator_wait_s"]
        )
        metrics["optimistic_smoke_placement_heap_ops"] = (
            smoke["placement_heap_ops"]
        )
    stamped_path = ROOT / f"BENCH_{runstamp}.json"
    stamped_path.write_text(
        json.dumps(metrics, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {stamped_path}")
    # Keep only the fresh runstamped report: CI uploads it as the run's
    # artifact, so stale ones from earlier local runs would just pile up
    # at the repo root (and confuse "latest" globs downstream).
    for stale in ROOT.glob("BENCH_*.json"):
        if stale != stamped_path:
            stale.unlink()
            print(f"pruned {stale.name}")

    if args.update_baseline:
        BASELINE_PATH.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {BASELINE_PATH}")
    if args.check:
        failures = check(
            timings,
            {
                "engine_events_per_sec": events_per_sec,
                "engine_timer_events_per_sec": timer_eps,
                "engine_daemon_tick_events_per_sec": daemon_eps,
            },
            args.threshold,
        )
        if failures:
            print(f"{len(failures)} wall-clock regression(s) detected")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
