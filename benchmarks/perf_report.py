"""Wall-clock performance report for the simulator fast path.

Times a fixed set of experiments end-to-end (quick scale, cache off),
measures raw event-engine throughput with a synthetic dispatch storm,
and writes ``BENCH_wallclock.json`` next to this file::

    python benchmarks/perf_report.py                 # measure + write
    python benchmarks/perf_report.py --check         # compare vs baseline
    python benchmarks/perf_report.py --jobs 4        # parallel cells

``--check`` compares against the committed baseline and exits non-zero
if any experiment regressed by more than ``--threshold`` (default 20%)
or the engine's events/sec dropped by more than the same threshold,
which is what CI runs.  After an intentional perf change, regenerate the
baseline with ``--update-baseline``.
"""

import argparse
import json
import pathlib
import platform
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent / "src"))

REPORT_PATH = HERE / "BENCH_wallclock.json"
BASELINE_PATH = HERE / "wallclock_baseline.json"

#: Experiments timed by the report (quick scale).
EXPERIMENTS = ("fig1", "fig11", "fig13c", "scale")


def engine_events_per_sec(procs=200, rounds=200, repeats=5):
    """Raw dispatch throughput of the discrete-event engine.

    A synthetic storm with the simulator's real event mix: zero-delay
    resumes (the ready-ring fast path), mutex hand-offs, and short
    heap-scheduled timeouts.  Model callbacks are trivial, so this
    isolates the engine — `Simulator.run` dispatch, `schedule`, the
    Process trampoline, and the sync grant path.  Returns the
    best-of-``repeats`` events/sec (best-of defuses scheduler noise).
    """
    from repro.sim import Mutex, Simulator, Timeout

    def one_run():
        sim = Simulator()
        lock = Mutex(sim, name="bench")

        def worker(index):
            for _ in range(rounds):
                yield Timeout(0.0)
                yield lock.acquire()
                yield Timeout(1e-6)
                lock.release()
                yield Timeout((index % 7) * 1e-5)

        for index in range(procs):
            sim.spawn(worker(index))
        started = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - started
        return sim.events_dispatched / elapsed

    return max(one_run() for _ in range(repeats))


def measure(experiment_ids, jobs=None, repeats=2):
    """Time each experiment end-to-end; best-of-``repeats`` per id.

    One-shot timings of 1-3 s experiments swing by 20%+ on shared CI
    runners; the minimum of two runs is what the machine can actually
    do and keeps the regression gate quiet.
    """
    from repro.experiments import get_experiment

    timings = {}
    for experiment_id in experiment_ids:
        experiment = get_experiment(experiment_id)
        best = None
        for _ in range(repeats):
            started = time.perf_counter()
            result = experiment.run(quick=True, jobs=jobs, use_cache=False)
            elapsed = time.perf_counter() - started
            assert result.comparisons()
            if best is None or elapsed < best:
                best = elapsed
        timings[experiment_id] = round(best, 4)
        print(f"{experiment_id:8s} {best:8.3f} s")
    return timings


def check(timings, events_per_sec, threshold):
    """Compare against the committed baseline; returns failures."""
    if not BASELINE_PATH.is_file():
        print(f"no baseline at {BASELINE_PATH}; skipping regression check")
        return []
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = []
    for experiment_id, elapsed in timings.items():
        base = baseline["timings"].get(experiment_id)
        if base is None:
            continue
        ratio = elapsed / base
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            failures.append((experiment_id, base, elapsed, ratio))
        print(
            f"{experiment_id:8s} baseline {base:7.3f} s  now {elapsed:7.3f} s "
            f"({ratio * 100:5.1f}%)  {status}"
        )
    base_eps = baseline.get("engine_events_per_sec")
    if base_eps:
        ratio = events_per_sec / base_eps
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            failures.append(("engine", base_eps, events_per_sec, ratio))
        print(
            f"{'engine':8s} baseline {base_eps:9,.0f} ev/s  "
            f"now {events_per_sec:9,.0f} ev/s ({ratio * 100:5.1f}%)  {status}"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--check", action="store_true",
                        help="fail on >threshold regression vs baseline")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional slowdown (default 0.20)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the measured timings as the new baseline")
    args = parser.parse_args(argv)

    events_per_sec = round(engine_events_per_sec())
    print(f"{'engine':8s} {events_per_sec:9,} events/s")
    timings = measure(EXPERIMENTS, jobs=args.jobs)
    report = {
        "timings": timings,
        "engine_events_per_sec": events_per_sec,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "jobs": args.jobs or 1,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {REPORT_PATH}")

    if args.update_baseline:
        BASELINE_PATH.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {BASELINE_PATH}")
    if args.check:
        failures = check(timings, events_per_sec, args.threshold)
        if failures:
            print(f"{len(failures)} wall-clock regression(s) detected")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
