"""Ablation: invocation arrival pattern vs FastIOV's gain.

The paper's burst arrivals (200 near-simultaneous requests, per the
Alibaba serverless statistics) maximize contention; this bench checks
that FastIOV's advantage shrinks — but persists — when the same load
arrives spread out.
"""

from repro.core import build_host

CONCURRENCY = 60


def run(preset, spacing):
    host = build_host(preset)
    result = host.launch(CONCURRENCY, arrival_spacing_s=spacing)
    return result.startup_times().mean


def test_bench_ablation_arrival_pattern(benchmark):
    results = {}

    def execute():
        for label, spacing in (("burst", 0.0), ("spread-100ms", 0.1)):
            vanilla = run("vanilla", spacing)
            fastiov = run("fastiov", spacing)
            results[label] = {
                "vanilla": vanilla,
                "fastiov": fastiov,
                "reduction": 1 - fastiov / vanilla,
            }

    benchmark.pedantic(execute, rounds=1, iterations=1)
    print(f"\nArrival-pattern ablation (c={CONCURRENCY}):")
    for label, r in results.items():
        print(f"  {label:13s} vanilla={r['vanilla']:.2f}s "
              f"fastiov={r['fastiov']:.2f}s reduction={r['reduction']:.1%}")
    assert results["burst"]["reduction"] > results["spread-100ms"]["reduction"]
    assert results["spread-100ms"]["reduction"] > 0
