"""Ablation (P2, §3.2.3): hugepages vs fragmented 4 KiB retrieval.

The paper notes that fragmented small pages make page retrieval a DMA-
mapping sub-bottleneck, and that enabling 2 MiB hugepages (the testbed
default) effectively removes it.  This bench maps the same 512 MiB
region with zeroing pre-done (isolating retrieval) under three memory
conditions and reports the retrieval cost ratio.
"""

from repro.hw.iommu import IOMMU
from repro.hw.memory import GIB, KIB, MIB, PhysicalMemory
from repro.oskernel.locks import CoarseLockPolicy
from repro.oskernel.vfio import VfioDriver, ZeroingPolicy
from repro.sim.core import Simulator
from repro.sim.cpu import FairShareCPU
from repro.sim.rng import Jitter
from repro.spec import HostSpec

PREZEROED = ZeroingPolicy(prezeroed_fraction=1.0)


def map_512mib(page_size, fragment):
    spec = HostSpec(jitter_sigma=0.0)
    sim = Simulator()
    cpu = FairShareCPU(sim, cores=spec.cores)
    memory = PhysicalMemory(2 * GIB, page_size)
    if fragment:
        memory.fragment(max_run_bytes=page_size)
    vfio = VfioDriver(sim, cpu, memory, IOMMU(), spec,
                      lock_policy_factory=CoarseLockPolicy,
                      jitter=Jitter(0))

    def flow():
        domain = vfio.create_domain("vm0")
        yield from vfio.dma_map(domain, "vm0", "ram", 512 * MIB, 0,
                                policy=PREZEROED)

    sim.spawn(flow())
    sim.run()
    return sim.now


def test_bench_ablation_hugepage_retrieval(benchmark):
    results = {}

    def execute():
        results["hugepage"] = map_512mib(2 * MIB, fragment=False)
        results["4k-contiguous"] = map_512mib(4 * KIB, fragment=False)
        results["4k-fragmented"] = map_512mib(4 * KIB, fragment=True)

    benchmark.pedantic(execute, rounds=1, iterations=1)
    print("\nP2 ablation — retrieval-dominated mapping time (512 MiB):")
    for label, elapsed in results.items():
        print(f"  {label:14s} {elapsed * 1000:8.2f} ms")
    # Paper shape: fragmentation hurts; hugepages remove the bottleneck.
    assert results["4k-fragmented"] > results["4k-contiguous"]
    assert results["hugepage"] < results["4k-contiguous"] / 20
