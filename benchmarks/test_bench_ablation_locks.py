"""Ablation (§4.2.1): devset lock decomposition microbenchmark.

Measures the pure VFIO-open scaling behaviour — 200 concurrent opens of
distinct VFs under the coarse global mutex vs the hierarchical
parent-child locks — without the rest of the startup pipeline.
"""

from repro.hw.iommu import IOMMU
from repro.hw.memory import MIB, PhysicalMemory
from repro.hw.nic import SriovNic
from repro.hw.pci import PciTopology
from repro.oskernel.locks import CoarseLockPolicy, HierarchicalLockPolicy
from repro.oskernel.vfio import VFIO_DRIVER_NAME, VfioDriver
from repro.sim.core import Simulator
from repro.sim.cpu import FairShareCPU
from repro.sim.rng import Jitter
from repro.spec import HostSpec


def open_all(policy, count):
    spec = HostSpec(jitter_sigma=0.0)
    sim = Simulator()
    cpu = FairShareCPU(sim, cores=spec.cores)
    topology = PciTopology()
    topology.add_bus(0x3B)
    nic = SriovNic("intel-e810", 256, 25, topology, 0x3B, "3b:00.0")
    vfs = nic.pf.create_vfs(count, topology, 0x3B)
    factory = CoarseLockPolicy if policy == "coarse" else HierarchicalLockPolicy
    vfio = VfioDriver(
        sim, cpu, PhysicalMemory(64 * MIB, MIB), IOMMU(), spec,
        lock_policy_factory=factory, jitter=Jitter(0),
    )
    for vf in vfs:
        vf.driver = VFIO_DRIVER_NAME
        vfio.register_device(vf)
    finish = {}

    def opener(i):
        yield from vfio.open_device(vfs[i], opener=f"q{i}")
        finish[i] = sim.now

    for i in range(count):
        sim.spawn(opener(i))
    sim.run()
    times = sorted(finish.values())
    return {
        "mean": sum(times) / len(times),
        "p99": times[int(len(times) * 0.99) - 1],
        "last": times[-1],
    }


def test_bench_ablation_lock_decomposition(benchmark):
    results = {}

    def execute():
        for policy in ("coarse", "hierarchical"):
            results[policy] = open_all(policy, count=200)

    benchmark.pedantic(execute, rounds=1, iterations=1)
    coarse = results["coarse"]
    hier = results["hierarchical"]
    print("\nDevset lock ablation — 200 concurrent VFIO opens:")
    for policy, r in results.items():
        print(f"  {policy:13s} mean={r['mean']:.3f}s p99={r['p99']:.3f}s "
              f"last={r['last']:.3f}s")
    speedup = coarse["mean"] / hier["mean"]
    print(f"  hierarchical speedup: {speedup:.0f}x on the mean open")
    assert speedup > 20  # near-perfect parallelization of inter-child opens
