"""Ablation (§5): fastiovd's background clearing thread.

With the scanner, remaining lazy pages are zeroed during overlappable
time, so application first-touches find pre-scrubbed pages (fewer
fault-time zeroings).  Without it, every deferred page pays its zeroing
on the EPT-fault path.  This bench launches FastIOV containers with an
app and compares fault-zeroing counts and task completion time.
"""

from repro.core import build_host, get_preset
from repro.spec import PAPER_TESTBED
from repro.workloads.serverless import make_app

CONCURRENCY = 40


def run(scanner_enabled, interval=None):
    spec = PAPER_TESTBED
    if not scanner_enabled:
        # Push the first scan far past the experiment horizon.
        spec = spec.derive(fastiovd_scan_interval_s=10_000.0)
    elif interval is not None:
        spec = spec.derive(fastiovd_scan_interval_s=interval)
    host = build_host(get_preset("fastiov"), spec=spec)
    result = host.launch(
        CONCURRENCY,
        app_factory=lambda index: make_app("compression"),
    )
    stats = host.fastiovd.stats
    return {
        "tct_mean": result.task_completion_times().mean,
        "fault_zeroed": stats.fault_zeroed_pages,
        "background_zeroed": stats.background_zeroed_pages,
    }


def test_bench_ablation_background_scanner(benchmark):
    results = {}

    def execute():
        results["scanner-on"] = run(scanner_enabled=True)
        results["scanner-off"] = run(scanner_enabled=False)

    benchmark.pedantic(execute, rounds=1, iterations=1)
    print("\nBackground-clearing ablation (fastiov, compression, "
          f"c={CONCURRENCY}):")
    for label, r in results.items():
        print(f"  {label:12s} TCT={r['tct_mean']:.2f}s "
              f"fault-zeroed={r['fault_zeroed']} "
              f"background-zeroed={r['background_zeroed']}")
    on, off = results["scanner-on"], results["scanner-off"]
    assert on["background_zeroed"] > 0
    assert off["background_zeroed"] == 0
    # With the scanner, fewer pages pay zeroing on the fault path.
    assert on["fault_zeroed"] < off["fault_zeroed"]
