"""Benchmark: extension experiment 'churn'."""


def test_bench_churn(run_experiment):
    result = run_experiment("churn")
    assert result.experiment_id == "churn"
