"""Benchmark: extension experiment 'dataplane'."""


def test_bench_dataplane(run_experiment):
    result = run_experiment("dataplane")
    assert result.experiment_id == "dataplane"
