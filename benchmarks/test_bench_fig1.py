"""Benchmark: regenerate paper artifact 'fig1'."""


def test_bench_fig1(run_experiment):
    result = run_experiment("fig1")
    assert result.experiment_id == "fig1"
