"""Benchmark: regenerate paper artifact 'fig11'."""


def test_bench_fig11(run_experiment):
    result = run_experiment("fig11")
    assert result.experiment_id == "fig11"
