"""Benchmark: regenerate paper artifact 'fig12'."""


def test_bench_fig12(run_experiment):
    result = run_experiment("fig12")
    assert result.experiment_id == "fig12"
