"""Benchmark: regenerate paper artifact 'fig13a'."""


def test_bench_fig13a(run_experiment):
    result = run_experiment("fig13a")
    assert result.experiment_id == "fig13a"
