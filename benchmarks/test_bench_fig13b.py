"""Benchmark: regenerate paper artifact 'fig13b'."""


def test_bench_fig13b(run_experiment):
    result = run_experiment("fig13b")
    assert result.experiment_id == "fig13b"
