"""Benchmark: regenerate paper artifact 'fig13c'."""


def test_bench_fig13c(run_experiment):
    result = run_experiment("fig13c")
    assert result.experiment_id == "fig13c"
