"""Benchmark: regenerate paper artifact 'fig14'."""


def test_bench_fig14(run_experiment):
    result = run_experiment("fig14")
    assert result.experiment_id == "fig14"
