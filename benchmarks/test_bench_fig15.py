"""Benchmark: regenerate paper artifact 'fig15'."""


def test_bench_fig15(run_experiment):
    result = run_experiment("fig15")
    assert result.experiment_id == "fig15"
