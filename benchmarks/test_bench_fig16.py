"""Benchmark: regenerate paper artifact 'fig16'."""


def test_bench_fig16(run_experiment):
    result = run_experiment("fig16")
    assert result.experiment_id == "fig16"
