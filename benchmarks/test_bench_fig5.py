"""Benchmark: regenerate paper artifact 'fig5'."""


def test_bench_fig5(run_experiment):
    result = run_experiment("fig5")
    assert result.experiment_id == "fig5"
