"""Benchmark: regenerate paper artifact 'impl_rebind'."""


def test_bench_impl_rebind(run_experiment):
    result = run_experiment("impl_rebind")
    assert result.experiment_id == "impl_rebind"
