"""Benchmark: regenerate paper artifact 'sec65'."""


def test_bench_sec65(run_experiment):
    result = run_experiment("sec65")
    assert result.experiment_id == "sec65"
