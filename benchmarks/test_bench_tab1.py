"""Benchmark: regenerate paper artifact 'tab1'."""


def test_bench_tab1(run_experiment):
    result = run_experiment("tab1")
    assert result.experiment_id == "tab1"
