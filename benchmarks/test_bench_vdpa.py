"""Benchmark: extension experiment 'vdpa'."""


def test_bench_vdpa(run_experiment):
    result = run_experiment("vdpa")
    assert result.experiment_id == "vdpa"
