"""Benchmark: extension experiment 'viommu'."""


def test_bench_viommu(run_experiment):
    result = run_experiment("viommu")
    assert result.experiment_id == "viommu"
