#!/usr/bin/env python3
"""Bottleneck dissection: reproduce the paper's §3 measurement study.

Launches a concurrent vanilla SR-IOV startup, breaks the timeline into
the six steps of Fig. 5 / Tab. 1, inspects lock-contention telemetry to
attribute each bottleneck to its mechanism, and then re-runs with each
FastIOV optimization enabled *individually* to show which bottleneck it
removes — the analysis loop that motivated the design.

Run:
    python examples/bottleneck_analysis.py
"""

from repro.core import build_host, get_preset
from repro.core.presets import VANILLA
from repro.metrics.reporting import format_table
from repro.metrics.timeline import PAPER_STEPS

CONCURRENCY = 60

SINGLE_OPT = {
    "+L (lock decomposition)": dict(lock_decomposition=True),
    "+A (async VF init)": dict(async_vf_init=True),
    "+S (skip image mapping)": dict(skip_image_mapping=True),
    "+D (decoupled zeroing)": dict(decoupled_zeroing=True),
}


def launch(config):
    host = build_host(config, seed=4)
    return host.launch(CONCURRENCY)


def main():
    print(f"Dissecting a {CONCURRENCY}-way concurrent vanilla startup...\n")
    vanilla = launch(VANILLA)
    mean = vanilla.startup_times().mean

    rows = [
        (step, vanilla.mean_step_time(step),
         f"{vanilla.mean_step_time(step) / mean * 100:.1f}%")
        for step in PAPER_STEPS
    ]
    print(format_table(
        ["step", "mean (s)", "share"],
        rows, title=f"Step breakdown (vanilla, mean startup {mean:.2f}s)",
    ))

    report = vanilla.host.contention_report()
    print("\nLock telemetry (the mechanisms behind the steps):")
    for name, stats in report.items():
        if name == "cpu-utilization":
            print(f"  host CPU utilization: {stats:.0%}")
        elif getattr(stats, "contended", 0) > 0:
            print(f"  {name}: {stats.contended} contended acquisitions, "
                  f"mean wait {stats.mean_wait * 1000:.1f} ms, "
                  f"max {stats.max_wait:.2f} s")

    print("\nEnabling each optimization alone:\n")
    rows = [("vanilla (none)", mean, "-")]
    for label, flags in SINGLE_OPT.items():
        config = get_preset("vanilla").derive(
            name=f"vanilla{label.split()[0]}", **flags
        )
        result = launch(config)
        opt_mean = result.startup_times().mean
        rows.append((label, opt_mean, f"{(1 - opt_mean / mean) * 100:.1f}%"))
    fastiov = launch(get_preset("fastiov"))
    rows.append(("FastIOV (all four)", fastiov.startup_times().mean,
                 f"{(1 - fastiov.startup_times().mean / mean) * 100:.1f}%"))
    print(format_table(
        ["configuration", "mean startup (s)", "reduction"],
        rows, title="Single-optimization study",
    ))
    print("\nNo single optimization suffices: the bottlenecks compound, "
          "which is why FastIOV needs all four (§4.1).")


if __name__ == "__main__":
    main()
