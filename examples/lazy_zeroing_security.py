#!/usr/bin/env python3
"""Why lazy zeroing is subtle: the §4.3.2 correctness machinery, live.

FastIOV defers page zeroing from DMA-mapping time to first-touch time.
That is only safe because of two guards:

1. the **instant-zeroing list** — pages the hypervisor writes (BIOS,
   kernel) must never be re-zeroed by a later EPT fault;
2. **proactive EPT faults** — virtio shared buffers must be faulted
   (and scrubbed) *before* the host backend writes file data into them.

This example (a) shows a full multi-tenant recycle where a dead
container's secrets are provably unreadable by the next tenant, and
(b) disables each guard in turn and catches the exact failure the paper
predicts: a guest crash from clobbered kernel code, and corrupted
virtioFS file data.

Run:
    python examples/lazy_zeroing_security.py
"""

from repro.core import build_host, get_preset
from repro.hw.memory import MIB
from repro.oskernel.errors import GuestCrash
from repro.sim.errors import ProcessFailed

VM_MEMORY = 512 * MIB


def multi_tenant_recycle():
    print("1. Multi-tenant recycling under lazy zeroing")
    host = build_host("fastiov", seed=3)
    host.launch(1, memory_bytes=VM_MEMORY)
    tenant_a = host.engine.containers["c0"]

    def write_secret_and_die():
        vm = tenant_a.microvm
        gpa = vm.alloc_guest_range(8 * MIB, "secret")
        yield from host.kvm.guest_touch_range(
            vm.vm, gpa, 8 * MIB, write=True, tag="tenant-a-credit-cards"
        )
        yield from host.engine.remove_container("c0")

    host.sim.spawn(write_secret_and_die())
    host.sim.run()
    print("   tenant A wrote secrets into 8 MiB of RAM and terminated")

    # Tenant B gets (potentially) the same frames. Every read the guest
    # performs is checked: residual data would raise ResidualDataLeak
    # inside the simulation. A clean launch is the proof.
    result = host.launch(1, memory_bytes=VM_MEMORY, name_prefix="tenant-b-")
    assert result.records[0].failed is None
    zeroed = host.fastiovd.stats
    print(f"   tenant B started cleanly; fastiovd zeroed "
          f"{zeroed.fault_zeroed_pages} pages on EPT faults and "
          f"{zeroed.background_zeroed_pages} in the background\n")


def broken_instant_zeroing_list():
    print("2. Failure injection: no instant-zeroing list (§4.3.2 case 1)")
    config = get_preset("fastiov").derive(
        name="fastiov-broken-instant", use_instant_zeroing_list=False
    )
    host = build_host(config, seed=3)
    try:
        host.launch(1, memory_bytes=VM_MEMORY)
    except ProcessFailed as failure:
        assert isinstance(failure.cause, GuestCrash)
        print(f"   guest crashed as predicted: {failure.cause}\n")
    else:
        raise AssertionError("expected a guest crash")


def broken_proactive_faults():
    print("3. Failure injection: no proactive EPT faults (§4.3.2 case 2)")
    config = get_preset("fastiov").derive(
        name="fastiov-broken-virtio", proactive_virtio_faults=False
    )
    # Keep the background scanner out of the picture: the race only
    # manifests while the buffer's zeroing is still pending (on a busy
    # host the scanner lags far behind, so this is the common state).
    from repro.spec import PAPER_TESTBED

    spec = PAPER_TESTBED.derive(fastiovd_scan_interval_s=10_000.0)
    host = build_host(config, spec=spec, seed=3)
    try:
        # The app launch reads its container image through virtioFS;
        # without proactive faults the buffer is zeroed AFTER the
        # backend delivered the file data.
        from repro.workloads import make_app

        host.launch(1, memory_bytes=VM_MEMORY,
                    app_factory=lambda index: make_app("image"))
    except ProcessFailed as failure:
        assert isinstance(failure.cause, GuestCrash)
        print(f"   file data corrupted as predicted: {failure.cause}\n")
    else:
        raise AssertionError("expected data corruption")


def main():
    multi_tenant_recycle()
    broken_instant_zeroing_list()
    broken_proactive_faults()
    print("All three §4.3.2 behaviours reproduced.")


if __name__ == "__main__":
    main()
