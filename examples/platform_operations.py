#!/usr/bin/env python3
"""Operating a FastIOV platform: churn, recycling, and the vDPA future.

A scenario beyond the paper's burst benchmarks: a platform operator
sustains continuous Poisson load through the full container lifecycle
(start -> task -> teardown, VFs and frames recycled), then evaluates
the §7 future-work configuration — vDPA, where the guest drives the
passthrough VF with the standard virtio driver and no vendor VF driver
needs initializing (or modifying, for lazy-zeroing safety).

Run:
    python examples/platform_operations.py
"""

from repro.core import build_host
from repro.experiments.churn import run_churn
from repro.metrics.reporting import format_table
from repro.metrics.stats import Distribution


def sustained_churn():
    print("1. Sustained churn: 120 Poisson arrivals at 20/s, full lifecycle\n")
    rows = []
    for preset in ("vanilla", "fastiov"):
        records, host = run_churn(preset, total=120, rate_per_s=20.0,
                                  app_name="image", seed=7)
        steady = records[40:]
        startup = Distribution([r.startup_time for r in steady])
        tct = Distribution([r.task_completion_time for r in steady])
        rows.append((preset, startup.mean, startup.p99, tct.mean,
                     host.cni.free_vf_count))
    print(format_table(
        ["solution", "startup mean (s)", "startup p99 (s)", "TCT mean (s)",
         "VFs free after run"],
        rows, title="Steady-state behaviour under churn",
    ))
    print("\nEvery VF returned to the pool; every recycled frame was "
          "re-scrubbed before its next tenant could read it (the "
          "simulation checks each guest read).\n")


def vdpa_outlook():
    print("2. The §7 outlook: vDPA control plane\n")
    rows = []
    for preset in ("vanilla", "vanilla-vdpa", "fastiov", "fastiov-vdpa"):
        host = build_host(preset, seed=7)
        result = host.launch(60)
        d = result.startup_times()
        rows.append((preset, d.mean, d.p99,
                     result.mean_step_time("5-vf-driver"),
                     host.binding.mailbox_stats.contended))
    print(format_table(
        ["solution", "mean (s)", "p99 (s)", "5-vf-driver (s)",
         "PF-mailbox waits"],
        rows, title="vDPA replaces the vendor VF driver bring-up",
    ))
    print("\nvDPA removes Bottleneck 3 at the source (no vendor driver, "
          "no PF admin-queue serialization) and keeps lazy zeroing safe "
          "without driver modifications — the virtio frontend's buffer "
          "protocol already proactively faults every page a device may "
          "write.")


def main():
    sustained_churn()
    vdpa_outlook()


if __name__ == "__main__":
    main()
