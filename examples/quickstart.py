#!/usr/bin/env python3
"""Quickstart: start secure containers with and without FastIOV.

Builds two simulated hosts from presets — the vanilla SR-IOV CNI and
FastIOV — launches 50 SR-IOV-enabled secure containers concurrently on
each, and prints the startup-time distributions plus the per-step
breakdown that explains the difference.

Run:
    python examples/quickstart.py
"""

from repro.core import build_host
from repro.metrics.reporting import format_table
from repro.metrics.timeline import PAPER_STEPS

CONCURRENCY = 50


def main():
    print(f"Launching {CONCURRENCY} secure containers per solution...\n")
    results = {}
    for preset in ("no-net", "vanilla", "fastiov"):
        host = build_host(preset, seed=1)
        launch = host.launch(CONCURRENCY)
        results[preset] = launch

    # -- headline numbers -------------------------------------------------
    rows = []
    for preset, launch in results.items():
        d = launch.startup_times(preset)
        rows.append((preset, d.mean, d.p50, d.p99, d.maximum))
    print(format_table(
        ["solution", "mean (s)", "p50 (s)", "p99 (s)", "max (s)"],
        rows, title=f"Startup time, {CONCURRENCY} concurrent containers",
    ))

    vanilla = results["vanilla"].startup_times()
    fastiov = results["fastiov"].startup_times()
    print(f"\nFastIOV reduces the average startup time by "
          f"{(1 - fastiov.mean / vanilla.mean) * 100:.1f}% "
          f"and the 99th percentile by "
          f"{(1 - fastiov.p99 / vanilla.p99) * 100:.1f}%.")

    # -- where the time went ----------------------------------------------
    rows = []
    for step in PAPER_STEPS:
        rows.append((
            step,
            results["vanilla"].mean_step_time(step),
            results["fastiov"].mean_step_time(step),
        ))
    print()
    print(format_table(
        ["step", "vanilla (s)", "fastiov (s)"],
        rows, title="Mean time per startup step (the paper's Fig. 5 steps)",
    ))

    # -- lock contention telemetry -----------------------------------------
    report = results["vanilla"].host.contention_report()
    devset = next(v for k, v in report.items() if "global-mutex" in k)
    print(f"\nVanilla devset mutex: {devset.contended} contended "
          f"acquisitions, max wait {devset.max_wait:.2f}s "
          f"(Bottleneck 1, resolved by FastIOV's lock decomposition).")


if __name__ == "__main__":
    main()
