#!/usr/bin/env python3
"""Serverless platform scenario (§6.6 of the paper).

Models the paper's two-server setup: an application server launching
bursts of secure containers, each running one of the four SeBS-style
tasks (image thumbnailing, compression, graph BFS, model inference)
after downloading its input from a storage server through the
container's VF.  Prints per-app task-completion times for vanilla
SR-IOV vs FastIOV, and demonstrates the *real* miniature kernels behind
each app model.

Run:
    python examples/serverless_platform.py
"""

import time

from repro.core import build_host
from repro.metrics.reporting import format_table
from repro.workloads import make_app
from repro.workloads.reference import execute_reference

CONCURRENCY = 40
APPS = ("image", "compression", "scientific", "inference")


def run_platform(preset, app_name):
    host = build_host(preset, seed=2)
    result = host.launch(
        CONCURRENCY, app_factory=lambda index: make_app(app_name)
    )
    return result.task_completion_times(f"{app_name}/{preset}")


def main():
    # -- the real kernels, for flavour -------------------------------------
    print("Reference kernels (actual computation on synthetic inputs):")
    for app_name in APPS:
        t0 = time.perf_counter()
        output = execute_reference(app_name)
        dt = (time.perf_counter() - t0) * 1000
        summary = {
            "image": lambda o: f"100x100 thumbnail, mean px "
                               f"{sum(map(sum, o)) / 10_000:.0f}",
            "compression": lambda o: f"compressed to {len(o)} bytes",
            "scientific": lambda o: f"BFS eccentricity {max(o)}",
            "inference": lambda o: f"predicted label {o}",
        }[app_name](output)
        print(f"  {app_name:12s} {summary}  [{dt:.0f} ms real compute]")

    # -- the simulated platform ---------------------------------------------
    print(f"\nSimulating {CONCURRENCY} concurrent invocations per app "
          f"(download -> compute -> upload)...\n")
    rows = []
    for app_name in APPS:
        vanilla = run_platform("vanilla", app_name)
        fastiov = run_platform("fastiov", app_name)
        rows.append((
            app_name, vanilla.mean, fastiov.mean,
            f"{(1 - fastiov.mean / vanilla.mean) * 100:.1f}%",
            f"{(1 - fastiov.p99 / vanilla.p99) * 100:.1f}%",
        ))
    print(format_table(
        ["app", "vanilla TCT (s)", "fastiov TCT (s)", "avg reduction",
         "p99 reduction"],
        rows, title="Task completion time (startup + download + compute)",
    ))
    print("\nAs in the paper's Fig. 15, the benefit is largest for "
          "short-lived tasks, where startup dominates completion time.")


if __name__ == "__main__":
    main()
