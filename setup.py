"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so
that legacy (non-PEP-517) editable installs work in offline
environments that lack the ``wheel`` package::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
