"""FastIOV (EuroSys '25) reproduction.

Top-level convenience re-exports::

    import repro

    host = repro.build_host("fastiov")
    result = host.launch(200)
    print(result.startup_times().summary())

See :mod:`repro.core` for solution presets, :mod:`repro.experiments`
for the per-figure/table reproduction harness, and DESIGN.md for the
simulation substitution rationale.
"""

from repro.core import PRESETS, Host, SolutionConfig, build_host, get_preset
from repro.spec import PAPER_TESTBED, HostSpec

__version__ = "1.0.0"

__all__ = [
    "Host",
    "HostSpec",
    "PAPER_TESTBED",
    "PRESETS",
    "SolutionConfig",
    "build_host",
    "get_preset",
]
