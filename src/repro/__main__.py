"""Command-line interface.

Usage::

    python -m repro list                     # catalog of experiments
    python -m repro run fig11 [--quick]      # one experiment, printed
    python -m repro run fig13c --jobs 8      # parallel launch cells
    python -m repro run fig11 --no-cache     # ignore the result cache
    python -m repro run scale --shards 8     # sharded cluster simulation
    python -m repro run scale --hosts 48 --placement round-robin --json out.json
    python -m repro launch fastiov -c 200    # raw concurrent launch
    python -m repro profile fig11 --quick    # cProfile an experiment
    python -m repro profile fig11 --hot      # cProfile its heaviest cell
    python -m repro trace fig13c --out trace.json   # Perfetto timeline

``run`` caches per-launch summaries under ``.repro-cache/`` (override
with ``REPRO_CACHE_DIR``), keyed by source digest + host spec + cell
parameters, so repeated runs after unrelated edits stay fast while any
simulator change invalidates stale entries automatically.
"""

import argparse
import sys

from repro.core import PRESETS, build_host
from repro.experiments import get_experiment, list_experiments


def shard_count(value):
    """argparse type for ``--shards``: a positive int or ``auto``.

    ``auto`` defers to :func:`repro.cluster.sharded.resolve_shards`,
    which splits only when each shard keeps enough hosts to beat the
    worker spawn/barrier overhead (small cells run single-process).
    """
    if value == "auto":
        return "auto"
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError(
            f"shards must be >= 1 or 'auto', got {value}"
        )
    return count


def checkpoint_interval(value):
    """argparse type for ``--checkpoint-every``: epochs >= 0.

    0 disables fork checkpoints (optimistic rollback then falls back
    to full replay from t=0); omitting the flag keeps the adaptive
    cadence tied to the speculation window.
    """
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"checkpoint interval must be >= 0, got {value}"
        )
    return count


def cmd_list(_args):
    print("Experiments (paper artifacts):")
    for exp_id, title in list_experiments():
        print(f"  {exp_id:12s} {title}")
    print("\nSolution presets:")
    for name, config in sorted(PRESETS.items()):
        print(f"  {name:14s} {config.description}")
    return 0


def cmd_run(args):
    experiment = get_experiment(args.experiment)
    experiment.configure(
        hosts=args.hosts,
        placement=args.placement,
        shards=args.shards,
        sync=args.sync,
        rate=args.rate,
        checkpoint_every=args.checkpoint_every,
    )
    result = experiment.run(
        quick=args.quick,
        seed=args.seed,
        jobs=args.jobs,
        use_cache=not args.no_cache,
    )
    print(result.render())
    print()
    print(result.comparison_table())
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(result.data, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"result data written to {args.json}")
    return 0


def cmd_profile(args):
    """cProfile one experiment and print the top cumulative offenders.

    ``--hot`` profiles the experiment's single heaviest launch cell
    instead of the whole run: one simulator, no harness overhead, so the
    top of the listing is the engine/model hot path a perf PR should
    attack.  Experiments without launch cells fall back to a full run.
    ``--hot`` also prints the cell simulator's timing-wheel statistics
    (max bucket occupancy, spill re-bucketing count, cancelled-timer
    compactions, ...) after the profile listing.
    """
    import cProfile
    import pstats

    experiment = get_experiment(args.experiment)
    experiment.configure(
        hosts=args.hosts,
        placement=args.placement,
        shards=args.shards,
        sync=args.sync,
        rate=args.rate,
        checkpoint_every=args.checkpoint_every,
    )
    target_label = f"experiment {args.experiment!r}"
    if args.hot:
        from repro.experiments.parallel import run_cell

        cells = experiment._cells(quick=args.quick, seed=args.seed)
        if cells:
            cell = max(cells, key=lambda c: (c.concurrency, c.hosts))
            target_label = f"hot cell {cell}"

            def target():
                run_cell(cell)
        else:
            print(f"{args.experiment}: no launch cells; profiling the "
                  f"full run instead")

            def target():
                experiment.run(quick=args.quick, seed=args.seed,
                               jobs=1, use_cache=False)
    else:
        def target():
            experiment.run(quick=args.quick, seed=args.seed,
                           jobs=1, use_cache=False)

    profiler = cProfile.Profile()
    profiler.enable()
    target()
    profiler.disable()
    print(f"profile of {target_label}, top {args.top} by cumulative time:")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(args.top)
    if args.hot:
        from repro.experiments import parallel

        engine = parallel.LAST_ENGINE_STATS
        if engine:
            print("engine statistics for the profiled cell:")
            for key, value in engine.items():
                print(f"  {key:22s} {value}")
    if args.output:
        stats.dump_stats(args.output)
        print(f"profile data written to {args.output}")
    return 0


def cmd_trace(args):
    """Run one experiment cell with the flight recorder and export it.

    Picks the experiment's heaviest cell (same choice as ``profile
    --hot``), re-runs it with ``trace=True``, and writes the resulting
    timeline as Chrome trace-event JSON — load it at https://ui.perfetto.dev
    — plus an optional flat metrics dump.  Tracing never changes the
    cell's summary; the traced run bypasses the result cache.
    """
    import dataclasses

    from repro.experiments import parallel
    from repro.experiments.parallel import run_cell
    from repro.obs.export import (render_span_summary, write_chrome_trace,
                                  write_metrics)

    experiment = get_experiment(args.experiment)
    experiment.configure(
        hosts=args.hosts,
        placement=args.placement,
        shards=args.shards,
        sync=args.sync,
        rate=args.rate,
        checkpoint_every=args.checkpoint_every,
    )
    cells = experiment._cells(quick=args.quick, seed=args.seed)
    if not cells:
        print(f"{args.experiment}: no launch cells to trace", file=sys.stderr)
        return 1
    cell = max(cells, key=lambda c: (c.concurrency, c.hosts))
    replacements = {"trace": True}
    if args.shards is not None and cell.kind == "cluster":
        replacements["shards"] = args.shards
    if args.sync is not None and cell.kind == "cluster":
        replacements["sync"] = args.sync
    if args.checkpoint_every is not None and cell.kind == "cluster":
        replacements["checkpoint_every"] = args.checkpoint_every
    cell = dataclasses.replace(cell, **replacements)
    print(f"tracing cell {cell}")
    run_cell(cell)
    bundle = parallel.LAST_TRACE
    if not bundle:
        print("no trace produced", file=sys.stderr)
        return 1
    write_chrome_trace(bundle, args.out)
    events = sum(len(track) for track in bundle["tracks"].values())
    print(f"{len(bundle['tracks'])} tracks, {events} events "
          f"written to {args.out} (open in https://ui.perfetto.dev)")
    if args.metrics:
        write_metrics(bundle, args.metrics)
        print(f"metrics written to {args.metrics}")
    print()
    print(render_span_summary(bundle))
    return 0


def cmd_launch(args):
    host = build_host(args.preset, seed=args.seed)
    result = host.launch(args.concurrency)
    summary = result.startup_times(args.preset).summary()
    print(f"{args.preset}: {args.concurrency} containers")
    for key in ("mean", "p50", "p99", "min", "max"):
        print(f"  {key:5s} {summary[key]:.3f} s")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="catalog experiments and presets")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment")
    run_p.add_argument("--quick", action="store_true")
    run_p.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker processes for independent launch cells "
             "(default: $REPRO_JOBS or 1)",
    )
    run_p.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not update the result cache",
    )
    run_p.add_argument(
        "--hosts", type=int, default=None,
        help="cluster size for experiments that take one "
             "(scale: default 8 quick / 48 full; churn: 1 host)",
    )
    run_p.add_argument(
        "--placement", choices=("least-loaded", "round-robin"), default=None,
        help="cluster placement policy (default least-loaded)",
    )
    run_p.add_argument(
        "--shards", type=shard_count, default=None,
        help="split the cluster over this many shard simulators, one "
             "worker process each (default 1 = single-process; results "
             "are byte-identical across shard counts); 'auto' splits "
             "only when each shard keeps enough hosts to pay for its "
             "worker",
    )
    run_p.add_argument(
        "--sync",
        choices=("conservative", "optimistic", "hierarchical", "auto"),
        default=None,
        help="sharded barrier protocol: conservative lockstep epochs "
             "(default), optimistic speculation with rollback-by-replay, "
             "hierarchical (optimistic workers under a relay tree with "
             "a pipelined coordinator), or auto; results are "
             "byte-identical across modes — this only moves wall-clock",
    )
    run_p.add_argument(
        "--rate", type=float, default=None, metavar="PER_S",
        help="arrival rate for experiments that take one (scale: 0 = "
             "simultaneous burst; positive rates spread arrivals and "
             "drive the epoch protocol)",
    )
    run_p.add_argument(
        "--checkpoint-every", type=checkpoint_interval, default=None,
        metavar="EPOCHS",
        help="fork-checkpoint cadence for optimistic shard workers "
             "(default: adaptive, tied to the speculation window; 0 "
             "disables and rollback replays from t=0); wall-clock "
             "only — results are byte-identical",
    )
    run_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="also dump the experiment's structured data (sorted keys) "
             "to this file — the sharded-determinism gate diffs these",
    )

    trace_p = sub.add_parser(
        "trace", help="flight-record one experiment cell (Perfetto JSON)"
    )
    trace_p.add_argument("experiment")
    trace_p.add_argument("--quick", action="store_true")
    trace_p.add_argument(
        "--hosts", type=int, default=None,
        help="cluster size for experiments that take one",
    )
    trace_p.add_argument(
        "--placement", choices=("least-loaded", "round-robin"), default=None,
        help="cluster placement policy (default least-loaded)",
    )
    trace_p.add_argument(
        "--shards", type=shard_count, default=None,
        help="shard simulators for cluster cells ('auto' splits only "
             "when hosts-per-shard clears the overhead threshold); "
             "traces of burst and round-robin cells are byte-identical "
             "across shard counts",
    )
    trace_p.add_argument(
        "--sync",
        choices=("conservative", "optimistic", "hierarchical", "auto"),
        default=None,
        help="sharded barrier protocol for cluster cells; traces are "
             "byte-identical across modes (protocol counters ride the "
             "metrics export, not the timeline)",
    )
    trace_p.add_argument(
        "--rate", type=float, default=None, metavar="PER_S",
        help="arrival rate for experiments that take one; positive "
             "rates spread arrivals so the traced cell exercises the "
             "epoch protocol and exports its sync counters",
    )
    trace_p.add_argument(
        "--checkpoint-every", type=checkpoint_interval, default=None,
        metavar="EPOCHS",
        help="fork-checkpoint cadence for optimistic shard workers; "
             "checkpoint/rollback counters ride the metrics export, "
             "the timeline stays byte-identical",
    )
    trace_p.add_argument(
        "--out", default="trace.json", metavar="PATH",
        help="Chrome trace-event JSON output (default trace.json)",
    )
    trace_p.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="also dump the flat metrics registry (counters/gauges/"
             "histograms) to this file",
    )

    launch_p = sub.add_parser("launch", help="concurrent container launch")
    launch_p.add_argument("preset", choices=sorted(PRESETS))
    launch_p.add_argument("-c", "--concurrency", type=int, default=50)

    profile_p = sub.add_parser("profile", help="cProfile one experiment")
    profile_p.add_argument("experiment")
    profile_p.add_argument("--quick", action="store_true")
    profile_p.add_argument(
        "--hosts", type=int, default=None,
        help="cluster size for experiments that take one",
    )
    profile_p.add_argument(
        "--placement", choices=("least-loaded", "round-robin"), default=None,
        help="cluster placement policy (default least-loaded)",
    )
    profile_p.add_argument(
        "--shards", type=shard_count, default=None,
        help="shard simulators for cluster cells ('auto' splits only "
             "when hosts-per-shard clears the overhead threshold)",
    )
    profile_p.add_argument(
        "--sync",
        choices=("conservative", "optimistic", "hierarchical", "auto"),
        default=None,
        help="sharded barrier protocol for cluster cells; --hot prints "
             "the protocol's sync counters with the engine statistics",
    )
    profile_p.add_argument(
        "--rate", type=float, default=None, metavar="PER_S",
        help="arrival rate for experiments that take one; positive "
             "rates spread arrivals and drive the epoch protocol",
    )
    profile_p.add_argument(
        "--checkpoint-every", type=checkpoint_interval, default=None,
        metavar="EPOCHS",
        help="fork-checkpoint cadence for optimistic shard workers; "
             "--hot prints checkpoint/resume counters with the engine "
             "statistics",
    )
    profile_p.add_argument(
        "--hot", action="store_true",
        help="profile only the experiment's heaviest launch cell "
             "(one simulator, no harness overhead)",
    )
    profile_p.add_argument("--top", type=int, default=20,
                           help="rows of cumulative-time stats to print")
    profile_p.add_argument("-o", "--output", default=None,
                           help="also dump raw pstats data to this file")

    args = parser.parse_args(argv)
    handler = {
        "list": cmd_list,
        "run": cmd_run,
        "launch": cmd_launch,
        "profile": cmd_profile,
        "trace": cmd_trace,
    }
    return handler[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
