"""Command-line interface.

Usage::

    python -m repro list                     # catalog of experiments
    python -m repro run fig11 [--quick]      # one experiment, printed
    python -m repro launch fastiov -c 200    # raw concurrent launch
"""

import argparse
import sys

from repro.core import PRESETS, build_host
from repro.experiments import get_experiment, list_experiments


def cmd_list(_args):
    print("Experiments (paper artifacts):")
    for exp_id, title in list_experiments():
        print(f"  {exp_id:12s} {title}")
    print("\nSolution presets:")
    for name, config in sorted(PRESETS.items()):
        print(f"  {name:14s} {config.description}")
    return 0


def cmd_run(args):
    experiment = get_experiment(args.experiment)
    result = experiment.run(quick=args.quick, seed=args.seed)
    print(result.render())
    print()
    print(result.comparison_table())
    return 0


def cmd_launch(args):
    host = build_host(args.preset, seed=args.seed)
    result = host.launch(args.concurrency)
    summary = result.startup_times(args.preset).summary()
    print(f"{args.preset}: {args.concurrency} containers")
    for key in ("mean", "p50", "p99", "min", "max"):
        print(f"  {key:5s} {summary[key]:.3f} s")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="catalog experiments and presets")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment")
    run_p.add_argument("--quick", action="store_true")

    launch_p = sub.add_parser("launch", help="concurrent container launch")
    launch_p.add_argument("preset", choices=sorted(PRESETS))
    launch_p.add_argument("-c", "--concurrency", type=int, default=50)

    args = parser.parse_args(argv)
    handler = {"list": cmd_list, "run": cmd_run, "launch": cmd_launch}
    return handler[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
