"""Command-line interface.

Usage::

    python -m repro list                     # catalog of experiments
    python -m repro run fig11 [--quick]      # one experiment, printed
    python -m repro run fig13c --jobs 8      # parallel launch cells
    python -m repro run fig11 --no-cache     # ignore the result cache
    python -m repro run scale --shards 8     # sharded cluster simulation
    python -m repro run scale --hosts 48 --placement round-robin --json out.json
    python -m repro launch fastiov -c 200    # raw concurrent launch
    python -m repro profile fig11 --quick    # cProfile an experiment
    python -m repro profile fig11 --hot      # cProfile its heaviest cell
    python -m repro trace fig13c --out trace.json   # Perfetto timeline
    python -m repro trace scale --shards 4   # + dual-clock wallclock file
    python -m repro top scale --shards 8 --rate 200  # live engine view

``run`` caches per-launch summaries under ``.repro-cache/`` (override
with ``REPRO_CACHE_DIR``), keyed by source digest + host spec + cell
parameters, so repeated runs after unrelated edits stay fast while any
simulator change invalidates stale entries automatically.
"""

import argparse
import sys

from repro.core import PRESETS, build_host
from repro.experiments import get_experiment, list_experiments


def shard_count(value):
    """argparse type for ``--shards``: a positive int or ``auto``.

    ``auto`` defers to :func:`repro.cluster.sharded.resolve_shards`,
    which splits only when each shard keeps enough hosts to beat the
    worker spawn/barrier overhead (small cells run single-process).
    """
    if value == "auto":
        return "auto"
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError(
            f"shards must be >= 1 or 'auto', got {value}"
        )
    return count


def checkpoint_interval(value):
    """argparse type for ``--checkpoint-every``: epochs >= 0.

    0 disables fork checkpoints (optimistic rollback then falls back
    to full replay from t=0); omitting the flag keeps the adaptive
    cadence tied to the speculation window.
    """
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"checkpoint interval must be >= 0, got {value}"
        )
    return count


def cmd_list(_args):
    print("Experiments (paper artifacts):")
    for exp_id, title in list_experiments():
        print(f"  {exp_id:12s} {title}")
    print("\nSolution presets:")
    for name, config in sorted(PRESETS.items()):
        print(f"  {name:14s} {config.description}")
    return 0


def cmd_run(args):
    experiment = get_experiment(args.experiment)
    experiment.configure(
        hosts=args.hosts,
        placement=args.placement,
        shards=args.shards,
        sync=args.sync,
        rate=args.rate,
        checkpoint_every=args.checkpoint_every,
    )
    result = experiment.run(
        quick=args.quick,
        seed=args.seed,
        jobs=args.jobs,
        use_cache=not args.no_cache,
    )
    print(result.render())
    print()
    print(result.comparison_table())
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(result.data, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"result data written to {args.json}")
    return 0


def cmd_profile(args):
    """cProfile one experiment and print the top cumulative offenders.

    ``--hot`` profiles the experiment's single heaviest launch cell
    instead of the whole run: one simulator, no harness overhead, so the
    top of the listing is the engine/model hot path a perf PR should
    attack.  Experiments without launch cells fall back to a full run.
    ``--hot`` also prints the cell simulator's timing-wheel statistics
    (max bucket occupancy, spill re-bucketing count, cancelled-timer
    compactions, ...) after the profile listing.
    """
    import cProfile
    import pstats

    experiment = get_experiment(args.experiment)
    experiment.configure(
        hosts=args.hosts,
        placement=args.placement,
        shards=args.shards,
        sync=args.sync,
        rate=args.rate,
        checkpoint_every=args.checkpoint_every,
    )
    target_label = f"experiment {args.experiment!r}"
    if args.hot:
        from repro.experiments.parallel import run_cell

        cells = experiment._cells(quick=args.quick, seed=args.seed)
        if cells:
            cell = max(cells, key=lambda c: (c.concurrency, c.hosts))
            target_label = f"hot cell {cell}"

            def target():
                run_cell(cell)
        else:
            print(f"{args.experiment}: no launch cells; profiling the "
                  f"full run instead")

            def target():
                experiment.run(quick=args.quick, seed=args.seed,
                               jobs=1, use_cache=False)
    else:
        def target():
            experiment.run(quick=args.quick, seed=args.seed,
                           jobs=1, use_cache=False)

    profiler = cProfile.Profile()
    profiler.enable()
    target()
    profiler.disable()
    print(f"profile of {target_label}, top {args.top} by cumulative time:")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(args.top)
    if args.hot:
        from repro.experiments import parallel

        engine = parallel.LAST_ENGINE_STATS
        if engine:
            print("engine statistics for the profiled cell:")
            for key, value in engine.items():
                print(f"  {key:22s} {value}")
    if args.output:
        stats.dump_stats(args.output)
        print(f"profile data written to {args.output}")
    return 0


def _pick_trace_cell(args):
    """The experiment's heaviest cell, with the CLI's cluster knobs
    applied — shared by ``trace`` and ``top``."""
    import dataclasses

    experiment = get_experiment(args.experiment)
    experiment.configure(
        hosts=args.hosts,
        placement=args.placement,
        shards=args.shards,
        sync=args.sync,
        rate=args.rate,
        checkpoint_every=args.checkpoint_every,
    )
    cells = experiment._cells(quick=args.quick, seed=args.seed)
    if not cells:
        return None
    cell = max(cells, key=lambda c: (c.concurrency, c.hosts))
    replacements = {"trace": getattr(args, "trace", True)}
    if args.shards is not None and cell.kind == "cluster":
        replacements["shards"] = args.shards
    if args.sync is not None and cell.kind == "cluster":
        replacements["sync"] = args.sync
    if args.checkpoint_every is not None and cell.kind == "cluster":
        replacements["checkpoint_every"] = args.checkpoint_every
    return dataclasses.replace(cell, **replacements)


class _armed_probes:
    """Context manager: force runtime probes on for one traced run."""

    def __enter__(self):
        import os

        self._previous = os.environ.get("REPRO_RUNTIME_PROBES")
        os.environ["REPRO_RUNTIME_PROBES"] = "1"
        return self

    def __exit__(self, *exc_info):
        import os

        if self._previous is None:
            os.environ.pop("REPRO_RUNTIME_PROBES", None)
        else:
            os.environ["REPRO_RUNTIME_PROBES"] = self._previous


def cmd_trace(args):
    """Run one experiment cell with the flight recorder and export it.

    Picks the experiment's heaviest cell (same choice as ``profile
    --hot``), re-runs it with ``trace=True``, and writes the resulting
    timeline as Chrome trace-event JSON — load it at https://ui.perfetto.dev
    — plus an optional flat metrics dump.  Tracing never changes the
    cell's summary; the traced run bypasses the result cache.

    Cluster cells additionally run with runtime probes on and get a
    *dual-clock* companion file (``--wallclock``, default
    ``<out>.wallclock.json``): the same virtual tracks grouped under
    the worker process that simulated them, side by side with each
    process's wall-clock phase spans, rollback/checkpoint instants,
    and the coordinator's wait/place/reduce occupancy — which is how
    the once opt-in coordinator track is now part of the default trace
    output.  The ``--out`` file itself stays byte-identical across
    shard counts, sync modes, and probes on/off (the trace-determinism
    CI gate diffs it), which is why wall-clock data lives in its own
    file.  ``--no-wallclock`` skips the probes entirely.
    """
    from repro.experiments import parallel
    from repro.experiments.parallel import run_cell
    from repro.obs.export import (render_span_summary, write_chrome_trace,
                                  write_dual_clock_trace, write_metrics)

    cell = _pick_trace_cell(args)
    if cell is None:
        print(f"{args.experiment}: no launch cells to trace", file=sys.stderr)
        return 1
    wallclock = not args.no_wallclock and cell.kind == "cluster"
    print(f"tracing cell {cell}")
    if wallclock:
        with _armed_probes():
            run_cell(cell)
    else:
        run_cell(cell)
    bundle = parallel.LAST_TRACE
    if not bundle:
        print("no trace produced", file=sys.stderr)
        return 1
    write_chrome_trace(bundle, args.out)
    events = sum(len(track) for track in bundle["tracks"].values())
    print(f"{len(bundle['tracks'])} tracks, {events} events "
          f"written to {args.out} (open in https://ui.perfetto.dev)")
    telemetry = parallel.LAST_TELEMETRY
    if wallclock and telemetry:
        wallclock_path = args.wallclock or f"{args.out}.wallclock.json"
        write_dual_clock_trace(telemetry, wallclock_path, bundle=bundle)
        print(f"dual-clock trace ({len(telemetry['processes'])} process "
              f"groups) written to {wallclock_path}")
        if args.telemetry:
            import json

            with open(args.telemetry, "w") as handle:
                json.dump(telemetry, handle, sort_keys=True, indent=2)
                handle.write("\n")
            print(f"telemetry snapshot written to {args.telemetry}")
    if args.metrics:
        write_metrics(bundle, args.metrics)
        print(f"metrics written to {args.metrics}")
    print()
    print(render_span_summary(bundle))
    return 0


def cmd_top(args):
    """Run one experiment cell with the live engine dashboard.

    Same cell choice as ``trace``, with runtime probes forced on and a
    ``repro top`` terminal view repainting while the cell runs: per-
    process commit rate, wire throughput, rollback rate, and phase
    occupancy, plus the coordinator's placement progress and ETA.  The
    final frame and the cell summary print when the run completes.
    """
    from repro.experiments import parallel
    from repro.experiments.parallel import run_cell
    from repro.obs.live import LiveView, render

    cell = _pick_trace_cell(args)
    if cell is None:
        print(f"{args.experiment}: no launch cells to watch",
              file=sys.stderr)
        return 1
    if cell.kind != "cluster":
        print(f"{args.experiment}: heaviest cell is not a cluster cell; "
              "repro top needs the sharded runner", file=sys.stderr)
        return 1
    print(f"watching cell {cell}")
    with _armed_probes():
        with LiveView(interval_s=args.interval):
            summary = run_cell(cell)
    from repro.obs.runtime import TelemetryAggregator

    telemetry = parallel.LAST_TELEMETRY
    if telemetry:
        # Re-render the final frame from the finished snapshot so the
        # last state stays on screen after the live region clears.
        aggregator = TelemetryAggregator()
        for record in telemetry["processes"].values():
            aggregator._ingest_one(record)
        if telemetry.get("progress"):
            aggregator.note_progress(*telemetry["progress"])
        print(render(aggregator))
        print()
    for key in ("count", "mean", "p50", "p99"):
        if isinstance(summary, dict) and key in summary:
            print(f"  {key:5s} {summary[key]:.3f}"
                  if isinstance(summary[key], float)
                  else f"  {key:5s} {summary[key]}")
    return 0


def cmd_launch(args):
    host = build_host(args.preset, seed=args.seed)
    result = host.launch(args.concurrency)
    summary = result.startup_times(args.preset).summary()
    print(f"{args.preset}: {args.concurrency} containers")
    for key in ("mean", "p50", "p99", "min", "max"):
        print(f"  {key:5s} {summary[key]:.3f} s")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="catalog experiments and presets")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment")
    run_p.add_argument("--quick", action="store_true")
    run_p.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker processes for independent launch cells "
             "(default: $REPRO_JOBS or 1)",
    )
    run_p.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not update the result cache",
    )
    run_p.add_argument(
        "--hosts", type=int, default=None,
        help="cluster size for experiments that take one "
             "(scale: default 8 quick / 48 full; churn: 1 host)",
    )
    run_p.add_argument(
        "--placement", choices=("least-loaded", "round-robin"), default=None,
        help="cluster placement policy (default least-loaded)",
    )
    run_p.add_argument(
        "--shards", type=shard_count, default=None,
        help="split the cluster over this many shard simulators, one "
             "worker process each (default 1 = single-process; results "
             "are byte-identical across shard counts); 'auto' splits "
             "only when each shard keeps enough hosts to pay for its "
             "worker",
    )
    run_p.add_argument(
        "--sync",
        choices=("conservative", "optimistic", "hierarchical", "auto"),
        default=None,
        help="sharded barrier protocol: conservative lockstep epochs "
             "(default), optimistic speculation with rollback-by-replay, "
             "hierarchical (optimistic workers under a relay tree with "
             "a pipelined coordinator), or auto; results are "
             "byte-identical across modes — this only moves wall-clock",
    )
    run_p.add_argument(
        "--rate", type=float, default=None, metavar="PER_S",
        help="arrival rate for experiments that take one (scale: 0 = "
             "simultaneous burst; positive rates spread arrivals and "
             "drive the epoch protocol)",
    )
    run_p.add_argument(
        "--checkpoint-every", type=checkpoint_interval, default=None,
        metavar="EPOCHS",
        help="fork-checkpoint cadence for optimistic shard workers "
             "(default: adaptive, tied to the speculation window; 0 "
             "disables and rollback replays from t=0); wall-clock "
             "only — results are byte-identical",
    )
    run_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="also dump the experiment's structured data (sorted keys) "
             "to this file — the sharded-determinism gate diffs these",
    )

    trace_p = sub.add_parser(
        "trace", help="flight-record one experiment cell (Perfetto JSON)"
    )
    trace_p.add_argument("experiment")
    trace_p.add_argument("--quick", action="store_true")
    trace_p.add_argument(
        "--hosts", type=int, default=None,
        help="cluster size for experiments that take one",
    )
    trace_p.add_argument(
        "--placement", choices=("least-loaded", "round-robin"), default=None,
        help="cluster placement policy (default least-loaded)",
    )
    trace_p.add_argument(
        "--shards", type=shard_count, default=None,
        help="shard simulators for cluster cells ('auto' splits only "
             "when hosts-per-shard clears the overhead threshold); "
             "traces of burst and round-robin cells are byte-identical "
             "across shard counts",
    )
    trace_p.add_argument(
        "--sync",
        choices=("conservative", "optimistic", "hierarchical", "auto"),
        default=None,
        help="sharded barrier protocol for cluster cells; traces are "
             "byte-identical across modes (protocol counters ride the "
             "metrics export, not the timeline)",
    )
    trace_p.add_argument(
        "--rate", type=float, default=None, metavar="PER_S",
        help="arrival rate for experiments that take one; positive "
             "rates spread arrivals so the traced cell exercises the "
             "epoch protocol and exports its sync counters",
    )
    trace_p.add_argument(
        "--checkpoint-every", type=checkpoint_interval, default=None,
        metavar="EPOCHS",
        help="fork-checkpoint cadence for optimistic shard workers; "
             "checkpoint/rollback counters ride the metrics export, "
             "the timeline stays byte-identical",
    )
    trace_p.add_argument(
        "--out", default="trace.json", metavar="PATH",
        help="Chrome trace-event JSON output (default trace.json)",
    )
    trace_p.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="also dump the flat metrics registry (counters/gauges/"
             "histograms) to this file",
    )
    trace_p.add_argument(
        "--wallclock", default=None, metavar="PATH",
        help="dual-clock companion trace for cluster cells (default "
             "<out>.wallclock.json): wall-clock phase spans per "
             "process, coordinator occupancy, and the virtual tracks "
             "grouped under their owning worker",
    )
    trace_p.add_argument(
        "--no-wallclock", action="store_true",
        help="skip runtime probes and the dual-clock companion file",
    )
    trace_p.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="also dump the raw wall-clock telemetry snapshot (JSON) "
             "alongside the dual-clock trace",
    )

    top_p = sub.add_parser(
        "top", help="live dashboard of a running cluster cell"
    )
    top_p.add_argument("experiment")
    top_p.add_argument("--quick", action="store_true")
    top_p.add_argument(
        "--hosts", type=int, default=None,
        help="cluster size for experiments that take one",
    )
    top_p.add_argument(
        "--placement", choices=("least-loaded", "round-robin"), default=None,
        help="cluster placement policy (default least-loaded)",
    )
    top_p.add_argument(
        "--shards", type=shard_count, default=None,
        help="shard simulators for the watched cluster cell",
    )
    top_p.add_argument(
        "--sync",
        choices=("conservative", "optimistic", "hierarchical", "auto"),
        default=None,
        help="sharded barrier protocol for the watched cell",
    )
    top_p.add_argument(
        "--rate", type=float, default=None, metavar="PER_S",
        help="arrival rate; positive rates spread arrivals so there "
             "is an epoch frontier to watch",
    )
    top_p.add_argument(
        "--checkpoint-every", type=checkpoint_interval, default=None,
        metavar="EPOCHS",
        help="fork-checkpoint cadence for optimistic shard workers",
    )
    top_p.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="dashboard repaint interval (default 0.5s)",
    )
    top_p.set_defaults(trace=False)

    launch_p = sub.add_parser("launch", help="concurrent container launch")
    launch_p.add_argument("preset", choices=sorted(PRESETS))
    launch_p.add_argument("-c", "--concurrency", type=int, default=50)

    profile_p = sub.add_parser("profile", help="cProfile one experiment")
    profile_p.add_argument("experiment")
    profile_p.add_argument("--quick", action="store_true")
    profile_p.add_argument(
        "--hosts", type=int, default=None,
        help="cluster size for experiments that take one",
    )
    profile_p.add_argument(
        "--placement", choices=("least-loaded", "round-robin"), default=None,
        help="cluster placement policy (default least-loaded)",
    )
    profile_p.add_argument(
        "--shards", type=shard_count, default=None,
        help="shard simulators for cluster cells ('auto' splits only "
             "when hosts-per-shard clears the overhead threshold)",
    )
    profile_p.add_argument(
        "--sync",
        choices=("conservative", "optimistic", "hierarchical", "auto"),
        default=None,
        help="sharded barrier protocol for cluster cells; --hot prints "
             "the protocol's sync counters with the engine statistics",
    )
    profile_p.add_argument(
        "--rate", type=float, default=None, metavar="PER_S",
        help="arrival rate for experiments that take one; positive "
             "rates spread arrivals and drive the epoch protocol",
    )
    profile_p.add_argument(
        "--checkpoint-every", type=checkpoint_interval, default=None,
        metavar="EPOCHS",
        help="fork-checkpoint cadence for optimistic shard workers; "
             "--hot prints checkpoint/resume counters with the engine "
             "statistics",
    )
    profile_p.add_argument(
        "--hot", action="store_true",
        help="profile only the experiment's heaviest launch cell "
             "(one simulator, no harness overhead)",
    )
    profile_p.add_argument("--top", type=int, default=20,
                           help="rows of cumulative-time stats to print")
    profile_p.add_argument("-o", "--output", default=None,
                           help="also dump raw pstats data to this file")

    args = parser.parse_args(argv)
    handler = {
        "list": cmd_list,
        "run": cmd_run,
        "launch": cmd_launch,
        "profile": cmd_profile,
        "trace": cmd_trace,
        "top": cmd_top,
    }
    return handler[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
