"""Cluster layer: many simulated hosts on one virtual timeline.

* :class:`~repro.cluster.cluster.Cluster` — N fully wired hosts sharing
  one :class:`~repro.sim.core.Simulator`.
* :mod:`~repro.cluster.placement` — deterministic round-robin and
  least-loaded placement.
* :class:`~repro.cluster.churn.ClusterChurnDriver` — serverless churn
  (place, start, optional SeBS app, teardown) at burst sizes a single
  host's VF pool could never absorb.
* :mod:`~repro.cluster.sharded` — the same cluster split into K shards,
  each on its own simulator/worker process, stitched into one logical
  timeline by a deterministic placement protocol.
"""

from repro.cluster.churn import (
    ClusterChurnDriver,
    cluster_arrivals,
    run_cluster_cell,
)
from repro.cluster.cluster import Cluster
from repro.cluster.placement import (
    LeastLoadedPlacement,
    PLACEMENT_POLICIES,
    RoundRobinPlacement,
    make_placement,
)
from repro.cluster.shard import ClusterShard
from repro.cluster.sharded import (
    min_startup_lookahead,
    partition_hosts,
    peak_concurrency,
    run_sharded_cluster,
)

__all__ = [
    "Cluster",
    "ClusterChurnDriver",
    "ClusterShard",
    "LeastLoadedPlacement",
    "PLACEMENT_POLICIES",
    "RoundRobinPlacement",
    "cluster_arrivals",
    "make_placement",
    "min_startup_lookahead",
    "partition_hosts",
    "peak_concurrency",
    "run_cluster_cell",
    "run_sharded_cluster",
]
