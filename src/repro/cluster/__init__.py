"""Cluster layer: many simulated hosts on one virtual timeline.

* :class:`~repro.cluster.cluster.Cluster` — N fully wired hosts sharing
  one :class:`~repro.sim.core.Simulator`.
* :mod:`~repro.cluster.placement` — deterministic round-robin and
  least-loaded placement.
* :class:`~repro.cluster.churn.ClusterChurnDriver` — serverless churn
  (place, start, optional SeBS app, teardown) at burst sizes a single
  host's VF pool could never absorb.
"""

from repro.cluster.churn import ClusterChurnDriver, run_cluster_cell
from repro.cluster.cluster import Cluster
from repro.cluster.placement import (
    LeastLoadedPlacement,
    PLACEMENT_POLICIES,
    RoundRobinPlacement,
    make_placement,
)

__all__ = [
    "Cluster",
    "ClusterChurnDriver",
    "LeastLoadedPlacement",
    "PLACEMENT_POLICIES",
    "RoundRobinPlacement",
    "make_placement",
    "run_cluster_cell",
]
