r"""Fork-based copy-on-write checkpoints for optimistic shard workers.

The optimistic protocol's rollback problem is that the model's
generator processes cannot be snapshotted in-process — an instruction
pointer is not copyable (see ``Simulator.snapshot``, which is
engine-state-only for exactly this reason) — so PR 8 rolled a
conflicted shard back by rebuilding it from spec and replaying its
**entire** input journal from t=0: O(committed history) per rollback,
which is what capped how deep speculation could profitably go.

Shard workers are already forked processes, and ``os.fork`` is the one
snapshot primitive that *does* capture generators: the child is a
copy-on-write image of the whole interpreter — Simulator, wheel
columns, generator frames, hosts, journal position — for the cost of a
page-table copy.  This module turns that into a checkpoint/rollback
subsystem:

* **Capture.**  Every C confirmed epochs the worker forks a *paused*
  child at a commit-safe instant — one whose state no future placement
  batch can invalidate (clock at the committed frontier, or inside the
  coordinator's ``safe`` promise).  The child immediately blocks on a
  private control pipe.  At most one live checkpoint exists per
  worker: capturing a new one dismisses the old (its control pipe
  closes; the child sees EOF and exits — without the worker blocking
  on the exit).  The adaptive default cadence is *reactive*: a
  conflict-free cell never forks at all (the first conflict costs one
  full replay and arms the cadence), the base interval tracks the AIMD
  speculation window, every capture that is never resumed doubles the
  effective interval (a fork is pure overhead while nothing conflicts),
  and a resume resets the backoff — so storms keep a tight cadence and
  quiet cells converge to zero checkpoint overhead.

* **Journal truncation.**  The fork instant splits the journal: the
  child's CoW copy holds everything already applied, so the parent
  clears its list and keeps only post-checkpoint entries — the replay
  *suffix*.  Rollback cost becomes O(events since checkpoint) instead
  of O(history), and the working set the coordinator protocol carries
  stops growing with run length.

* **Resume.**  On a conflict below the speculated clock, the parent
  ships a handover — the journal suffix, committed bookkeeping, and
  the raw pending message — down the control pipe and ``os._exit``\ s.
  The child wakes holding the *committed* image, first forks a
  replacement clone of itself (the same logical checkpoint, so
  repeated rollbacks stay O(suffix)), then replays the suffix and
  keeps serving the coordinator pipe it inherited at fork time.  The
  coordinator never notices the process swap: request/reply framing is
  strictly one-outstanding per worker, so the pending request travels
  in the handover and the reply comes from the resumed image.

  The hierarchical coordinator's depth-2 pipelining needs no change
  here: it allows *two* requests in flight per pipe, but at most one is
  ever being processed — the one whose conflict triggers the handover.
  A queued follow-up is still unread bytes in the kernel pipe buffer,
  and the buffer belongs to the pipe, not the process: the resumed
  child inherits the same descriptors at fork time, so the queued
  request is simply read next, in order, by the new image.

The subsystem degrades exactly as the protocol requires: workers
started under a ``spawn`` context (or platforms without ``os.fork``,
or ``checkpoint_every=0``) never fork checkpoints and keep the full
journal, so rollback falls back to PR 8's rebuild-and-replay-from-t=0
path; the in-process group (daemonic pool workers, ``workers=0``)
cannot sacrifice its own process and always uses full replay.
Byte-identity is unaffected either way — checkpoints only move
wall-clock, which the byte-identity CI gates (optimistic ==
conservative at every shard count) hold to.
"""

import multiprocessing
import os

from repro.obs import runtime

#: Fallback cadence floor, in confirmed epochs, when the adaptive
#: interval is in use and the AIMD window is still in slow-start.
MIN_ADAPTIVE_INTERVAL = 2

#: Cap on the adaptive quiet-run backoff: each capture that is never
#: resumed doubles the effective cadence (a fork is pure overhead on a
#: cell that never conflicts), up to ``base << QUIET_SHIFT_CAP``.  A
#: resume resets the backoff — storms keep a tight cadence.
QUIET_SHIFT_CAP = 5


def fork_checkpoints_supported():
    """Whether this process can take CoW fork checkpoints at all."""
    return hasattr(os, "fork")


class ForkCheckpointer:
    """At most one live copy-on-write checkpoint child per worker.

    Args:
        states: ``{shard_id: _SpeculativeShard}`` served by this worker
            (the fork image captures all of them together, so capture
            waits for an instant where *every* shard is commit-safe).
        interval: Checkpoint cadence in confirmed epochs.  An explicit
            integer is honored unconditionally.  ``None`` is reactive
            and adaptive: no captures until the first rollback, then a
            base interval tracking the widest AIMD speculation window
            (a rollback-prone shard whose window collapsed checkpoints
            every couple of epochs, keeping its replay suffix short),
            doubled for every capture that is never resumed and reset
            on resume.
    """

    def __init__(self, states, interval=None):
        self.states = states
        self.interval = interval
        #: ``(pid, control_conn)`` of the live checkpoint child.
        self.live = None
        #: Confirmed epochs since the last capture.
        self.confirmed = 0
        #: Captures since the last resume (adaptive backoff input).
        self.quiet = 0
        #: Dismissed children not yet reaped (reaped without blocking).
        self._zombies = []

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    def _due(self):
        if self.interval is not None:
            return self.confirmed >= self.interval
        # Adaptive mode is reactive: a checkpoint only pays off when
        # rollbacks actually happen, so a conflict-free cell never
        # forks at all.  The first conflict costs one full replay and
        # arms the cadence; every later rollback resumes a checkpoint.
        if not any(
            state.stats["rollbacks"] for state in self.states.values()
        ):
            return False
        window = max(
            (state.window for state in self.states.values()), default=0
        )
        base = max(MIN_ADAPTIVE_INTERVAL, window)
        return self.confirmed >= base << min(self.quiet, QUIET_SHIFT_CAP)

    def after_step(self):
        """Cadence hook, called right after each step reply.

        Returns ``None`` on the normal (parent) path.  In a checkpoint
        child that was later *resumed*, the call that originally forked
        it returns here with the handover payload — the caller applies
        it and re-enters its loop on the pending message.
        """
        self.confirmed += 1
        if not self._due():
            return None
        if not all(
            state.checkpointable() for state in self.states.values()
        ):
            return None
        return self.capture()

    def capture(self):
        """Fork a paused CoW child; replaces the previous checkpoint.

        Returns ``None`` in the parent.  The child blocks inside this
        call until it is dismissed (EOF -> ``os._exit``) or resumed —
        at which point the call returns the handover payload in the
        (now live) child.
        """
        probe = runtime.get_probe()
        began = probe.begin() if probe is not None else 0.0
        control_parent, control_child = multiprocessing.Pipe()
        pid = os.fork()
        if pid:
            control_child.close()
            previous, self.live = self.live, (pid, control_parent)
            self.confirmed = 0
            self.quiet += 1
            for state in self.states.values():
                state.mark_checkpoint()
            if previous is not None:
                self._dismiss(previous)
            if probe is not None:
                probe.lap("checkpoint_fork", began)
                probe.instant("checkpoint_fork")
                probe.count("checkpoint_forks")
            return None
        control_parent.close()
        # Drop the inherited handle of the *previous* checkpoint's
        # control pipe: dismissal-by-EOF only works if the capturing
        # process holds the last copy of that pipe's send end — an
        # undismissable predecessor would leave ``waitpid`` hanging.
        if self.live is not None:
            try:
                self.live[1].close()
            except OSError:  # pragma: no cover - already closed
                pass
            self.live = None
        return self._child_wait(control_child)

    def _child_wait(self, control):
        """Checkpoint-child main: pause until dismissed or resumed."""
        while True:
            try:
                handover = control.recv()
            except (EOFError, OSError):
                os._exit(0)
            control.close()
            # Clone this image *before* replaying anything: the clone
            # is the same logical checkpoint, kept live so the next
            # rollback is again O(suffix) rather than impossible (the
            # journal prefix was truncated at capture and cannot be
            # replayed from spec).
            clone_parent, clone_child = multiprocessing.Pipe()
            pid = os.fork()
            if pid == 0:
                clone_parent.close()
                control = clone_child
                continue
            clone_child.close()
            self.live = (pid, clone_parent)
            self.confirmed = 0
            self.quiet = 0
            self._zombies = []
            return handover

    # ------------------------------------------------------------------
    # rollback / teardown
    # ------------------------------------------------------------------
    def hand_over(self, pending_payload):
        """Resume the checkpoint child and retire this process image.

        Ships each shard's committed bookkeeping (journal suffix,
        frontier, AIMD window, stats) plus the raw bytes of the pending
        request, then ``os._exit``\\ s — the child replies on the
        coordinator pipe it inherited.  Never returns.
        """
        pid, control = self.live
        probe = runtime.get_probe()
        handover = {
            "pending": pending_payload,
            "shards": {
                shard_id: state.pack_state()
                for shard_id, state in self.states.items()
            },
            "probe": probe.pack() if probe is not None else None,
        }
        control.send(handover)
        control.close()
        os._exit(0)

    def _dismiss(self, checkpoint):
        """Close the control pipe (EOF -> child exits) without waiting.

        Blocking on the child's exit would put fork latency *and* exit
        latency on the worker's hot path; instead the pid joins a
        reap list polled with ``WNOHANG`` on later dismissals and
        drained for real at :meth:`close`.
        """
        pid, control = checkpoint
        try:
            control.close()
        except OSError:  # pragma: no cover - already gone
            pass
        self._zombies.append(pid)
        self._reap()

    def _reap(self, block=False):
        remaining = []
        for pid in self._zombies:
            try:
                done, _ = os.waitpid(pid, 0 if block else os.WNOHANG)
            except (ChildProcessError, OSError):  # pragma: no cover
                # Inherited (not our own child) or already reaped.
                continue
            if done == 0:
                remaining.append(pid)
        self._zombies = remaining

    def close(self):
        """Dismiss the live checkpoint (worker shutdown path)."""
        if self.live is not None:
            self._dismiss(self.live)
            self.live = None
        self._reap(block=True)
