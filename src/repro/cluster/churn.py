"""Serverless churn driver for cluster-scale startup storms.

Drives the full secure-container lifecycle — place, start, (optionally)
run a SeBS app, tear down — across every host of a
:class:`~repro.cluster.cluster.Cluster`, at burst sizes far beyond what
a single host's 256-VF pool could absorb.  This is the Quark-style
workload the ROADMAP points at: thousands of concurrent microVM
startups arriving nearly simultaneously.

Placement happens at *arrival* time (after the arrival offset elapses),
so least-loaded placement sees the load that actually exists when the
invocation lands, and the whole schedule remains a deterministic
function of the seed.
"""

from repro.containers.engine import ContainerRequest
from repro.metrics.stats import Distribution
from repro.metrics.timeline import StartupRecord
from repro.obs import runtime
from repro.sim.core import Timeout
from repro.workloads.generator import ArrivalPattern
from repro.workloads.serverless import make_app


class ClusterChurnDriver:
    """Submits container lifecycles to a cluster and collects records.

    Args:
        cluster: The target :class:`Cluster`.
        app_name: Optional SeBS app (``repro.workloads.serverless``)
            each container runs after startup.
        teardown: Remove each container after it completes, recycling
            its VF and memory (the churn part of the workload).
        startup_deadline_s: Per-container startup watchdog (virtual
            seconds; None disables).  Each lifecycle arms a cancellable
            engine timer at placement and cancels it the moment the
            container is running, so a healthy storm pays O(1) per
            container and the watchdog never dispatches an event (the
            default is far above any modeled startup, keeping result
            byte-identity).  A blown deadline only increments
            ``deadline_misses`` — a liveness canary for pathological
            configurations, not a behavior change.
    """

    #: Generous default: the slowest modeled startups (vanilla SR-IOV at
    #: 10k concurrency) stay well under a minute of virtual time.
    STARTUP_DEADLINE_S = 900.0

    def __init__(self, cluster, app_name=None, teardown=True,
                 startup_deadline_s=STARTUP_DEADLINE_S):
        self.cluster = cluster
        self.app_name = app_name
        self.teardown = teardown
        self.startup_deadline_s = startup_deadline_s
        self.records = []
        #: Containers currently between arrival and readiness.
        self.in_flight = 0
        #: Peak of ``in_flight`` — the realized startup concurrency.
        self.peak_in_flight = 0
        #: Startups that outlived the watchdog deadline.
        self.deadline_misses = 0

    def submit(self, count, arrivals=None, memory_bytes=None,
               name_prefix="w"):
        """Spawn ``count`` lifecycles; returns their StartupRecords.

        Args:
            count: Number of invocations.
            arrivals: :class:`ArrivalPattern` (default: simultaneous
                burst, matching the paper's startup storms).
            memory_bytes: Per-container memory (None = spec default).
            name_prefix: Container name prefix (names must be unique
                across the cluster's lifetime).
        """
        if arrivals is None:
            arrivals = ArrivalPattern("burst")
        offsets = arrivals.offsets(count)
        records = []
        cluster = self.cluster
        for index, offset in enumerate(offsets):
            name = f"{name_prefix}{index}"
            record = StartupRecord(name)
            records.append(record)
            cluster.sim.spawn(
                self._lifecycle(name, record, offset, memory_bytes),
                name=f"churn-{name}",
            )
        self.records.extend(records)
        return records

    def _lifecycle(self, name, record, offset, memory_bytes):
        if offset:
            yield Timeout(offset)
        cluster = self.cluster
        index = cluster.place()
        host = cluster.hosts[index]
        self.in_flight += 1
        if self.in_flight > self.peak_in_flight:
            self.peak_in_flight = self.in_flight
        app = make_app(self.app_name) if self.app_name else None
        request = ContainerRequest(name, memory_bytes=memory_bytes, app=app)
        watchdog = None
        if self.startup_deadline_s:
            watchdog = cluster.sim.call_later(
                self.startup_deadline_s, self._deadline_missed, name
            )
        try:
            try:
                yield from host.engine.run_container(request, record)
            finally:
                if watchdog is not None:
                    watchdog.cancel()
                self.in_flight -= 1
            if self.teardown:
                yield from host.engine.remove_container(name)
        finally:
            cluster.unplace(index)

    def _deadline_missed(self, name):
        self.deadline_misses += 1

    def run(self, until=None):
        """Execute the simulation; returns the collected records."""
        self.cluster.sim.run(until=until)
        return self.records

    def startup_times(self, label=""):
        return Distribution(
            [record.startup_time for record in self.records], label=label
        )

    def __repr__(self):
        return (
            f"<ClusterChurnDriver n={len(self.records)} "
            f"app={self.app_name!r} peak={self.peak_in_flight}>"
        )


def cluster_arrivals(seed, rate_per_s=0.0):
    """The arrival schedule for one cluster cell.

    ``rate_per_s == 0`` is the paper's simultaneous burst; a positive
    rate is Poisson with a jitter stream forked from the *cluster* seed,
    so the schedule is identical whether the cell runs single-process or
    sharded (the sharded coordinator recomputes it and never perturbs
    any host's ``host-i`` stream).
    """
    if rate_per_s:
        from repro.sim.rng import Jitter

        return ArrivalPattern(
            "poisson", rate_per_s=rate_per_s,
            jitter=Jitter(seed).fork("arrivals"),
        )
    return ArrivalPattern("burst")


def run_cluster_cell(preset, concurrency, hosts, seed=0, app_name=None,
                     placement="least-loaded", teardown=True, shards=1,
                     workers=None, rate_per_s=0.0, engine_stats=None,
                     trace=None, sync="conservative",
                     checkpoint_every=None, telemetry=None):
    """One cluster-scale launch cell; returns a plain-JSON summary.

    The cluster analogue of ``launch_preset`` + ``summarize_launch``:
    pure in (preset, concurrency, hosts, seed, placement, rate), so it
    is safe to run in a worker process and to cache.  ``shards > 1``
    routes to the sharded runner (:mod:`repro.cluster.sharded`):
    round-robin and burst-arrival cells come back byte-identical to the
    single-process run; spread-arrival least-loaded cells follow the
    deterministic epoch protocol, under lockstep barriers
    (``sync="conservative"``) or Time-Warp-lite speculation
    (``sync="optimistic"``).  ``workers``, ``sync`` and
    ``checkpoint_every`` (the optimistic workers' fork-checkpoint
    cadence; 0 disables, None adapts) never change results;
    single-process runs ignore ``sync`` (there is no barrier).

    ``engine_stats``, if given, is a dict filled with the simulator's
    :meth:`~repro.sim.core.Simulator.wheel_stats` for diagnostics —
    single-process wheel stats, or the shards' aggregated stats plus
    the sync-protocol counters (epochs, barrier wait, rollbacks,
    speculated/replayed events); it is never part of the returned
    summary.

    ``trace``, if given, is a dict filled with the flight-recorder
    bundle (``repro.obs``): single-process runs record on one shared
    recorder; sharded runs record per shard and merge by track.  Never
    part of the returned summary, so the summary stays byte-identical
    with tracing on or off.

    ``telemetry``, if given, is a dict filled with the wall-clock
    telemetry snapshot (``repro.obs.runtime``): per-process phase
    totals, spans, instants and wire accounting.  Sharded runs probe
    the coordinator and every worker/relay; a single-process run gets
    one ``main`` probe timing the whole drive.  Same contract as
    ``trace``: never part of the summary.
    """
    from repro.cluster.sharded import resolve_shards

    shards = resolve_shards(shards, hosts, placement=placement,
                            rate_per_s=rate_per_s, sync=sync)
    if shards > 1:
        from repro.cluster.sharded import run_sharded_cluster

        return run_sharded_cluster(
            preset, concurrency, hosts, seed=seed, shards=shards,
            placement=placement, app_name=app_name, teardown=teardown,
            arrivals=cluster_arrivals(seed, rate_per_s), workers=workers,
            trace=trace, sync=sync, engine_stats=engine_stats,
            checkpoint_every=checkpoint_every, telemetry=telemetry,
        )
    from repro.cluster.cluster import Cluster

    recorder = None
    if trace is not None:
        from repro.obs.recorder import TraceRecorder

        recorder = TraceRecorder()
    probe = None
    aggregator = None
    if telemetry is not None or runtime.probes_enabled():
        from repro.obs.runtime import RuntimeProbe, TelemetryAggregator

        aggregator = TelemetryAggregator()
        probe = RuntimeProbe("main", hosts=[[0, hosts]])
        aggregator.attach_local(probe)
        runtime.set_aggregator(aggregator)
        runtime.set_probe(probe)
    cluster = Cluster(preset, hosts=hosts, seed=seed, placement=placement,
                      trace=recorder)
    driver = ClusterChurnDriver(cluster, app_name=app_name, teardown=teardown)
    driver.submit(concurrency, arrivals=cluster_arrivals(seed, rate_per_s))
    try:
        if probe is not None:
            cluster.sim.runtime_probe = probe
            began = probe.begin()
            driver.run()
            probe.lap("compute", began)
        else:
            driver.run()
    finally:
        if probe is not None:
            runtime.set_probe(None)
            runtime.set_aggregator(None)
    if telemetry is not None and aggregator is not None:
        snapshot = aggregator.snapshot()
        snapshot["mode"] = "single"
        snapshot["shards"] = 1
        telemetry.update(snapshot)
    if engine_stats is not None:
        engine_stats.update(cluster.sim.wheel_stats())
    if recorder is not None:
        for host in cluster.hosts:
            host.finalize_trace()
        recorder.registry.ingest_wheel_stats(cluster.sim.wheel_stats())
        recorder.registry.ingest_ticker_stats(cluster.ticker.stats())
        trace.update(recorder.dump())
    summary = driver.startup_times().summary()
    return {
        "count": summary["count"],
        "mean": summary["mean"],
        "p50": summary["p50"],
        "p99": summary["p99"],
        "min": summary["min"],
        "max": summary["max"],
        "hosts": hosts,
        "peak_in_flight": driver.peak_in_flight,
        "events": cluster.sim.events_dispatched,
        "free_vfs_total": cluster.free_vf_total(),
        "peak_load_per_host": list(cluster.peak_loads),
    }
