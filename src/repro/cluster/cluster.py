"""A multi-host cluster on one virtual timeline.

The paper's experiments stop at one server because that is where the
kernel bottlenecks live; production serverless platforms (Quark-style
secure-container fleets) spread the same burst over many servers.
:class:`Cluster` instantiates N fully wired :class:`~repro.core.host.Host`
models that share a single :class:`~repro.sim.core.Simulator`, so a
10,000-startup burst is simulated as one deterministic event stream —
every host's locks, CPUs, DRAM bandwidth, and VF pool are independent,
but virtual time is global.

Determinism: host *i* draws its jitter from ``Jitter(seed).fork("host-i")``,
so adding hosts never perturbs the draws of existing ones, and a
cluster run is a pure function of (config, spec, hosts, seed).
"""

from repro.core.presets import get_preset
from repro.sim.core import Simulator
from repro.sim.rng import Jitter
from repro.sim.ticker import DaemonTicker
from repro.spec import PAPER_TESTBED

from repro.cluster.placement import make_placement
from repro.core.host import Host


class Cluster:
    """N simulated hosts sharing one virtual clock.

    Args:
        preset_or_config: Solution preset name (or a SolutionConfig)
            applied to every host.
        hosts: Number of hosts.
        spec: Per-host :class:`~repro.spec.HostSpec` (default: paper
            testbed).
        seed: Cluster seed; per-host jitter streams are CRC-forked.
        vf_count: VFs to pre-create per host (default: NIC maximum).
        placement: "least-loaded" (default) or "round-robin".
    """

    def __init__(self, preset_or_config, hosts=4, spec=None, seed=0,
                 vf_count=None, placement="least-loaded", trace=None):
        if hosts <= 0:
            raise ValueError(f"hosts must be positive, got {hosts}")
        if isinstance(preset_or_config, str):
            config = get_preset(preset_or_config)
        else:
            config = preset_or_config
        self.config = config
        self.seed = seed
        # One wheel width for the whole cluster (and the same one every
        # shard uses), derived from the spec: sharding stays a pure
        # wall-clock knob.
        wheel_spec = spec if spec is not None else PAPER_TESTBED
        self.sim = Simulator(bucket_width=wheel_spec.timer_wheel_width())
        #: Optional flight recorder shared by every host (one simulator,
        #: one timeline); tracks stay disjoint because each host scopes
        #: its locks/daemons with its own name.
        self.trace = trace
        if trace is not None:
            trace.bind(self.sim)
        self.placement = make_placement(placement)
        #: Cell-wide aggregated scan tick: every host's fastiovd scanner
        #: parks on this one ticker, so an idle interval costs one event
        #: for the whole cell instead of one per host.
        self.ticker = DaemonTicker(
            self.sim, wheel_spec.fastiovd_scan_interval_s
        )
        base = Jitter(seed)
        self.hosts = [
            Host(
                config,
                spec=spec,
                seed=base.fork(f"host-{index}").seed,
                vf_count=vf_count,
                sim=self.sim,
                name=f"host{index}",
                trace=trace,
                ticker=self.ticker,
            )
            for index in range(hosts)
        ]
        #: Containers currently placed on each host (driver-maintained).
        self.loads = [0] * hosts
        #: Peak concurrent placements per host — the placement-skew
        #: metric the scale table reports.
        self.peak_loads = [0] * hosts

    def place(self):
        """Pick a host for a new container; returns its index."""
        index = self.placement.pick(self.loads)
        load = self.loads[index] + 1
        self.loads[index] = load
        if load > self.peak_loads[index]:
            self.peak_loads[index] = load
        return index

    def unplace(self, index):
        """Return a container's slot to the host at ``index``."""
        self.loads[index] -= 1

    @property
    def size(self):
        return len(self.hosts)

    def free_vf_total(self):
        """Free VFs across the cluster (None for non-SR-IOV presets)."""
        totals = [getattr(host.cni, "free_vf_count", None) for host in self.hosts]
        if any(total is None for total in totals):
            return None
        return sum(totals)

    def __repr__(self):
        return (
            f"<Cluster {self.size}x {self.config.name!r} "
            f"placement={self.placement.name}>"
        )
