"""Container placement policies for the multi-host cluster.

Placement is intentionally simple and deterministic: the scheduling
decision the paper cares about happens *inside* one host (lock
decomposition, zeroing, VF init), so the cluster layer only needs to
spread load the way a serverless control plane would — round-robin for
uniformity, least-loaded to absorb bursty skew.  Ties break by host
index so every run is reproducible.

Two implementations of least-loaded exist on purpose:

* :class:`LeastLoadedPlacement` — the O(hosts) exact scan over the load
  vector.  It is the *semantic definition* (minimum load, ties to the
  lowest host index) and the oracle the differential tests compare
  against.
* :class:`LeastLoadedTracker` — an incremental lazy min-heap of
  ``(load, host)`` entries with stale-entry invalidation, O(log hosts)
  amortized per pick/release.  The sharded coordinator places every
  spread arrival centrally, so the exact scan made its per-epoch work
  O(arrivals x hosts) — the serial bottleneck that capped shard
  speedup and made a 1M-host cell unplaceable.  The heap is
  *bit-identical* to the scan: heap order on ``(load, host)`` tuples is
  exactly "minimum load, ties to the lowest index", and a fresh entry
  is pushed on every load change, so after stale tops are popped the
  heap top is a valid entry that lower-bounds every host's current
  entry — i.e. the exact argmin.
"""

import heapq


class RoundRobinPlacement:
    """Cycle through hosts in index order."""

    name = "round-robin"

    __slots__ = ("_next",)

    def __init__(self):
        self._next = 0

    def pick(self, loads):
        index = self._next
        self._next = (index + 1) % len(loads)
        return index


class LeastLoadedPlacement:
    """Pick the host with the fewest active containers (ties: lowest index)."""

    name = "least-loaded"

    __slots__ = ()

    def pick(self, loads):
        best = 0
        best_load = loads[0]
        for index in range(1, len(loads)):
            load = loads[index]
            if load < best_load:
                best = index
                best_load = load
        return best


class LeastLoadedTracker:
    """Incremental least-loaded placement over a lazy min-heap.

    Maintains the coordinator's load vector plus a heap of ``(load,
    host)`` entries.  Entries are never updated in place: every load
    change pushes a fresh entry, and :meth:`pick` lazily pops entries
    whose load no longer matches the vector (each push creates at most
    one such stale pop, so the amortized cost stays O(log hosts)).

    Bit-identity with the exact scan: every host always has one entry
    carrying its *current* load (pushed by the last change, or the
    initial build), and the heap top is the minimum ``(load, host)``
    tuple over all entries.  :meth:`pick` pops tops until the top
    matches the load vector; because that top was the heap minimum, it
    lower-bounds every host's current entry — so it is exactly the
    ``(min load, min index)`` host the scan would return.

    ``heap_ops`` counts pushes + stale pops — exported through the
    sync stats as ``placement_heap_ops`` so the coordinator's placement
    cost is observable next to its wait time.
    """

    __slots__ = ("loads", "_heap", "heap_ops")

    def __init__(self, hosts):
        self.loads = [0] * hosts
        # Already sorted -> a valid heap, no heapify pass needed.
        self._heap = [(0, host) for host in range(hosts)]
        self.heap_ops = 0

    def pick(self):
        """Place one arrival on the least-loaded host; returns it."""
        heap = self._heap
        loads = self.loads
        load, host = heap[0]
        while load != loads[host]:
            heapq.heappop(heap)
            self.heap_ops += 1
            load, host = heap[0]
        loads[host] = load + 1
        heapq.heappush(heap, (load + 1, host))
        self.heap_ops += 1
        return host

    def release(self, host, count=1):
        """Apply a teardown delta: ``count`` containers left ``host``."""
        load = self.loads[host] - count
        self.loads[host] = load
        heapq.heappush(self._heap, (load, host))
        self.heap_ops += 1


class ScanTracker:
    """The same tracker interface over a plain policy scan.

    Fallback for placement policies without an incremental
    implementation; also the oracle shape the differential property
    test drives against :class:`LeastLoadedTracker`.
    """

    __slots__ = ("loads", "_policy", "heap_ops")

    def __init__(self, hosts, policy=None):
        self.loads = [0] * hosts
        self._policy = policy or LeastLoadedPlacement()
        self.heap_ops = 0

    def pick(self):
        host = self._policy.pick(self.loads)
        self.loads[host] += 1
        return host

    def release(self, host, count=1):
        self.loads[host] -= count


def make_load_tracker(placement, hosts):
    """The coordinator's incremental load tracker for ``placement``.

    Least-loaded gets the lazy min-heap; anything else scans through
    its policy object.  Both expose ``pick()``/``release()``/
    ``heap_ops`` and are bit-identical to placing against the policy's
    ``pick(loads)`` directly.
    """
    if placement == LeastLoadedPlacement.name:
        return LeastLoadedTracker(hosts)
    return ScanTracker(hosts, make_placement(placement))


PLACEMENT_POLICIES = {
    RoundRobinPlacement.name: RoundRobinPlacement,
    LeastLoadedPlacement.name: LeastLoadedPlacement,
}


def make_placement(name):
    """Instantiate a placement policy by name."""
    try:
        return PLACEMENT_POLICIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown placement policy {name!r}; "
            f"available: {sorted(PLACEMENT_POLICIES)}"
        ) from None
