"""Container placement policies for the multi-host cluster.

Placement is intentionally simple and deterministic: the scheduling
decision the paper cares about happens *inside* one host (lock
decomposition, zeroing, VF init), so the cluster layer only needs to
spread load the way a serverless control plane would — round-robin for
uniformity, least-loaded to absorb bursty skew.  Ties break by host
index so every run is reproducible.
"""


class RoundRobinPlacement:
    """Cycle through hosts in index order."""

    name = "round-robin"

    __slots__ = ("_next",)

    def __init__(self):
        self._next = 0

    def pick(self, loads):
        index = self._next
        self._next = (index + 1) % len(loads)
        return index


class LeastLoadedPlacement:
    """Pick the host with the fewest active containers (ties: lowest index)."""

    name = "least-loaded"

    __slots__ = ()

    def pick(self, loads):
        best = 0
        best_load = loads[0]
        for index in range(1, len(loads)):
            load = loads[index]
            if load < best_load:
                best = index
                best_load = load
        return best


PLACEMENT_POLICIES = {
    RoundRobinPlacement.name: RoundRobinPlacement,
    LeastLoadedPlacement.name: LeastLoadedPlacement,
}


def make_placement(name):
    """Instantiate a placement policy by name."""
    try:
        return PLACEMENT_POLICIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown placement policy {name!r}; "
            f"available: {sorted(PLACEMENT_POLICIES)}"
        ) from None
