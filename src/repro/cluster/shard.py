"""One shard of a sharded cluster: a host slice on its own simulator.

A :class:`ClusterShard` owns a contiguous range of the cluster's hosts
— built with exactly the seeds (``Jitter(seed).fork("host-i")``) and
names (``host{i}``) the single-process :class:`~repro.cluster.cluster.Cluster`
would give them — on a private :class:`~repro.sim.core.Simulator`.
Because hosts only interact through placement, a host's event stream is
bit-identical whether it shares a simulator with 47 peers or sits in a
shard with 5: locks, CPUs, DRAM bandwidth, the VF pool, and the jitter
streams are all per-host.  The shard therefore needs only two inputs
from the outside world:

* *assignments* — which containers land on its hosts, and when they
  arrive (global index, arrival time, global host index); and
* *barrier times* — how far to advance virtual time before the next
  exchange (see :mod:`repro.cluster.sharded` for the protocol).

and it produces the per-container records, per-host load peaks, VF
counts, and the teardown times the coordinator's least-loaded placement
needs.  Everything it returns is plain data, safe to ship over a pipe
from a worker process.
"""

from repro.containers.engine import ContainerRequest
from repro.core.host import Host
from repro.core.presets import get_preset
from repro.metrics.timeline import StartupRecord
from repro.sim.core import Simulator, Timeout
from repro.sim.rng import Jitter
from repro.sim.ticker import DaemonTicker
from repro.spec import PAPER_TESTBED
from repro.workloads.serverless import make_app


class ClusterShard:
    """Hosts ``[host_start, host_stop)`` of a cluster, on one simulator.

    Args:
        preset_or_config: Solution preset name (or SolutionConfig), as
            for :class:`~repro.cluster.cluster.Cluster`.
        host_start, host_stop: Global host-index range this shard owns.
        spec: Per-host HostSpec (default: paper testbed).
        seed: The *cluster* seed; per-host streams are CRC-forked from
            it with the global host index, so the shard split never
            perturbs a host's draws.
        vf_count: VFs to pre-create per host (default: NIC maximum).
        app_name: Optional SeBS app each container runs after startup.
        teardown: Remove each container after it completes.
        memory_bytes: Per-container memory (None = spec default).
    """

    def __init__(self, preset_or_config, host_start, host_stop, spec=None,
                 seed=0, vf_count=None, app_name=None, teardown=True,
                 memory_bytes=None, trace=False):
        if not 0 <= host_start < host_stop:
            raise ValueError(
                f"empty or negative host range [{host_start}, {host_stop})"
            )
        if isinstance(preset_or_config, str):
            config = get_preset(preset_or_config)
        else:
            config = preset_or_config
        self.config = config
        self.host_start = host_start
        self.host_stop = host_stop
        self.app_name = app_name
        self.teardown = teardown
        self.memory_bytes = memory_bytes
        # Same spec-derived wheel width as the unsharded Cluster: shard
        # count must stay a pure wall-clock knob.
        wheel_spec = spec if spec is not None else PAPER_TESTBED
        self.sim = Simulator(bucket_width=wheel_spec.timer_wheel_width())
        #: Per-shard flight recorder (``trace=True``); its dump ships
        #: with :meth:`result` and the coordinator merges the shards'
        #: tracks into one logical timeline by global host index.
        self.trace = None
        if trace:
            from repro.obs.recorder import TraceRecorder

            self.trace = TraceRecorder()
            self.trace.bind(self.sim)
        #: Shard-wide aggregated scan tick (mirrors Cluster.ticker): the
        #: shard's hosts share one scan-tick event per interval.
        self.ticker = DaemonTicker(
            self.sim, wheel_spec.fastiovd_scan_interval_s
        )
        base = Jitter(seed)
        #: Hosts keyed by *global* index.
        self.hosts = {
            index: Host(
                config,
                spec=spec,
                seed=base.fork(f"host-{index}").seed,
                vf_count=vf_count,
                sim=self.sim,
                name=f"host{index}",
                trace=self.trace,
                ticker=self.ticker,
            )
            for index in range(host_start, host_stop)
        }
        self.loads = {index: 0 for index in self.hosts}
        self.peak_loads = {index: 0 for index in self.hosts}
        #: (arrival_time, done_time, startup_time) keyed by global
        #: container index, filled as lifecycles complete.
        self.records = {}
        #: Teardown load deltas (time, global host index) not yet
        #: handed to the coordinator.
        self._teardowns = []
        #: Startup-watchdog expiries (mirrors ClusterChurnDriver).
        self.deadline_misses = 0
        #: Lifecycles submitted / still running.  ``live`` counts a
        #: lifecycle from spawn (even before its arrival offset elapses)
        #: until its teardown completes; the optimistic protocol only
        #: speculates while live work exists, so a shard can never
        #: free-run its daemons past the cluster's natural end.
        self.started = 0
        self.live = 0
        #: Virtual time of the last lifecycle completion — the shard's
        #: *natural* end, unlike ``sim.now`` which speculation may have
        #: pushed further.
        self.last_lifecycle_end = 0.0
        #: Set by :meth:`discard` when a rollback abandons this shard.
        self.abandoned = False

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def submit(self, assignments, name_prefix="w"):
        """Spawn lifecycles for ``[(global_index, arrival_time, host_index)]``.

        Arrival times are absolute virtual times; each lifecycle sleeps
        ``arrival - now`` so the container arrives at exactly the same
        instant it would in the single-process run.
        """
        now = self.sim.now
        for global_index, arrival, host_index in assignments:
            name = f"{name_prefix}{global_index}"
            self.started += 1
            self.live += 1
            self.sim.spawn(
                self._lifecycle(global_index, name, arrival - now, host_index),
                name=f"churn-{name}",
            )

    def _lifecycle(self, global_index, name, offset, host_index):
        # Mirrors ClusterChurnDriver._lifecycle yield-for-yield so the
        # sharded event stream is the single-process one, minus the
        # other shards' hosts.
        if offset:
            yield Timeout(offset)
        sim = self.sim
        host = self.hosts[host_index]
        record = StartupRecord(name)
        arrival_time = sim.now
        load = self.loads[host_index] + 1
        self.loads[host_index] = load
        if load > self.peak_loads[host_index]:
            self.peak_loads[host_index] = load
        app = make_app(self.app_name) if self.app_name else None
        request = ContainerRequest(
            name, memory_bytes=self.memory_bytes, app=app
        )
        # Same startup watchdog as ClusterChurnDriver._lifecycle (armed
        # and cancelled at the same yield points, so the per-shard event
        # stream matches the single-process one exactly).
        from repro.cluster.churn import ClusterChurnDriver

        watchdog = sim.call_later(
            ClusterChurnDriver.STARTUP_DEADLINE_S,
            self._deadline_missed, name,
        )
        try:
            try:
                yield from host.engine.run_container(request, record)
            finally:
                watchdog.cancel()
                # A discarded shard's generators are closed mid-flight
                # (GeneratorExit at garbage collection); a timeline that
                # was rolled back never happened, so record nothing.
                if not self.abandoned:
                    self.records[global_index] = (
                        arrival_time, sim.now, record.startup_time
                    )
            if self.teardown:
                yield from host.engine.remove_container(name)
        finally:
            if not self.abandoned:
                self.loads[host_index] -= 1
                self.live -= 1
                self.last_lifecycle_end = sim.now
                self._teardowns.append((sim.now, host_index))

    def _deadline_missed(self, name):
        self.deadline_misses += 1

    def run_until(self, when):
        """Advance to barrier ``when``; returns the new teardown deltas."""
        self.sim.run_until(when)
        return self.take_teardowns()

    def discard(self):
        """Mark this shard's timeline as rolled back and abandoned.

        Called by the optimistic runner before the shard is dropped for
        a replayed replacement: the half-run lifecycle generators get
        closed whenever garbage collection reaps the simulator, and
        their cleanup must not record startups or teardowns from a
        timeline that officially never happened.
        """
        self.abandoned = True

    def drain(self):
        """Run until every lifecycle finished; returns the local end time.

        Daemon work scheduled past the last lifecycle's completion stays
        pending — exactly as in a single-process run, where it only
        executes while *some* host still has live work.  The coordinator
        turns the per-shard end times into a global horizon and calls
        :meth:`run_until` once more so every shard's background daemons
        tick as far as they would have on the shared timeline.
        """
        self.sim.run()
        return self.sim.now

    def take_teardowns(self, upto=None):
        """Teardown deltas recorded since the last call.

        With ``upto`` given, only deltas with time <= ``upto`` are
        taken; the rest stay buffered.  This is the optimistic
        protocol's anti-message boundary: teardowns a speculating shard
        produced *beyond* its committed frontier stay local (and are
        simply discarded with the shard on rollback), so the
        coordinator only ever sees deltas that can no longer be
        invalidated.  The buffer is appended in dispatch order, so its
        times are non-decreasing and the committed prefix is a slice.

        The same boundary makes fork-checkpoint resume safe: a shard
        replayed from a CoW image regenerates every teardown between
        the checkpoint and the committed frontier, and the resumed
        worker re-drops them with ``upto`` at its reported watermark —
        so the coordinator's load vector never sees a delta twice no
        matter which process image produced it.

        Optimistic/hierarchical step replies do not ship these pairs
        verbatim: the worker summarizes each committed batch of them
        into a per-host load digest (``wire.digest_deltas``) — the
        coordinator only ever decrements loads with them, and every
        reply is applied before the next placement decision, so the
        digest is information-lossless for placement and relay nodes
        can merge child replies by addition.
        """
        deltas = self._teardowns
        if upto is None:
            self._teardowns = []
            return deltas
        cut = 0
        while cut < len(deltas) and deltas[cut][0] <= upto:
            cut += 1
        self._teardowns = deltas[cut:]
        return deltas[:cut]

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def result(self):
        """Plain-data summary of this shard (pickles cheaply)."""
        free_vfs = {
            index: getattr(host.cni, "free_vf_count", None)
            for index, host in self.hosts.items()
        }
        result = {
            "records": sorted(
                (index,) + data for index, data in self.records.items()
            ),
            "loads": dict(self.loads),
            "peak_loads": dict(self.peak_loads),
            "free_vfs": free_vfs,
            "events": self.sim.events_dispatched,
            "now": self.sim.now,
            "wheel_stats": self.sim.wheel_stats(),
        }
        if self.trace is not None:
            for host in self.hosts.values():
                host.finalize_trace()
            self.trace.registry.ingest_wheel_stats(self.sim.wheel_stats())
            self.trace.registry.ingest_ticker_stats(self.ticker.stats())
            result["trace"] = self.trace.dump()
        return result

    def __repr__(self):
        return (
            f"<ClusterShard hosts=[{self.host_start},{self.host_stop}) "
            f"{self.config.name!r} records={len(self.records)}>"
        )
