r"""Sharded cluster simulation: one logical timeline over many cores.

The single-process :class:`~repro.cluster.cluster.Cluster` puts N hosts
on one simulator, so a 10,000-startup storm is one serial event stream
on one core.  Hosts in the model are almost perfectly independent —
per-host locks, CPUs, DRAM, VF pools — and interact only through
*placement*, which is exactly the structure this module exploits: the
cluster's hosts are partitioned into K contiguous shards, each simulated
by its own :class:`~repro.cluster.shard.ClusterShard` (optionally in its
own worker process), and a deterministic placement protocol stitches
the shards into one logical timeline.

Round-robin: zero synchronization
---------------------------------

Round-robin placement is a pure function of arrival order (container
``n`` lands on host ``n % H``), and arrival order is a pure function of
the arrival schedule, which is known before the simulation starts.  The
whole placement plan is therefore computed up front, each shard receives
its containers in one message, and the shards run to completion with no
barriers at all.  Because a host's event stream does not depend on which
simulator it shares (per-host jitter forks ``host-i``, per-host state),
the merged result is **byte-identical** to the single-process run for
every shard count.

Least-loaded: conservative epoch barriers
-----------------------------------------

Least-loaded placement needs cross-shard load knowledge: the pick for an
arrival at time *t* depends on every placement and teardown before *t*.
Placements are made centrally (the coordinator walks arrivals in
schedule order), so the only information that must flow between shards
is *teardown times* — and those become known only as each shard
simulates.  The protocol advances all shards in lockstep over a fixed
virtual-time grid of width ``L`` (the lookahead, derived from the
minimum possible startup latency, :func:`min_startup_lookahead`):

1. at barrier ``kL`` every shard has simulated to exactly ``kL`` and has
   reported every teardown with time <= ``kL``;
2. the coordinator applies the reported load deltas, places the arrivals
   of epoch ``[kL, (k+1)L)`` in (time, index) order against its load
   vector, and sends each shard its assignments;
3. every shard advances to ``(k+1)L``, reporting new teardowns.

A teardown is thus visible to an arrival iff it happened at or before
the start of the arrival's epoch — a *conservative* view (the load
vector briefly overestimates), but one defined purely on the fixed grid:
the placement sequence is a deterministic function of the arrival
schedule and per-host teardown times, both of which are independent of
the shard count and of how shards map to worker processes.  Results are
therefore invariant to K and ``workers``.  Epochs without arrivals are
skipped in one jump (the visibility rule depends only on the grid, not
on which barriers were visited).  For a simultaneous burst every arrival
lands in epoch 0 before any teardown exists, the pick sequence cycles
exactly like round-robin, and the K > 1 result is byte-identical to the
single-process run for this case too.

Optimistic: speculate past the barrier, replay on conflict
----------------------------------------------------------

``sync="optimistic"`` keeps the *semantics* of the conservative grid —
placement still happens centrally, epoch by epoch, under the same
teardown-visibility rule — but decouples each shard's local clock from
the lockstep barriers (Time-Warp style, restricted to the one conflict
this model has).  Three changes:

* **Combined step messages.**  One ``("step", kL, (k+1)L, safe,
  batches)`` round-trip per epoch replaces the conservative submit +
  run_until pair, halving per-epoch protocol latency.  ``safe`` is a
  promise only this coordinator can make — the arrival schedule is
  known up front, so the earliest barrier any future batch can carry
  is the next unplaced arrival's epoch start.
* **Speculation.**  Between messages a shard free-runs past its
  committed frontier in lookahead-sized quanta: *risk-free* up to the
  ``safe`` bound (no batch below it can ever arrive, so that work is
  certain to commit), and beyond it bounded by an adaptive window of W
  epochs — but only while it has live lifecycles, so daemons never
  free-run past the cluster's natural end.  Teardowns
  produced beyond the frontier stay buffered inside the shard (they
  are this protocol's anti-messages, except they are never
  transmitted): the coordinator only ever sees deltas at or before the
  committed frontier, which no future input can invalidate, so there
  is nothing external to undo on rollback.
* **Rollback by replay.**  When a step carries a batch whose barrier
  lies *behind* the shard's speculated clock, the speculation ran past
  a real input.  The model's generator processes cannot be snapshotted
  (an instruction pointer is not copyable — see
  ``Simulator.snapshot``, which is engine-state-only for exactly this
  reason), so the shard is not patched in place.  The *fallback* path
  rebuilds it from its spec and replays its input journal — every
  (barrier, batch) it ever committed — up to the conflicting barrier:
  O(committed history) per rollback.  Teardowns the coordinator
  already saw are dropped from the replayed buffer; speculative ones
  were never sent.

Fork checkpoints: O(Δ) rollback
-------------------------------

Worker processes bound the replay with copy-on-write checkpoints
(:mod:`repro.cluster.checkpoint`): every C confirmed epochs (by
default a reactive, adaptive cadence — armed by the first rollback,
tied to the AIMD window, backed off while nothing conflicts) a worker
``fork()``\ s a paused child at a commit-safe instant — a CoW image of
the whole interpreter, generators included — and truncates its journal
to the entries after the fork.  A conflict then *kills the current worker image*: the
per-shard AIMD bookkeeping is packed into a handover message together
with the journal suffix and the raw pending request, shipped down the
checkpoint's control pipe, and the worker ``_exit``\ s.  The child —
which first re-forks a replacement clone of itself, so the logical
checkpoint survives repeated rollbacks — replays only the suffix,
O(events since checkpoint) instead of O(history), and serves the
coordinator pipe it inherited.  The coordinator never notices the
swap: framing is strictly one outstanding request per worker, so the
pending request travels in the handover and its reply comes from the
resumed image.  Workers without ``os.fork`` (or started under a
``spawn`` context, or with ``checkpoint_every=0``) keep the full
journal and fall back to rebuild-and-replay-from-t=0; the in-process
group cannot sacrifice its own process and always uses full replay.
Checkpoints move wall-clock only — the committed timeline, and with
it every result byte, is unchanged.

Packed wire format
------------------

The per-epoch protocol messages — step/submit batches down, teardown
deltas up — dominate barrier latency once the simulation itself is
sharded away, so the hot path speaks the struct-packed binary framing
of :mod:`repro.cluster.wire` (fixed headers plus ``array`` payloads)
instead of pickling tagged tuples; cold control ops fall back to
pickle behind a one-byte tag.  Setting
``REPRO_OPTIMISTIC_ADVERSARIAL_SAFE=1`` makes the coordinator
under-promise the risk-free ``safe`` bound (the epoch barrier itself)
and pins the speculation window open — every speculating shard then
conflicts on nearly every batched epoch, which is the rollback-storm
regime the determinism CI leg uses to hammer the checkpoint
resume path.

The committed timeline every shard ends on is therefore *exactly* the
conservative one — same barriers, same batches, same grid — so results
stay byte-identical across sync modes, shard counts, and worker
counts; speculation and rollback only move wall-clock.  The adaptive
window (halved on rollback, grown on confirmed speculation, zeroed for
good when rollbacks dominate commits) degrades pathological cells to
the conservative protocol instead of thrashing on O(history) replays.

Hierarchical: relay tree, digest replies, pipelined coordinator
---------------------------------------------------------------

At high shard counts the *coordinator* becomes the bottleneck the
protocol was built to remove: every epoch it pays one pipe write plus
one pipe read per worker (O(shards) sequential syscalls on the serial
path), walks an O(hosts) argmin per arrival, and sits idle between
sending a step and receiving its replies.  ``sync="hierarchical"``
keeps the worker protocol *exactly* optimistic — same combined steps,
same speculation, same fork checkpoints — and restructures the paths
around it, all behind the same byte-identity contract:

* **Relay tree.**  When the worker count exceeds the fan-in
  (:data:`RELAY_FAN_IN`, default 4), workers hang off intermediate
  *relay* processes (recursively, so depth grows as log_fanin).  A
  relay routes step batches down to its children and *tree-reduces*
  their replies — load digests merge by per-host addition — so the
  coordinator touches fan-in pipes per epoch instead of one per
  worker, and the reduction work runs in the relays, in parallel.
* **Load-digest replies (wire tag ``L``).**  Optimistic step replies
  carry ``[(host, freed_count), ...]`` instead of every ``(time,
  host)`` teardown pair.  The coordinator only ever *decremented its
  load vector* with those pairs, and every reply is applied before the
  next placement decision, so the digest is information-lossless for
  placement — while making replies O(distinct hosts) and mergeable in
  the relays.
* **Incremental placement.**  The per-arrival O(hosts) argmin becomes
  a lazy min-heap of ``(load, host)`` entries
  (:class:`repro.cluster.placement.LeastLoadedTracker`) fed by the
  digests, with stale-entry invalidation.  Heap order on ``(load,
  host)`` tuples *is* "least load, ties to the lowest index", so every
  pick is provably the host the exact scan would return — placement
  stays bit-identical while per-epoch coordinator work drops from
  O(arrivals x hosts) to O(arrivals log hosts).
* **Depth-2 epoch pipelining.**  After shipping a batched step the
  coordinator immediately streams the *next* epoch's batchless jump
  (when the next arrival sits beyond the epoch just stepped) without
  waiting for replies — two requests in flight per pipe, both replies
  drained before the next placement decision.  The message sequence,
  and with it the committed timeline, is exactly the serial protocol's;
  what changes is that workers advance through the empty epochs while
  the previous step's replies are still in the pipe, halving round-trip
  waits on sparse-arrival cells.  The fork-checkpoint handover needs no
  change for depth 2: at most one request is ever *in processing* (the
  one the handover carries), and a queued follow-up lives in the kernel
  pipe buffer, which survives the process swap with the inherited pipe.

End-of-run under speculation: a speculated clock may overshoot the
shard's natural end, so ``drain`` reports max(committed frontier, last
lifecycle completion) — the end time the conservative run would have —
and ``finish`` rolls a shard back by replay if its clock sits past the
global horizon, so merged event counts still match the single-process
run exactly.

``shards=1`` requests are routed by :func:`~repro.cluster.churn.run_cluster_cell`
to the single-process :class:`Cluster` path — today's behavior, with
continuous (not epoch-quantized) teardown visibility.

End-of-run alignment
--------------------

After the last lifecycle finishes, shards have reached *different* local
end times, but background daemons (the fastiovd scanner) tick for as
long as the shared timeline stays alive in a single-process run.  The
coordinator therefore collects every shard's local end time and advances
the stragglers to the global maximum, so merged event counts match the
single-process run exactly.
"""

import multiprocessing
import os
import sys
import time
import traceback

from repro.cluster import wire
from repro.cluster.checkpoint import (
    ForkCheckpointer,
    fork_checkpoints_supported,
)
from repro.cluster.placement import make_load_tracker
from repro.cluster.shard import ClusterShard
from repro.metrics.stats import Distribution
from repro.obs import runtime
from repro.obs.runtime import (
    RecordBuffer,
    RuntimeProbe,
    TelemetryAggregator,
)
from repro.spec import PAPER_TESTBED
from repro.workloads.generator import ArrivalPattern


#: Below this many hosts per shard, worker spawn and the per-epoch
#: barrier cost more wall-clock than the split saves: the quick scale
#: cell (8 hosts) measured 3.7 s at ``--shards 4`` against 2.3 s
#: single-process.  ``resolve_shards("auto", ...)`` never splits finer.
#: This floor applies to the zero-synchronization plans (round-robin,
#: and burst arrivals under any placement), whose only overhead is
#: worker spawn plus one submit/drain/finish exchange.
MIN_HOSTS_PER_SHARD = 8
#: Spread-arrival least-loaded cells run the epoch protocol — a global
#: barrier every lookahead (~52 ms of virtual time) — so a split has to
#: amortize far more synchronization before it wins.  The conservative
#: protocol pays two blocking round-trips per epoch; optimistic
#: speculation overlaps simulation with the barrier wait and halves the
#: round-trips, so its floor sits lower.
MIN_HOSTS_PER_SHARD_EPOCH = 32
MIN_HOSTS_PER_SHARD_OPTIMISTIC = 16
#: Hierarchical sync runs the identical optimistic worker protocol —
#: speculation overlaps the same barrier wait — so its floor matches
#: the optimistic one; the relay tree only changes who fans the step
#: out, not how much synchronization a shard must amortize.
MIN_HOSTS_PER_SHARD_HIERARCHICAL = MIN_HOSTS_PER_SHARD_OPTIMISTIC

#: Relay-tree fan-in: how many child pipes any one node (the
#: coordinator, or a relay) serves before another relay layer is
#: inserted.  Four keeps the coordinator's per-epoch pipe work at
#: fan_in writes + fan_in reads while the tree stays shallow (depth 2
#: covers 16 workers, depth 3 covers 64).  Worker counts at or below
#: the fan-in keep the flat star — a single relay layer would add a
#: hop without removing any coordinator work.
RELAY_FAN_IN = 4


def resolve_shards(shards, hosts, placement="least-loaded", rate_per_s=0.0,
                   sync="conservative"):
    """Resolve a shard request — ``None``, an int, or ``"auto"`` — to a
    concrete shard count for a ``hosts``-host cell.

    ``"auto"`` picks the widest split that keeps a minimum number of
    hosts per shard, bounded by the CPU count — and that minimum now
    depends on how much synchronization the cell's *placement plan*
    needs, not just on host count:

    ============================  =========================  =========
    plan                          synchronization            floor
    ============================  =========================  =========
    round-robin (any arrivals)    none (placed up front)     8
    least-loaded, burst           none (single epoch 0)      8
    least-loaded, spread, cons.   2 round-trips per epoch    32
    least-loaded, spread, opt.    1 round-trip + overlap     16
    least-loaded, spread, hier.   1 round-trip + overlap     16
    ============================  =========================  =========

    Hierarchical shares the optimistic floor: the per-shard
    synchronization cost is identical (the worker protocol *is*
    optimistic); relays and pipelining only cut coordinator-side work.

    A cell below its floor falls back to the in-process single-shard
    path (with a note on stderr), so auto never picks a sharded config
    that benches slower than ``--shards 1`` — the epoch-protocol floors
    exist precisely because a barrier-bound split can lose to the
    single-process run even where the zero-sync plans win.  Explicit
    integer counts are honored (clamped to ``hosts``) — the caller
    asked for that split, overhead and all.  Results are byte-identical
    across shard counts, so this is purely a wall-clock decision.
    """
    if shards is None:
        return 1
    if shards == "auto":
        if placement == "round-robin" or not rate_per_s:
            floor = MIN_HOSTS_PER_SHARD
        elif sync in ("optimistic", "hierarchical", "auto"):
            floor = MIN_HOSTS_PER_SHARD_HIERARCHICAL
        else:
            floor = MIN_HOSTS_PER_SHARD_EPOCH
        resolved = max(1, min(os.cpu_count() or 1, hosts // floor))
        if resolved == 1 and hosts < 2 * floor:
            print(
                f"shards=auto: {hosts}-host cell is below "
                f"{floor} hosts/shard at any split; "
                f"using the in-process single-shard path",
                file=sys.stderr,
            )
        return resolved
    return max(1, min(int(shards), hosts))


def resolve_sync(sync, shards=1, placement="least-loaded"):
    """Resolve a ``--sync`` request to the protocol actually run.

    ``conservative``, ``optimistic`` and ``hierarchical`` are honored
    for any cell that runs the epoch protocol; all degrade to
    ``conservative`` when there is no barrier to speculate past (a
    single shard, or round-robin placement, which is placed entirely
    up front with zero synchronization).  ``auto`` picks
    ``hierarchical`` exactly when the epoch protocol runs: the worker
    side *is* the optimistic protocol (the adaptive window bounds its
    downside to conservative-plus-noise), the relay tree only forms
    when the worker count exceeds the fan-in, and the pipelined
    coordinator sends the identical message sequence — results are
    byte-identical across all of it, so — like :func:`resolve_shards`
    — this is purely a wall-clock decision.
    """
    if sync is None:
        return "conservative"
    if sync not in ("conservative", "optimistic", "hierarchical", "auto"):
        raise ValueError(f"unknown sync mode {sync!r}")
    if shards <= 1 or placement == "round-robin":
        return "conservative"
    if sync == "auto":
        return "hierarchical"
    return sync


def partition_hosts(hosts, shards):
    """Contiguous balanced host ranges: ``[(start, stop), ...]``.

    The first ``hosts % shards`` shards get one extra host.  With
    round-robin placement a burst spreads uniformly over hosts, so
    contiguous ranges balance container counts too.
    """
    if hosts <= 0:
        raise ValueError(f"hosts must be positive, got {hosts}")
    if not 1 <= shards <= hosts:
        raise ValueError(
            f"shards must be in [1, hosts={hosts}], got {shards}"
        )
    base, extra = divmod(hosts, shards)
    bounds = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def min_startup_lookahead(spec=None):
    """Epoch width: a lower-ish bound on the placement->teardown gap.

    Every lifecycle serially spends at least the VM-create and
    guest-boot base costs between placement and teardown; half of that
    floor absorbs the multiplicative (log-normal, unit-mean) jitter in
    practice.  The protocol is deterministic and K-invariant for *any*
    positive epoch width — a smaller value only tightens how stale the
    conservative load vector can get, at the cost of more barriers.
    """
    spec = spec if spec is not None else PAPER_TESTBED
    return (spec.vm_create_base_s + spec.guest_boot_base_s) / 2.0


def peak_concurrency(spans):
    """Peak overlap of ``[(start, end), ...]``, starts before ends on ties.

    This is how the merged run recovers the cluster-wide realized
    startup concurrency the single-process driver counts incrementally:
    at equal timestamps an arrival's resume event always carries a
    smaller sequence number than a completion scheduled later, so
    arrivals are counted first.
    """
    events = []
    for start, end in spans:
        events.append((start, 0))
        events.append((end, 1))
    events.sort()
    current = peak = 0
    for _time, kind in events:
        if kind == 0:
            current += 1
            if current > peak:
                peak = current
        else:
            current -= 1
    return peak


# ----------------------------------------------------------------------
# optimistic shard state: journal, speculation window, rollback
# ----------------------------------------------------------------------
#: Speculation window start/cap, in epochs of lookahead beyond the
#: risk-free ``safe`` bound.  Slow-start: risk-free speculation alone
#: must prove itself (a streak of confirmed epochs) before any risky
#: overshoot is attempted, so a rollback-prone cell never pays the
#: first replay at full window depth.
_SPEC_WINDOW_INIT = 0
_SPEC_WINDOW_MAX = 16
#: AIMD pacing: a rollback halves the window (toward zero — replay is
#: O(committed history), so risky speculation must back off hard); the
#: window grows by one only after this many consecutive confirmed
#: speculations.
_SPEC_GROW_STREAK = 4
#: Sticky breaker: once a shard has rolled back this many times with
#: fewer than half as many confirmed speculations, it stops risky
#: speculation for the rest of the run (risk-free speculation up to
#: ``safe`` continues — that part can never roll back).
_SPEC_BREAKER_ROLLBACKS = 8


def _adversarial_safe():
    """Rollback-storm test mode (see module docstring): the
    coordinator under-promises ``safe`` and shards pin their window
    open, so speculation conflicts on nearly every batched epoch."""
    return os.environ.get(
        "REPRO_OPTIMISTIC_ADVERSARIAL_SAFE", ""
    ) not in ("", "0")


def _hist_add(hist, value):
    """Bump a power-of-two histogram bucket: smallest b with
    ``value <= 2**b`` (bucket 0 spans everything at or below 1)."""
    bucket = 0
    while (1 << bucket) < value and bucket < 62:
        bucket += 1
    hist[bucket] = hist.get(bucket, 0) + 1


class _SpeculativeShard:
    """A :class:`ClusterShard` plus the bookkeeping of optimistic sync.

    Holds the shard's input journal (every committed ``(barrier,
    batch)``), its committed frontier, and the adaptive speculation
    window.  Rollback is replay: generators cannot be snapshotted, so a
    mis-speculated shard is rebuilt from its spec and its journal is
    re-run up to the conflict point — O(committed history), which is
    why the window shrinks aggressively when rollbacks happen.
    """

    def __init__(self, spec, lookahead):
        self._spec = dict(spec)
        self._lookahead = lookahead
        self.shard = ClusterShard(**self._spec)
        # Wall-clock plane: let the engine publish its live frontier.
        # Telemetry-only — the probe never feeds back into the sim.
        self.shard.sim.runtime_probe = runtime.get_probe()
        #: Committed inputs, in submission order: ``(barrier, batch)``.
        #: After a checkpoint this holds only the post-checkpoint
        #: *suffix* — the prefix lives applied inside the CoW image.
        self._journal = []
        #: No input with a barrier below this can ever arrive; work at
        #: or before it is committed, work beyond it is speculation.
        self._frontier = 0.0
        #: Coordinator's promise: the next batch (for any shard) comes
        #: no earlier than this barrier, because the arrival schedule
        #: is known up front.  Speculation below it is risk-free — only
        #: the windowed overshoot beyond it can ever roll back.
        self._safe = 0.0
        #: Teardowns at or before this time were already sent to the
        #: coordinator (and must not be re-sent by a replayed shard).
        self._reported = 0.0
        #: Local clock of the newest fork checkpoint, None before the
        #: first capture.  Once set, the journal prefix is gone and
        #: in-place full replay would silently lose inputs — so
        #: :meth:`_rollback` refuses to run.
        self._ckpt_time = None
        self._ckpt_age = 0
        self.window = _SPEC_WINDOW_INIT
        self.throttled = False
        self._pinned = _adversarial_safe()
        if self._pinned:
            self.window = _SPEC_WINDOW_MAX
        self._commit_streak = 0
        self.stats = {
            "epochs": 0,
            "rollbacks": 0,
            "speculated_events": 0,
            "replayed_events": 0,
            "speculation_commits": 0,
            "checkpoints": 0,
            "checkpoint_resumes": 0,
            "full_replays": 0,
            "checkpoint_age_epochs": 0,
            "rollback_depth_hist": {},
            "replay_distance_hist": {},
        }

    def step(self, barrier, epoch_end, safe, batch):
        """One combined protocol step: commit through ``epoch_end``.

        Submits ``batch`` at the epoch ``barrier`` (rolling back first
        if the local clock speculated past it), advances to
        ``epoch_end``, and returns the teardown deltas with time <=
        ``epoch_end`` — exactly what the conservative submit +
        run_until pair reports, so the coordinator's load vector sees
        identical deltas at identical barriers in both modes.

        ``safe`` is the earliest barrier any future batch can carry
        (the next unplaced arrival's epoch start; infinity once every
        arrival is placed) — it moves the shard's risk-free speculation
        bound forward.
        """
        self.stats["epochs"] += 1
        if self._ckpt_time is not None:
            self._ckpt_age += 1
            if self._ckpt_age > self.stats["checkpoint_age_epochs"]:
                self.stats["checkpoint_age_epochs"] = self._ckpt_age
        self._safe = safe
        shard = self.shard
        speculated = shard.sim.now > self._frontier
        rolled_back = False
        if batch and shard.sim.now > barrier:
            self._rollback(barrier)
            rolled_back = True
            shard = self.shard
        # Phase attribution: the rollback replay (if any) was timed by
        # _rollback itself; everything from here to the epoch end is
        # committed simulation work.  A rolled-back shard's clock sits
        # exactly at the barrier, so the run_until(barrier) catch-up
        # below never re-runs replayed work.
        probe = runtime.get_probe()
        began = probe.begin() if probe is not None else 0.0
        if batch:
            if shard.sim.now < barrier:
                shard.sim.run_until(barrier)
            shard.submit(batch)
            self._journal.append((barrier, batch))
        if shard.sim.now < epoch_end:
            shard.sim.run_until(epoch_end)
        if probe is not None:
            probe.lap("compute", began)
        if speculated:
            # Adaptive throttle, AIMD with a slow additive increase:
            # a rollback halves the window toward zero (replay costs
            # O(committed history), so risky overshoot must back off
            # hard), and the window regrows by one only after a streak
            # of confirmed speculations.  A sticky breaker stops risky
            # speculation for good when rollbacks dominate — a
            # pathological cell degrades to risk-free-only speculation
            # instead of paying replays forever.
            if rolled_back:
                if not self._pinned:
                    self.window //= 2
                    self._commit_streak = 0
                    if (self.stats["rollbacks"]
                            >= _SPEC_BREAKER_ROLLBACKS
                            and self.stats["speculation_commits"] * 2
                            < self.stats["rollbacks"]):
                        self.throttled = True
                        self.window = 0
            else:
                self.stats["speculation_commits"] += 1
                self._commit_streak += 1
                if (not self.throttled and not self._pinned
                        and self._commit_streak >= _SPEC_GROW_STREAK):
                    self._commit_streak = 0
                    self.window = min(self.window + 1, _SPEC_WINDOW_MAX)
        self._frontier = epoch_end
        self._reported = epoch_end
        return shard.take_teardowns(upto=epoch_end)

    def speculate_quantum(self):
        """Free-run up to one lookahead past the clock, inside the
        window; returns whether any progress was made.

        The target is ``max(safe, frontier) + window * lookahead``:
        everything below the coordinator's ``safe`` promise can never
        roll back (so even a fully throttled shard keeps speculating
        up to it), while the window bounds only the risky overshoot
        beyond it.
        """
        shard = self.shard
        if not shard.live:
            # Nothing in flight: only daemon ticks remain, and those
            # must not run past the cluster's natural end.
            return False
        sim = shard.sim
        target = (max(self._safe, self._frontier)
                  + self.window * self._lookahead)
        if sim.now >= target:
            return False
        before = sim.events_dispatched
        sim.run_until(min(target, sim.now + self._lookahead))
        self.stats["speculated_events"] += sim.events_dispatched - before
        return True

    # ------------------------------------------------------------------
    # fork-checkpoint hooks (worker processes only; see cluster.checkpoint)
    # ------------------------------------------------------------------
    def checkpointable(self):
        """Whether this instant is commit-safe to fork a checkpoint at.

        A checkpoint at local time T must sit at or below every input
        it could ever be resumed against: future batch barriers are >=
        max(committed frontier, ``safe``), and the finish horizon is >=
        the final frontier, so T <= max(frontier, safe) is safe — with
        the caveat that an *infinite* ``safe`` (placement done) is not
        a barrier bound at all, and only T <= frontier guarantees T
        stays below the global finish horizon.
        """
        now = self.shard.sim.now
        if self._safe != float("inf"):
            return now <= max(self._frontier, self._safe)
        return now <= self._frontier

    def mark_checkpoint(self):
        """Parent-side bookkeeping right after a checkpoint fork.

        The CoW image holds every journal entry already applied, so the
        live journal shrinks to the (empty) suffix — committed-teardown
        dedup is untouched because ``_reported`` still rides along and
        :meth:`apply_resume` re-drops everything at or below it.
        """
        self._ckpt_time = self.shard.sim.now
        self._ckpt_age = 0
        self._journal = []
        self.stats["checkpoints"] += 1

    def pack_state(self):
        """The per-shard handover payload a resumed checkpoint needs."""
        return {
            "journal": self._journal,
            "frontier": self._frontier,
            "safe": self._safe,
            "reported": self._reported,
            "ckpt_time": self._ckpt_time,
            "ckpt_age": self._ckpt_age,
            "window": self.window,
            "throttled": self.throttled,
            "streak": self._commit_streak,
            "stats": self.stats,
        }

    def apply_resume(self, packed):
        """Become the committed timeline again, inside a resumed child.

        The fork image sits at the checkpoint instant with every
        pre-checkpoint input applied; adopting the dead worker's
        bookkeeping and replaying the journal *suffix* (then running to
        the committed frontier) reproduces exactly the committed state
        the conservative protocol would hold.  Teardowns regenerated on
        the way were already reported by the dead image — ``upto
        _reported`` drops them, so the coordinator's load vector never
        sees a delta twice.
        """
        probe = runtime.get_probe()
        began = probe.begin() if probe is not None else 0.0
        sim = self.shard.sim
        before = sim.events_dispatched
        self._journal = list(packed["journal"])
        self._frontier = packed["frontier"]
        self._safe = packed["safe"]
        self._reported = packed["reported"]
        self._ckpt_time = packed["ckpt_time"]
        self._ckpt_age = packed["ckpt_age"]
        self.window = packed["window"]
        self.throttled = packed["throttled"]
        self._commit_streak = packed["streak"]
        self.stats = packed["stats"]
        for submit_time, batch in self._journal:
            if sim.now < submit_time:
                sim.run_until(submit_time)
            self.shard.submit(batch)
        if sim.now < self._frontier:
            sim.run_until(self._frontier)
        self.shard.take_teardowns(upto=self._reported)
        replayed = sim.events_dispatched - before
        self.stats["replayed_events"] += replayed
        self.stats["checkpoint_resumes"] += 1
        _hist_add(self.stats["replay_distance_hist"], replayed)
        if probe is not None:
            probe.lap("checkpoint_resume", began)
            probe.instant("checkpoint_resume")
            probe.count("checkpoint_resumes")

    def note_checkpoint_rollback(self, barrier):
        """Dying-image accounting for a checkpoint-resolved conflict.

        The conflicted step never runs here (the resumed child replays
        it at the committed frontier, where it no longer conflicts), so
        the rollback count, depth histogram, and AIMD back-off are
        applied before the state packs itself into the handover.
        """
        self.stats["rollbacks"] += 1
        probe = runtime.get_probe()
        if probe is not None:
            # The count must cross the handover (it rides pack()); the
            # instant is recorded by the *resumed* child, which is the
            # image the telemetry timeline keeps.
            probe.count("rollbacks")
        _hist_add(
            self.stats["rollback_depth_hist"],
            self.shard.sim.now - barrier,
        )
        if not self._pinned:
            self.window //= 2
            self._commit_streak = 0
            if (self.stats["rollbacks"] >= _SPEC_BREAKER_ROLLBACKS
                    and self.stats["speculation_commits"] * 2
                    < self.stats["rollbacks"]):
                self.throttled = True
                self.window = 0

    def resume_to(self, barrier):
        """Coordinator-driven rollback for the no-checkpoint fallback:
        discard speculation past max(barrier, frontier) by full replay.
        Returns the shard's clock afterwards."""
        target = max(barrier, self._frontier)
        if self.shard.sim.now > target:
            self._rollback(target)
        return self.shard.sim.now

    def _rollback(self, when):
        """Rebuild the shard and replay its journal up to ``when``.

        This is the O(committed history) fallback: it exists for
        in-process groups and fork-less workers, whose journal is the
        complete input history.  After a checkpoint truncated the
        journal this replay would silently lose the prefix, so it
        refuses — conflicts must resume through the checkpoint image
        instead.
        """
        if self._ckpt_time is not None:
            raise RuntimeError(
                "full replay after checkpoint truncation would lose "
                "the journal prefix; conflicts must resume from the "
                "checkpoint image"
            )
        probe = runtime.get_probe()
        began = probe.begin() if probe is not None else 0.0
        self.stats["rollbacks"] += 1
        self.stats["full_replays"] += 1
        _hist_add(
            self.stats["rollback_depth_hist"],
            self.shard.sim.now - when,
        )
        self.shard.discard()
        self.shard = ClusterShard(**self._spec)
        sim = self.shard.sim
        sim.runtime_probe = probe
        for submit_time, batch in self._journal:
            sim.run_until(submit_time)
            self.shard.submit(batch)
        sim.run_until(when)
        # The replayed shard regenerated every committed teardown;
        # drop the ones the coordinator already saw.
        self.shard.take_teardowns(upto=self._reported)
        self.stats["replayed_events"] += sim.events_dispatched
        _hist_add(
            self.stats["replay_distance_hist"], sim.events_dispatched
        )
        if probe is not None:
            probe.lap("rollback_replay", began)
            probe.instant("rollback")
            probe.count("rollbacks")

    def drain(self):
        """Run lifecycles to completion; returns the conservative end.

        The speculated clock may sit past the last completion (a
        quantum never stops mid-flight), so the reported end is
        max(committed frontier, last lifecycle completion) — exactly
        the ``sim.now`` a conservative shard lands on after its drain.
        """
        shard = self.shard
        shard.sim.run()
        return max(self._frontier, shard.last_lifecycle_end)

    def finish(self, horizon):
        """Align to the global ``horizon`` and return the shard result.

        A clock that overshot the horizon is rolled back by replay —
        the rebuilt simulator then counts exactly the events of the
        committed timeline, so merged event totals match the
        single-process run byte-for-byte.
        """
        shard = self.shard
        if shard.sim.now > horizon:
            self._rollback(horizon)
            shard = self.shard
        elif shard.sim.now < horizon:
            shard.sim.run_until(horizon)
        result = shard.result()
        result["sync"] = dict(self.stats, throttled=int(self.throttled))
        return result


#: Per-shard sync counters that sum across shards; ``epochs`` and
#: ``checkpoint_age_epochs`` take the max instead (they are per-shard
#: high-water marks of the same global grid), and the ``*_hist`` keys
#: are power-of-two histograms whose buckets merge by addition.
_SYNC_SUM_KEYS = (
    "rollbacks",
    "speculated_events",
    "replayed_events",
    "speculation_commits",
    "checkpoints",
    "checkpoint_resumes",
    "full_replays",
)
_SYNC_HIST_KEYS = ("rollback_depth_hist", "replay_distance_hist")


def _fold_sync_stats(results, barrier_wait_s):
    """Pop per-shard ``sync`` stats off ``results`` and aggregate them."""
    stats = {
        "epochs": 0,
        "barrier_wait_s": barrier_wait_s,
        "throttled_shards": 0,
        "checkpoint_age_epochs": 0,
    }
    stats.update({key: 0 for key in _SYNC_SUM_KEYS})
    stats.update({key: {} for key in _SYNC_HIST_KEYS})
    for result in results:
        shard_stats = result.pop("sync", None)
        if not shard_stats:
            continue
        stats["epochs"] = max(stats["epochs"], shard_stats["epochs"])
        stats["checkpoint_age_epochs"] = max(
            stats["checkpoint_age_epochs"],
            shard_stats.get("checkpoint_age_epochs", 0),
        )
        for key in _SYNC_SUM_KEYS:
            stats[key] += shard_stats.get(key, 0)
        for key in _SYNC_HIST_KEYS:
            for bucket, count in shard_stats.get(key, {}).items():
                stats[key][bucket] = stats[key].get(bucket, 0) + count
        stats["throttled_shards"] += shard_stats["throttled"]
    return stats


# ----------------------------------------------------------------------
# shard groups: the same protocol, in-process or over worker processes
# ----------------------------------------------------------------------
class _InProcessGroup:
    """All shards in this process (workers=0, or inside a pool worker)."""

    def __init__(self, shard_specs):
        self.shards = [ClusterShard(**spec) for _, spec in shard_specs]
        self.epochs = 0

    def submit(self, batches):
        for shard_id, batch in batches.items():
            self.shards[shard_id].submit(batch)

    def run_until(self, when):
        self.epochs += 1
        deltas = []
        for shard in self.shards:
            deltas.extend(shard.run_until(when))
        return deltas

    def drain(self):
        return [shard.drain() for shard in self.shards]

    def checkpoint(self):
        """Conservative shards never speculate: nothing to checkpoint."""
        return [False for _ in self.shards]

    def resume(self, barrier):
        """No speculation means every clock already sits at or below
        any committed barrier; report the clocks unchanged."""
        return {
            shard_id: shard.sim.now
            for shard_id, shard in enumerate(self.shards)
        }

    def finish(self, horizon):
        results = []
        for shard in self.shards:
            if shard.sim.now < horizon:
                shard.sim.run_until(horizon)
            results.append(shard.result())
        stats = _fold_sync_stats(results, 0.0)
        stats["epochs"] = self.epochs
        return results, stats

    def close(self):
        self.shards = []


class _OptimisticInProcessGroup:
    """All shards in this process, speculating eagerly after each step.

    Wall-clock-wise, in-process speculation buys nothing — there is no
    idle core to soak while the coordinator thinks — but it executes
    the identical protocol the worker processes run, and it does so
    *deterministically*: speculation depth depends only on the adaptive
    window, never on OS timing.  That is what makes rollback counts
    assertable in tests.

    The pipelined coordinator's split ``step_send``/``step_recv`` is
    served by executing each step the moment it is sent and queueing
    its digest — in-process there is no one to overlap with, so
    immediate execution is both the simplest and the deterministic
    reading of "two requests in flight".
    """

    def __init__(self, shard_specs, lookahead):
        self.states = [
            _SpeculativeShard(spec, lookahead) for _, spec in shard_specs
        ]
        self._replies = []

    def step_send(self, barrier, epoch_end, safe, batches):
        deltas = []
        for shard_id, state in enumerate(self.states):
            deltas.extend(
                state.step(barrier, epoch_end, safe, batches.get(shard_id))
            )
        for state in self.states:
            while state.speculate_quantum():
                pass
        self._replies.append(wire.digest_deltas(deltas))

    def step_recv(self):
        return self._replies.pop(0)

    def step(self, barrier, epoch_end, safe, batches):
        self.step_send(barrier, epoch_end, safe, batches)
        return self.step_recv()

    def drain(self):
        return [state.drain() for state in self.states]

    def checkpoint(self):
        """In-process shards cannot sacrifice their own interpreter, so
        there is no image to fork — rollback stays full replay."""
        return [False for _ in self.states]

    def resume(self, barrier):
        """Fallback resume: full replay for every shard whose clock
        speculated past ``barrier``; returns the clocks afterwards."""
        return {
            shard_id: state.resume_to(barrier)
            for shard_id, state in enumerate(self.states)
        }

    def finish(self, horizon):
        results = [state.finish(horizon) for state in self.states]
        return results, _fold_sync_stats(results, 0.0)

    def close(self):
        self.states = []


def _shard_worker_main(conn, shard_specs, sync="conservative",
                       lookahead=0.0, checkpoint_every=None,
                       eager=False, use_fork=True):
    """Worker entry: serve the protocol for the assigned shards.

    ``hierarchical`` is the optimistic worker protocol verbatim — the
    tree topology and the pipelined coordinator live entirely above
    this loop (relays speak the same ops), so a leaf worker cannot
    tell the modes apart.
    """
    try:
        if runtime.probes_enabled():
            name = multiprocessing.current_process().name
            probe = RuntimeProbe(
                name.replace("repro-shard-", "") or "worker",
                hosts=sorted(
                    [spec["host_start"], spec["host_stop"]]
                    for _sid, spec in shard_specs
                ),
            )
            runtime.set_probe(probe)
            wire.set_probe(probe)
        if sync in ("optimistic", "hierarchical"):
            _optimistic_worker_loop(
                conn, shard_specs, lookahead,
                checkpoint_every=checkpoint_every, eager=eager,
                use_fork=use_fork,
            )
        else:
            _conservative_worker_loop(conn, shard_specs)
    except BaseException as exc:  # noqa: BLE001 - ship it to the parent
        try:
            wire.send(
                conn, ("error", f"{exc!r}\n{traceback.format_exc()}")
            )
        except OSError:  # pragma: no cover - parent already gone
            pass


def _conservative_worker_loop(conn, shard_specs):
    """Lockstep worker: build the assigned shards, serve barrier ops."""
    shards = {shard_id: ClusterShard(**spec)
              for shard_id, spec in shard_specs}
    probe = runtime.get_probe()
    if probe is not None:
        for shard in shards.values():
            shard.sim.runtime_probe = probe
    wait_s = 0.0
    epochs = 0
    while True:
        waited = time.perf_counter()
        if probe is not None:
            # Separate the blocked wait from the decode: poll first so
            # barrier_wait covers only the blocking, and wire.recv's
            # internal ipc_recv lap covers only the decode.
            conn.poll(None)
            probe.lap("barrier_wait", waited)
        message = wire.recv(conn)
        wait_s += time.perf_counter() - waited
        op = message[0]
        began = probe.begin() if probe is not None else 0.0
        if op == "submit":
            for shard_id, batch in message[1].items():
                shards[shard_id].submit(batch)
            wire.send(conn, ("ok", None), piggyback=True)
        elif op == "run_until":
            epochs += 1
            deltas = []
            for shard in shards.values():
                deltas.extend(shard.run_until(message[1]))
            if probe is not None:
                probe.lap("compute", began)
                probe.count("epochs")
            wire.send(conn, ("ok", deltas), piggyback=True)
        elif op == "drain":
            reply = {sid: shard.drain()
                     for sid, shard in shards.items()}
            if probe is not None:
                probe.lap("compute", began)
            wire.send(conn, ("ok", reply), piggyback=True)
        elif op == "checkpoint":
            # Lockstep shards never speculate: nothing to checkpoint.
            wire.send(conn, ("ok", False), piggyback=True)
        elif op == "resume":
            wire.send(
                conn,
                ("ok", {sid: shard.sim.now
                        for sid, shard in shards.items()}),
                piggyback=True,
            )
        elif op == "finish":
            results = {}
            for shard_id, shard in shards.items():
                if shard.sim.now < message[1]:
                    shard.sim.run_until(message[1])
                results[shard_id] = shard.result()
            if probe is not None:
                probe.lap("compute", began)
            wire.send(conn, ("ok", {"results": results, "wait_s": wait_s,
                                    "epochs": epochs}), piggyback=True)
        elif op == "stop":
            wire.send(conn, ("ok", None), piggyback=True)
            return
        else:  # pragma: no cover - protocol guard
            wire.send(conn, ("error", f"unknown op {op!r}"))
            return


def _apply_handover(states, handover, ckpt):
    """Turn a resumed checkpoint child into the committed worker.

    Replays each shard's journal suffix and returns the decoded pending
    request — the one whose conflict killed the previous image — for
    the loop to process next (its reply has not been sent yet).

    The replayed suffix is credited toward the capture cadence: under
    a rollback storm conflicts land faster than any cadence, and a
    resumed child restarting its count at zero would keep serving an
    ever-staler checkpoint image — the replay suffix, and with it the
    rollback cost, would quietly grow back to O(history).  With the
    credit, the first commit-safe step after a deep resume re-captures
    at the new frontier and the suffix stays short.
    """
    probe = runtime.get_probe()
    if probe is not None and handover.get("probe") is not None:
        # Adopt the dead image's cumulative accounting before the
        # per-shard resumes below add their replay spans, then mark
        # the rollback this handover resolved (the dying image's
        # pending instants died with it).
        probe.adopt(handover["probe"])
        probe.instant("rollback")
    for shard_id, packed in handover["shards"].items():
        states[shard_id].apply_resume(packed)
    ckpt.confirmed = max(
        (len(state._journal) for state in states.values()), default=0
    )
    return wire.decode(handover["pending"])


def _optimistic_worker_loop(conn, shard_specs, lookahead,
                            checkpoint_every=None, eager=False,
                            use_fork=True):
    """Speculating worker: free-run whenever the pipe is quiet.

    Every quantum re-polls the pipe, so a pending step message is
    picked up within one lookahead of simulation; once every shard has
    exhausted its window (or its live work), the loop blocks — and
    only that blocked time counts as barrier wait.  ``eager`` trades
    that overlap away for determinism: speculation runs to exhaustion
    *before* the next blocking receive, so speculation depth (and with
    it every rollback count) depends only on the adaptive window,
    never on OS timing — that is what makes checkpoint behavior
    assertable in tests and benchmarks.

    With fork support (and unless ``checkpoint_every=0``) a
    :class:`~repro.cluster.checkpoint.ForkCheckpointer` bounds
    rollback to the journal suffix; conflicts then *leave this
    process*: the dying image packs its bookkeeping and the pending
    request into a handover, and the loop continues inside the resumed
    child with ``pending`` set (the fork happened after the previous
    reply was sent, so no reply is ever duplicated or lost).
    """
    states = {shard_id: _SpeculativeShard(spec, lookahead)
              for shard_id, spec in shard_specs}
    probe = runtime.get_probe()
    ckpt = None
    if (use_fork and checkpoint_every != 0
            and fork_checkpoints_supported()):
        ckpt = ForkCheckpointer(states, checkpoint_every)
    wait_s = 0.0
    pending = None
    while True:
        if pending is not None:
            message, pending = pending, None
        elif eager:
            began = probe.begin() if probe is not None else 0.0
            moved = False
            for state in states.values():
                while state.speculate_quantum():
                    moved = True
            if probe is not None and moved:
                probe.lap("speculate", began)
            waited = time.perf_counter()
            if probe is not None:
                conn.poll(None)
                probe.lap("barrier_wait", waited)
            message = wire.recv(conn)
            wait_s += time.perf_counter() - waited
        else:
            while not conn.poll(0):
                began = probe.begin() if probe is not None else 0.0
                moved = False
                for state in states.values():
                    if state.speculate_quantum():
                        moved = True
                if moved:
                    if probe is not None:
                        probe.lap("speculate", began)
                else:
                    waited = time.perf_counter()
                    conn.poll(None)
                    wait_s += time.perf_counter() - waited
                    if probe is not None:
                        probe.lap("barrier_wait", waited)
                    break
            message = wire.recv(conn)
        op = message[0]
        if op == "step":
            _op, barrier, epoch_end, safe, batches = message
            if ckpt is not None and ckpt.live is not None:
                conflicted = [
                    state for shard_id, state in states.items()
                    if batches.get(shard_id)
                    and state.shard.sim.now > barrier
                ]
                if conflicted:
                    for state in conflicted:
                        state.note_checkpoint_rollback(barrier)
                    # Never returns: the resumed child re-enters this
                    # loop with the same message pending, now at the
                    # committed frontier where it no longer conflicts.
                    ckpt.hand_over(wire.encode(message))
            deltas = []
            for shard_id, state in states.items():
                deltas.extend(
                    state.step(barrier, epoch_end, safe,
                               batches.get(shard_id))
                )
            # Reply with the load digest, not the raw deltas: the
            # coordinator applies every reply before the next placement
            # decision, so per-host freed counts carry exactly the
            # information placement consumes — and relays can merge
            # digests by addition on the way up.
            if probe is not None:
                probe.count("epochs")
                if lookahead > 0:
                    probe.gauge(
                        "frontier_epoch", round(epoch_end / lookahead)
                    )
            wire.send(conn, ("loads", wire.digest_deltas(deltas)),
                      piggyback=True)
            if ckpt is not None:
                resumed = ckpt.after_step()
                if resumed is not None:
                    pending = _apply_handover(states, resumed, ckpt)
        elif op == "checkpoint":
            taken = False
            if ckpt is not None and all(
                state.checkpointable() for state in states.values()
            ):
                resumed = ckpt.capture()
                if resumed is not None:
                    # Resumed child of this very capture: the parent
                    # already replied to the checkpoint op before it
                    # died, so only the pending request needs serving.
                    pending = _apply_handover(states, resumed, ckpt)
                    continue
                taken = True
            wire.send(conn, ("ok", taken), piggyback=True)
        elif op == "resume":
            barrier = message[1]
            over = [
                state for state in states.values()
                if state.shard.sim.now > max(barrier, state._frontier)
            ]
            if over and ckpt is not None and ckpt.live is not None:
                for state in over:
                    state.note_checkpoint_rollback(barrier)
                ckpt.hand_over(wire.encode(message))
            clocks = {sid: state.resume_to(barrier)
                      for sid, state in states.items()}
            wire.send(conn, ("ok", clocks), piggyback=True)
        elif op == "drain":
            began = probe.begin() if probe is not None else 0.0
            reply = {sid: state.drain()
                     for sid, state in states.items()}
            if probe is not None:
                probe.lap("compute", began)
            wire.send(conn, ("ok", reply), piggyback=True)
        elif op == "finish":
            horizon = message[1]
            if ckpt is not None and ckpt.live is not None:
                over = [state for state in states.values()
                        if state.shard.sim.now > horizon]
                if over:
                    for state in over:
                        state.note_checkpoint_rollback(horizon)
                    ckpt.hand_over(wire.encode(message))
            results = {sid: state.finish(horizon)
                       for sid, state in states.items()}
            if ckpt is not None:
                ckpt.close()
                ckpt = None
            wire.send(conn, ("ok", {"results": results, "wait_s": wait_s,
                                    "epochs": 0}), piggyback=True)
        elif op == "stop":
            if ckpt is not None:
                ckpt.close()
            wire.send(conn, ("ok", None), piggyback=True)
            return
        else:  # pragma: no cover - protocol guard
            wire.send(conn, ("error", f"unknown op {op!r}"))
            return


def _spawn_workers(context_name, chunks, sync, lookahead, checkpoint_every,
                   eager, fan_in, label="repro-shard"):
    """Spawn the processes serving ``chunks`` (one shard-spec list each).

    Flat star when the chunk count fits the fan-in (or ``fan_in`` is
    None): one leaf worker per chunk.  Otherwise the chunks are grouped
    under ``fan_in`` relay processes — each relay re-enters this
    function for its own sub-tree, so depth grows logarithmically and
    no node ever serves more than ``fan_in`` pipes.  Returns
    ``(procs, conns, shard_ids_per_conn)``.
    """
    context = multiprocessing.get_context(context_name)
    # Fork checkpoints need the worker itself to be fork-started: a
    # spawn context stands in for platforms without os.fork, so its
    # workers keep the full journal and roll back by replay.
    use_fork = context_name == "fork"
    procs = []
    conns = []
    owners = []
    if fan_in is not None and len(chunks) > fan_in:
        groups = [chunks[index::fan_in] for index in range(fan_in)]
        for index, group_chunks in enumerate(groups):
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_relay_main,
                args=(child_conn, group_chunks, sync, lookahead,
                      checkpoint_every, eager, fan_in, context_name),
                name=f"{label}-relay-{index}",
            )
            proc.start()
            child_conn.close()
            procs.append(proc)
            conns.append(parent_conn)
            owners.append([shard_id for chunk in group_chunks
                           for shard_id, _ in chunk])
        return procs, conns, owners
    for index, chunk in enumerate(chunks):
        parent_conn, child_conn = context.Pipe()
        proc = context.Process(
            target=_shard_worker_main,
            args=(child_conn, chunk, sync, lookahead,
                  checkpoint_every, eager, use_fork),
            name=f"{label}-worker-{index}",
        )
        proc.start()
        child_conn.close()
        procs.append(proc)
        conns.append(parent_conn)
        owners.append([shard_id for shard_id, _ in chunk])
    return procs, conns, owners


def _relay_main(conn, chunks, sync, lookahead, checkpoint_every, eager,
                fan_in, context_name):
    """Relay entry: aggregate a sub-tree of workers behind one pipe."""
    try:
        if runtime.probes_enabled():
            name = multiprocessing.current_process().name
            probe = RuntimeProbe(name.replace("repro-shard-", ""))
            runtime.set_probe(probe)
            wire.set_probe(probe)
            # Children's piggybacked records buffer here and ride this
            # relay's next upward reply — the tree reduction costs the
            # telemetry plane no extra frames.
            wire.set_telemetry_sink(RecordBuffer())
        procs, conns, owners = _spawn_workers(
            context_name, chunks, sync, lookahead, checkpoint_every,
            eager, fan_in, label=multiprocessing.current_process().name,
        )
        owner = {}
        for index, shard_ids in enumerate(owners):
            for shard_id in shard_ids:
                owner[shard_id] = index
        _relay_loop(conn, procs, conns, owner)
    except BaseException as exc:  # noqa: BLE001 - ship it to the parent
        try:
            wire.send(
                conn, ("error", f"{exc!r}\n{traceback.format_exc()}")
            )
        except OSError:  # pragma: no cover - parent already gone
            pass


def _relay_loop(parent, procs, conns, owner):
    """Serve the shard-group protocol by fan-out and tree reduction.

    A relay is protocol-transparent: it routes batch payloads down by
    shard ownership, reduces the children's replies (digests merge by
    per-host addition, result/clock dicts by union, wait by sum), and
    answers with exactly the frame a leaf worker would — so the parent,
    which may itself be a relay, cannot tell tree depth apart.

    Steps forward opportunistically at depth 2: if the parent already
    streamed a follow-up step (the pipelined coordinator's batchless
    empty-epoch jump), it is routed down *before* blocking on the first
    step's replies, so leaf workers cross both epochs without a relay
    round-trip between them.  Replies still flow up strictly in request
    order — the pipelining is invisible to everything above.
    """
    probe = runtime.get_probe()

    def route(batches):
        routed = [{} for _ in conns]
        for shard_id, batch in batches.items():
            routed[owner[shard_id]][shard_id] = batch
        return routed

    def forward_step(message):
        _op, barrier, epoch_end, safe, batches = message
        for conn, payload in zip(conns, route(batches)):
            wire.send(conn, ("step", barrier, epoch_end, safe, payload))

    def gather():
        replies = []
        for conn in conns:
            if probe is not None:
                waited = probe.begin()
                conn.poll(None)
                probe.lap("barrier_wait", waited)
            reply = wire.recv(conn)
            if reply[0] == "error":
                raise RuntimeError(f"shard worker failed:\n{reply[1]}")
            replies.append(reply[1])
        return replies

    def recv_parent():
        if probe is not None:
            waited = probe.begin()
            parent.poll(None)
            probe.lap("barrier_wait", waited)
        return wire.recv(parent)

    backlog = []
    while True:
        message = backlog.pop(0) if backlog else recv_parent()
        op = message[0]
        if op == "step":
            forwarded = 1
            forward_step(message)
            if parent.poll(0):
                follow = wire.recv(parent)
                if follow[0] == "step":
                    forward_step(follow)
                    forwarded += 1
                else:
                    backlog.append(follow)
            for _ in range(forwarded):
                wire.send(
                    parent, ("loads", wire.merge_digests(gather())),
                    piggyback=True,
                )
        elif op == "submit":
            for conn, payload in zip(conns, route(message[1])):
                wire.send(conn, ("submit", payload))
            gather()
            wire.send(parent, ("ok", None), piggyback=True)
        elif op == "run_until":
            for conn in conns:
                wire.send(conn, message)
            deltas = []
            for payload in gather():
                deltas.extend(payload)
            wire.send(parent, ("ok", deltas), piggyback=True)
        elif op == "checkpoint":
            for conn in conns:
                wire.send(conn, message)
            flags = []
            for payload in gather():
                if isinstance(payload, list):
                    flags.extend(payload)
                else:
                    flags.append(bool(payload))
            wire.send(parent, ("ok", flags), piggyback=True)
        elif op in ("resume", "drain"):
            for conn in conns:
                wire.send(conn, message)
            merged = {}
            for payload in gather():
                merged.update(payload)
            wire.send(parent, ("ok", merged), piggyback=True)
        elif op == "finish":
            for conn in conns:
                wire.send(conn, message)
            results = {}
            wait_s = 0.0
            epochs = 0
            for payload in gather():
                results.update(payload["results"])
                wait_s += payload["wait_s"]
                epochs = max(epochs, payload["epochs"])
            wire.send(parent, ("ok", {"results": results,
                                      "wait_s": wait_s,
                                      "epochs": epochs}),
                      piggyback=True)
        elif op == "stop":
            for conn in conns:
                wire.send(conn, ("stop", None))
            for conn in conns:
                wire.recv(conn)
            for proc in procs:
                proc.join(timeout=5)
            wire.send(parent, ("ok", None), piggyback=True)
            return
        else:  # pragma: no cover - protocol guard
            wire.send(parent, ("error", f"unknown op {op!r}"))
            return


class _WorkerGroup:
    """Shards spread over ``workers`` forked processes.

    Shard-to-process mapping is a pure convenience: every shard is a
    deterministic object, so results are invariant to how many processes
    serve them.  Protocol messages travel struct-packed
    (:mod:`repro.cluster.wire`); after a checkpoint handover the
    process behind a pipe is a different PID, but the Connection — and
    the bounded-outstanding-request framing on it — carries over
    untouched, so the group never needs to know.

    With ``fan_in`` set and more workers than the fan-in, the pipes
    below are relay sub-trees instead of leaf workers — same protocol,
    fewer pipes on the coordinator's serial path.
    """

    def __init__(self, shard_specs, workers, sync="conservative",
                 lookahead=0.0, checkpoint_every=None, context=None,
                 eager=False, fan_in=None):
        context_name = context or "fork"
        chunks = [shard_specs[index::workers] for index in range(workers)]
        chunks = [chunk for chunk in chunks if chunk]
        self._procs, self._conns, owners = _spawn_workers(
            context_name, chunks, sync, lookahead, checkpoint_every,
            eager, fan_in,
        )
        self._owner = {}
        for index, shard_ids in enumerate(owners):
            for shard_id in shard_ids:
                self._owner[shard_id] = index

    def _broadcast(self, message):
        for conn in self._conns:
            wire.send(conn, message)
        replies = []
        for conn in self._conns:
            status, payload = wire.recv(conn)
            if status != "ok":
                self.close()
                raise RuntimeError(f"shard worker failed:\n{payload}")
            replies.append(payload)
        return replies

    def submit(self, batches):
        routed = [{} for _ in self._conns]
        for shard_id, batch in batches.items():
            routed[self._owner[shard_id]][shard_id] = batch
        for conn, payload in zip(self._conns, routed):
            wire.send(conn, ("submit", payload))
        for conn in self._conns:
            status, detail = wire.recv(conn)
            if status != "ok":
                self.close()
                raise RuntimeError(f"shard worker failed:\n{detail}")

    def run_until(self, when):
        deltas = []
        for payload in self._broadcast(("run_until", when)):
            deltas.extend(payload)
        return deltas

    def step_send(self, barrier, epoch_end, safe, batches):
        """Ship one combined step without waiting for its replies.

        The pipelined coordinator calls this back-to-back (at most two
        outstanding per pipe — the depth the checkpoint handover
        tolerates: one request in processing travels in the handover,
        a queued one survives in the kernel pipe buffer); every send
        must be matched by a later :meth:`step_recv`, in order.
        """
        routed = [{} for _ in self._conns]
        for shard_id, batch in batches.items():
            routed[self._owner[shard_id]][shard_id] = batch
        for conn, payload in zip(self._conns, routed):
            wire.send(conn, ("step", barrier, epoch_end, safe, payload))

    def step_recv(self):
        """Collect one step's replies: the merged load digest."""
        digests = []
        for conn in self._conns:
            status, payload = wire.recv(conn)
            if status != "loads":
                self.close()
                raise RuntimeError(f"shard worker failed:\n{payload}")
            digests.append(payload)
        return wire.merge_digests(digests)

    def step(self, barrier, epoch_end, safe, batches):
        """Optimistic combined op: submit + advance + collect digests
        in one round-trip (workers speculate while this one is in
        flight on their idle siblings' pipes)."""
        self.step_send(barrier, epoch_end, safe, batches)
        return self.step_recv()

    def checkpoint(self):
        """Ask every worker to fork a checkpoint now (if commit-safe).

        Returns one taken/skipped flag per worker — False where the
        worker has no fork support, checkpoints are disabled, or some
        shard's clock is not at a commit-safe instant.  A relay replies
        with its whole sub-tree's flags as a list, flattened here.
        """
        flags = []
        for taken in self._broadcast(("checkpoint", None)):
            if isinstance(taken, list):
                flags.extend(bool(flag) for flag in taken)
            else:
                flags.append(bool(taken))
        return flags

    def resume(self, barrier):
        """Roll every shard that speculated past ``barrier`` back to
        its committed state — through the checkpoint image where one
        is live (killing the current worker image), by full replay
        otherwise.  Returns ``{shard_id: clock}`` afterwards."""
        clocks = {}
        for payload in self._broadcast(("resume", barrier)):
            clocks.update(payload)
        return clocks

    def drain(self):
        ends = {}
        for payload in self._broadcast(("drain", None)):
            ends.update(payload)
        return [ends[shard_id] for shard_id in sorted(ends)]

    def finish(self, horizon):
        results = {}
        wait_s = 0.0
        epochs = 0
        for payload in self._broadcast(("finish", horizon)):
            results.update(payload["results"])
            wait_s += payload["wait_s"]
            epochs = max(epochs, payload["epochs"])
        ordered = [results[shard_id] for shard_id in sorted(results)]
        stats = _fold_sync_stats(ordered, wait_s)
        stats["epochs"] = max(stats["epochs"], epochs)
        return ordered, stats

    def close(self):
        for conn in self._conns:
            try:
                wire.send(conn, ("stop", None))
            except OSError:
                pass
        for proc in self._procs:
            # After a checkpoint handover the serving process is a
            # descendant, not this Process object (which is already
            # dead); the descendant exits on "stop" and is reaped by
            # init, so the join below is still the right wait.
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []


def _make_group(shard_specs, workers, sync="conservative", lookahead=0.0,
                checkpoint_every=None, context=None, eager=False,
                fan_in=None):
    if workers is None:
        workers = len(shard_specs)
    # A multiprocessing.Pool worker is daemonic and may not fork
    # children; sharded cells that land there degrade to in-process.
    if multiprocessing.current_process().daemon:
        workers = 0
    if workers < 1:
        if sync in ("optimistic", "hierarchical"):
            return _OptimisticInProcessGroup(shard_specs, lookahead)
        return _InProcessGroup(shard_specs)
    return _WorkerGroup(
        shard_specs, min(workers, len(shard_specs)), sync, lookahead,
        checkpoint_every=checkpoint_every, context=context, eager=eager,
        fan_in=fan_in,
    )


# ----------------------------------------------------------------------
# the sharded run
# ----------------------------------------------------------------------
def run_sharded_cluster(preset, concurrency, hosts, seed=0, shards=2,
                        placement="least-loaded", app_name=None,
                        teardown=True, memory_bytes=None, spec=None,
                        vf_count=None, arrivals=None, workers=None,
                        name_prefix="w", trace=None, sync="conservative",
                        engine_stats=None, checkpoint_every=None,
                        worker_context=None, eager_speculation=False,
                        fan_in=None, telemetry=None):
    """Run one cluster churn burst over K shards; returns the summary.

    The summary has exactly the shape (and, for round-robin and for
    burst arrivals, exactly the bytes) of the single-process
    :func:`~repro.cluster.churn.run_cluster_cell`.

    Args:
        shards: Number of shards K (clamped to ``hosts``).
        workers: OS processes serving the shards.  None = one per
            shard (the parallel fast path); 0 = everything in-process
            (useful under pool workers and in tests).  Results are
            invariant to this knob.
        arrivals: :class:`ArrivalPattern` (default: simultaneous burst).
        trace: Optional dict, filled with the merged flight-recorder
            bundle (``repro.obs``): each shard records its own hosts
            and the merge is a disjoint union of host-unique tracks.
            The returned summary never contains trace data.
        sync: ``"conservative"`` (lockstep epoch barriers),
            ``"optimistic"`` (speculate past the barrier, replay on
            conflict), ``"hierarchical"`` (optimistic workers under a
            relay tree with a pipelined coordinator), or ``"auto"``;
            resolved by :func:`resolve_sync`.  Results are
            byte-identical across modes — this knob moves wall-clock
            only.
        engine_stats: Optional dict, filled with aggregated per-shard
            wheel stats plus the sync-protocol counters (epochs,
            barrier wait, rollbacks, speculated/replayed events,
            checkpoints/resumes and their depth histograms).
        checkpoint_every: Fork-checkpoint cadence for optimistic
            workers, in confirmed epochs.  ``None`` adapts to the AIMD
            window; ``0`` disables checkpoints (rollback falls back to
            full replay from t=0).  Wall-clock only — results are
            invariant to this knob.
        worker_context: multiprocessing start-method name for the
            worker processes (default ``"fork"``).  ``"spawn"``
            exercises the no-fork-checkpoint fallback path.
        eager_speculation: Speculate to window exhaustion *before*
            blocking on the next protocol message instead of racing
            the pipe.  Deterministic rollback counts (for tests and
            benches) at the cost of the overlap the racing loop buys.
        fan_in: Relay-tree fan-in for hierarchical sync (``None`` =
            :data:`RELAY_FAN_IN`).  A relay layer forms only when the
            worker count exceeds it.  Wall-clock only — results are
            invariant to this knob.
        telemetry: Optional dict, filled with the wall-clock telemetry
            snapshot (``repro.obs.runtime``): per-process phase
            totals, spans, instants and wire accounting for the
            coordinator, every relay, and every worker.  Passing it
            (or setting ``REPRO_RUNTIME_PROBES=1``) enables the
            probes; either way results stay byte-identical — the
            telemetry-invariance CI gate holds this plane to the same
            contract as every other wall-clock knob.
        Other arguments: as for ``run_cluster_cell``.
    """
    if concurrency <= 0:
        raise ValueError(f"concurrency must be positive, got {concurrency}")
    shards = min(shards, hosts)
    sync = resolve_sync(sync, shards=shards, placement=placement)
    bounds = partition_hosts(hosts, shards)
    if arrivals is None:
        arrivals = ArrivalPattern("burst")
    offsets = arrivals.offsets(concurrency)
    # Arrival order: schedule time, ties by submission index — exactly
    # the order the single-process simulator resumes them in.
    order = sorted(range(concurrency), key=lambda n: (offsets[n], n))

    shard_specs = [
        (shard_id, {
            "preset_or_config": preset,
            "host_start": start,
            "host_stop": stop,
            "spec": spec,
            "seed": seed,
            "vf_count": vf_count,
            "app_name": app_name,
            "teardown": teardown,
            "memory_bytes": memory_bytes,
            "trace": trace is not None,
        })
        for shard_id, (start, stop) in enumerate(bounds)
    ]

    # Host -> shard map, filled range by range (O(hosts), not
    # O(hosts x shards) — at 1M hosts the difference is the build).
    host_shard = [0] * hosts
    for shard_id, (start, stop) in enumerate(bounds):
        for host_index in range(start, stop):
            host_shard[host_index] = shard_id

    lookahead = min_startup_lookahead(spec)
    if fan_in is None and sync == "hierarchical":
        fan_in = RELAY_FAN_IN
    trace_coordinator = trace is not None and os.environ.get(
        "REPRO_TRACE_COORDINATOR", ""
    ) not in ("", "0")
    probes = telemetry is not None or runtime.probes_enabled()
    prev_probes_env = os.environ.get("REPRO_RUNTIME_PROBES")
    aggregator = None
    coord_probe = None
    if probes:
        # Workers decide from the environment (inherited across fork
        # and spawn starts), so an explicit ``telemetry=`` request
        # must arm it before the group spawns; restored below.
        os.environ["REPRO_RUNTIME_PROBES"] = "1"
        aggregator = TelemetryAggregator()
        coord_probe = RuntimeProbe("coordinator")
        aggregator.attach_local(coord_probe)
        runtime.set_aggregator(aggregator)
        runtime.set_probe(coord_probe)
        wire.set_probe(coord_probe)
        wire.set_telemetry_sink(aggregator.ingest)
    stats = _CoordinatorStats(record_spans=trace_coordinator,
                              probe=coord_probe)
    tracker = None
    group = _make_group(
        shard_specs, workers, sync, lookahead,
        checkpoint_every=checkpoint_every, context=worker_context,
        eager=eager_speculation,
        fan_in=fan_in if sync == "hierarchical" else None,
    )
    try:
        if placement == "round-robin":
            _place_round_robin(group, order, offsets, hosts, host_shard)
        else:
            tracker = make_load_tracker(placement, hosts)
            if sync == "conservative":
                _place_epoch_barrier(
                    group, order, offsets, host_shard, tracker,
                    lookahead, stats,
                )
            else:
                _place_epoch_steps(
                    group, order, offsets, host_shard, tracker,
                    lookahead, stats,
                    pipelined=(sync == "hierarchical"),
                )
        ends = group.drain()
        results, sync_stats = group.finish(max(ends))
    finally:
        group.close()
        if probes:
            wire.set_probe(None)
            wire.set_telemetry_sink(None)
            runtime.set_probe(None)
            runtime.set_aggregator(None)
            if prev_probes_env is None:
                os.environ.pop("REPRO_RUNTIME_PROBES", None)
            else:
                os.environ["REPRO_RUNTIME_PROBES"] = prev_probes_env
    if telemetry is not None and aggregator is not None:
        snapshot = aggregator.snapshot()
        snapshot["mode"] = sync
        snapshot["shards"] = shards
        snapshot["lookahead"] = lookahead
        telemetry.update(snapshot)
    sync_stats["mode"] = sync
    sync_stats["coordinator_wait_s"] = stats.wait_s
    sync_stats["coordinator_place_s"] = stats.place_s
    sync_stats["coordinator_reduce_s"] = stats.reduce_s
    sync_stats["placement_heap_ops"] = (
        tracker.heap_ops if tracker is not None else 0
    )
    wheels = [result.pop("wheel_stats", None) for result in results]
    if engine_stats is not None:
        engine_stats.update(_aggregate_wheel_stats(wheels))
        engine_stats["shards"] = shards
        engine_stats["sync_mode"] = sync
        for key, value in sync_stats.items():
            if key != "mode":
                engine_stats[f"sync_{key}"] = value
    if trace is not None:
        from repro.obs.metrics import MetricsRegistry, merge_metrics
        from repro.obs.recorder import merge_dumps

        trace.update(
            merge_dumps([result.pop("trace") for result in results])
        )
        # Protocol counters ride the merged bundle's metrics (flat
        # metrics JSON / --metrics export), never its tracks — the
        # Perfetto trace stays byte-identical across shard counts and
        # sync modes.
        registry = MetricsRegistry()
        registry.ingest_sync_stats(sync_stats)
        trace["metrics"] = merge_metrics(
            [trace["metrics"], registry.snapshot()]
        )
        if trace_coordinator:
            # Opt-in (REPRO_TRACE_COORDINATOR=1): the coordinator's
            # wait/place/reduce spans on a synthetic wall-clock track.
            # Never on by default — wall-clock spans differ run to run,
            # and the default bundle is byte-identical across shard
            # counts (the trace-determinism CI gate).
            trace["tracks"]["coordinator"] = stats.track_events()
    return _merge(results, hosts, concurrency)


#: Wheel-stat aggregation across shards: throughput/cost counters sum,
#: high-water marks take the max, descriptive keys (bucket_width,
#: engine name) come from the first shard.
_WHEEL_SUM_KEYS = frozenset({
    "events_dispatched", "pending_events", "timers_cancelled",
    "compactions", "spill_rebuckets", "pool_slots", "pool_free",
})
_WHEEL_MAX_KEYS = frozenset({
    "spill_peak", "max_bucket_occupancy", "pool_occupancy",
})


def _aggregate_wheel_stats(wheels):
    totals = {}
    for wheel in wheels:
        if not wheel:
            continue
        for key, value in wheel.items():
            if key in _WHEEL_SUM_KEYS:
                totals[key] = totals.get(key, 0) + value
            elif key in _WHEEL_MAX_KEYS:
                totals[key] = max(totals.get(key, 0), value)
            else:
                totals.setdefault(key, value)
    return totals


def _place_round_robin(group, order, offsets, hosts, host_shard):
    """The sync-free plan: container n -> host n % H, one submit."""
    batches = {}
    for position, n in enumerate(order):
        host_index = position % hosts
        batches.setdefault(host_shard[host_index], []).append(
            (n, offsets[n], host_index)
        )
    group.submit(batches)


class _CoordinatorStats:
    """Wall-clock occupancy of the placement coordinator.

    Splits the coordinator's epoch-loop time into three buckets —
    ``wait`` (blocked on shard replies), ``place`` (walking arrivals
    against the load tracker), ``reduce`` (applying reply digests to
    the tracker) — exported through the sync stats as
    ``coordinator_*_s`` gauges.  With span recording enabled
    (``REPRO_TRACE_COORDINATOR=1`` on a traced run) every bucket also
    becomes a Perfetto span on a synthetic ``coordinator`` track, in
    *wall-clock seconds since the run started* (every simulation track
    is in virtual time — the coordinator has no virtual clock, and its
    occupancy is precisely a wall-clock question).  The track is
    opt-in because wall-clock spans differ run to run, and the default
    trace bundle must stay byte-identical across shard counts.
    """

    __slots__ = ("wait_s", "place_s", "reduce_s", "_events", "_record",
                 "_start", "_probe")

    def __init__(self, record_spans=False, probe=None):
        self.wait_s = 0.0
        self.place_s = 0.0
        self.reduce_s = 0.0
        self._record = record_spans
        self._probe = probe
        self._events = []
        self._start = time.perf_counter()

    def note(self, kind, began):
        """Account one ``kind`` span from ``began`` to now; returns now."""
        now = time.perf_counter()
        setattr(self, kind + "_s", getattr(self, kind + "_s") + now - began)
        if self._record:
            self._events.append(("B", began - self._start, kind))
            self._events.append(("E", now - self._start))
        if self._probe is not None:
            self._probe.lap(kind, began, now)
        return now

    def track_events(self):
        """The recorded span stream, recorder-track shaped."""
        return list(self._events)


def _place_epoch_barrier(group, order, offsets, host_shard, tracker,
                         lookahead, stats):
    """Least-loaded over the fixed epoch grid (see module docstring)."""
    # Epochs are tracked by integer index so barrier times are always
    # the product ``k * lookahead`` — products of increasing integers
    # with the same positive float are monotonic, so shard clocks never
    # step backwards even when ``start + lookahead`` would round
    # differently from ``(k + 1) * lookahead``.
    barrier_epoch = 0
    position = 0
    count = len(order)

    def advance(when):
        began = time.perf_counter()
        deltas = group.run_until(when)
        began = stats.note("wait", began)
        for _time, host_index in deltas:
            tracker.release(host_index)
        stats.note("reduce", began)

    while position < count:
        epoch = int(offsets[order[position]] // lookahead)
        if epoch > barrier_epoch:
            # Jump over empty epochs in one step; the teardowns
            # collected here all have time <= the epoch start, so the
            # grid-visibility rule is unaffected by the jump.
            advance(epoch * lookahead)
            barrier_epoch = epoch
        epoch_end = (epoch + 1) * lookahead
        batches = {}
        began = time.perf_counter()
        while position < count and offsets[order[position]] < epoch_end:
            n = order[position]
            position += 1
            host_index = tracker.pick()
            batches.setdefault(host_shard[host_index], []).append(
                (n, offsets[n], host_index)
            )
        stats.note("place", began)
        runtime.note_progress(position, count, epoch)
        group.submit(batches)
        advance(epoch_end)
        barrier_epoch = epoch + 1


def _place_epoch_steps(group, order, offsets, host_shard, tracker,
                       lookahead, stats, pipelined=False):
    """The conservative epoch walk, driven by combined ``step`` ops.

    Placement decisions, their order, and the teardown-visibility rule
    are identical to :func:`_place_epoch_barrier` — each step's digest
    reply carries exactly the load decrements with time <= its epoch
    end — so the placement sequence (and with it the results) is
    byte-identical.  What changes is wall-clock: one round-trip per
    epoch instead of two, and shards speculate into future epochs while
    the coordinator computes.

    ``pipelined`` adds depth-2 streaming: after shipping a batched
    step, the next epoch's *batchless jump* (when the next arrival sits
    beyond the epoch just stepped) is sent before the batched step's
    replies are drained.  The message sequence is provably the serial
    one — a jump's content is three copies of its barrier, independent
    of any reply — and every reply is still applied to the tracker
    before the next placement decision, so the load vector each pick
    sees is identical.  Only the waiting overlaps.
    """
    barrier_epoch = 0
    pending = 0
    position = 0
    count = len(order)
    adversarial = _adversarial_safe()

    def drain_replies():
        nonlocal pending
        while pending:
            began = time.perf_counter()
            digest = group.step_recv()
            began = stats.note("wait", began)
            for host_index, freed in digest:
                tracker.release(host_index, freed)
            stats.note("reduce", began)
            pending -= 1

    while position < count:
        epoch = int(offsets[order[position]] // lookahead)
        if epoch > barrier_epoch:
            # Jump over empty epochs in one batchless step — no batch
            # means no rollback can trigger; speculating shards simply
            # commit whatever they ran ahead.  (Pipelined, this branch
            # only fires for the very first arrival: later jumps were
            # already streamed right behind their batched step.)
            barrier = epoch * lookahead
            group.step_send(barrier, barrier, barrier, {})
            pending += 1
            barrier_epoch = epoch
        drain_replies()
        barrier = epoch * lookahead
        epoch_end = (epoch + 1) * lookahead
        batches = {}
        began = time.perf_counter()
        while position < count and offsets[order[position]] < epoch_end:
            n = order[position]
            position += 1
            host_index = tracker.pick()
            batches.setdefault(host_shard[host_index], []).append(
                (n, offsets[n], host_index)
            )
        stats.note("place", began)
        runtime.note_progress(position, count, epoch)
        # The arrival schedule is known up front, so the earliest
        # barrier any *future* batch can carry is the next unplaced
        # arrival's epoch start — shipped with the step as the shards'
        # risk-free speculation bound (infinity once placement is done).
        # The adversarial test mode under-promises (the current barrier
        # — a valid bound, just maximally pessimistic), so pinned-open
        # windows speculate riskily and conflict on nearly every
        # batched epoch: the rollback-storm regime.
        if adversarial:
            safe = barrier
        elif position < count:
            safe = int(offsets[order[position]] // lookahead) * lookahead
        else:
            safe = float("inf")
        group.step_send(barrier, epoch_end, safe, batches)
        pending += 1
        barrier_epoch = epoch + 1
        if pipelined and position < count:
            next_epoch = int(offsets[order[position]] // lookahead)
            if next_epoch > barrier_epoch:
                # Stream the next jump behind the batched step: its
                # payload is independent of the in-flight replies, and
                # the jump's safe bound equals its own barrier exactly
                # as the serial loop would send it.
                jump = next_epoch * lookahead
                group.step_send(jump, jump, jump, {})
                pending += 1
                barrier_epoch = next_epoch
        if not pipelined:
            drain_replies()
    drain_replies()


def _merge(results, hosts, concurrency):
    """Stitch shard results into the single-process summary shape."""
    records = []
    for result in results:
        records.extend(result["records"])
    records.sort()
    if len(records) != concurrency:
        raise RuntimeError(
            f"lost containers: {len(records)} records for "
            f"{concurrency} submissions"
        )
    summary = Distribution(
        [record[3] for record in records]
    ).summary()
    peak_loads = {}
    free_vfs = {}
    for result in results:
        peak_loads.update(result["peak_loads"])
        free_vfs.update(result["free_vfs"])
    if any(free_vfs[index] is None for index in free_vfs):
        free_total = None
    else:
        free_total = sum(free_vfs[index] for index in sorted(free_vfs))
    return {
        "count": summary["count"],
        "mean": summary["mean"],
        "p50": summary["p50"],
        "p99": summary["p99"],
        "min": summary["min"],
        "max": summary["max"],
        "hosts": hosts,
        "peak_in_flight": peak_concurrency(
            [(record[1], record[2]) for record in records]
        ),
        "events": sum(result["events"] for result in results),
        "free_vfs_total": free_total,
        "peak_load_per_host": [
            peak_loads[index] for index in range(hosts)
        ],
    }
