"""Sharded cluster simulation: one logical timeline over many cores.

The single-process :class:`~repro.cluster.cluster.Cluster` puts N hosts
on one simulator, so a 10,000-startup storm is one serial event stream
on one core.  Hosts in the model are almost perfectly independent —
per-host locks, CPUs, DRAM, VF pools — and interact only through
*placement*, which is exactly the structure this module exploits: the
cluster's hosts are partitioned into K contiguous shards, each simulated
by its own :class:`~repro.cluster.shard.ClusterShard` (optionally in its
own worker process), and a deterministic placement protocol stitches
the shards into one logical timeline.

Round-robin: zero synchronization
---------------------------------

Round-robin placement is a pure function of arrival order (container
``n`` lands on host ``n % H``), and arrival order is a pure function of
the arrival schedule, which is known before the simulation starts.  The
whole placement plan is therefore computed up front, each shard receives
its containers in one message, and the shards run to completion with no
barriers at all.  Because a host's event stream does not depend on which
simulator it shares (per-host jitter forks ``host-i``, per-host state),
the merged result is **byte-identical** to the single-process run for
every shard count.

Least-loaded: conservative epoch barriers
-----------------------------------------

Least-loaded placement needs cross-shard load knowledge: the pick for an
arrival at time *t* depends on every placement and teardown before *t*.
Placements are made centrally (the coordinator walks arrivals in
schedule order), so the only information that must flow between shards
is *teardown times* — and those become known only as each shard
simulates.  The protocol advances all shards in lockstep over a fixed
virtual-time grid of width ``L`` (the lookahead, derived from the
minimum possible startup latency, :func:`min_startup_lookahead`):

1. at barrier ``kL`` every shard has simulated to exactly ``kL`` and has
   reported every teardown with time <= ``kL``;
2. the coordinator applies the reported load deltas, places the arrivals
   of epoch ``[kL, (k+1)L)`` in (time, index) order against its load
   vector, and sends each shard its assignments;
3. every shard advances to ``(k+1)L``, reporting new teardowns.

A teardown is thus visible to an arrival iff it happened at or before
the start of the arrival's epoch — a *conservative* view (the load
vector briefly overestimates), but one defined purely on the fixed grid:
the placement sequence is a deterministic function of the arrival
schedule and per-host teardown times, both of which are independent of
the shard count and of how shards map to worker processes.  Results are
therefore invariant to K and ``workers``.  Epochs without arrivals are
skipped in one jump (the visibility rule depends only on the grid, not
on which barriers were visited).  For a simultaneous burst every arrival
lands in epoch 0 before any teardown exists, the pick sequence cycles
exactly like round-robin, and the K > 1 result is byte-identical to the
single-process run for this case too.

``shards=1`` requests are routed by :func:`~repro.cluster.churn.run_cluster_cell`
to the single-process :class:`Cluster` path — today's behavior, with
continuous (not epoch-quantized) teardown visibility.

End-of-run alignment
--------------------

After the last lifecycle finishes, shards have reached *different* local
end times, but background daemons (the fastiovd scanner) tick for as
long as the shared timeline stays alive in a single-process run.  The
coordinator therefore collects every shard's local end time and advances
the stragglers to the global maximum, so merged event counts match the
single-process run exactly.
"""

import multiprocessing
import os
import sys
import traceback

from repro.cluster.placement import make_placement
from repro.cluster.shard import ClusterShard
from repro.metrics.stats import Distribution
from repro.spec import PAPER_TESTBED
from repro.workloads.generator import ArrivalPattern


#: Below this many hosts per shard, worker spawn and the per-epoch
#: barrier cost more wall-clock than the split saves: the quick scale
#: cell (8 hosts) measured 3.7 s at ``--shards 4`` against 2.3 s
#: single-process.  ``resolve_shards("auto", ...)`` never splits finer.
MIN_HOSTS_PER_SHARD = 8


def resolve_shards(shards, hosts):
    """Resolve a shard request — ``None``, an int, or ``"auto"`` — to a
    concrete shard count for a ``hosts``-host cell.

    ``"auto"`` picks the widest split that keeps at least
    :data:`MIN_HOSTS_PER_SHARD` hosts per shard, bounded by the CPU
    count; a cell too small to clear the threshold falls back to the
    in-process single-shard path (with a note on stderr), where
    sharding is pure spawn/barrier overhead.  Explicit integer counts
    are honored (clamped to ``hosts``) — the caller asked for that
    split, overhead and all.  Results are byte-identical across shard
    counts, so this is purely a wall-clock decision.
    """
    if shards is None:
        return 1
    if shards == "auto":
        resolved = max(
            1, min(os.cpu_count() or 1, hosts // MIN_HOSTS_PER_SHARD)
        )
        if resolved == 1 and hosts < 2 * MIN_HOSTS_PER_SHARD:
            print(
                f"shards=auto: {hosts}-host cell is below "
                f"{MIN_HOSTS_PER_SHARD} hosts/shard at any split; "
                f"using the in-process single-shard path",
                file=sys.stderr,
            )
        return resolved
    return max(1, min(int(shards), hosts))


def partition_hosts(hosts, shards):
    """Contiguous balanced host ranges: ``[(start, stop), ...]``.

    The first ``hosts % shards`` shards get one extra host.  With
    round-robin placement a burst spreads uniformly over hosts, so
    contiguous ranges balance container counts too.
    """
    if hosts <= 0:
        raise ValueError(f"hosts must be positive, got {hosts}")
    if not 1 <= shards <= hosts:
        raise ValueError(
            f"shards must be in [1, hosts={hosts}], got {shards}"
        )
    base, extra = divmod(hosts, shards)
    bounds = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def min_startup_lookahead(spec=None):
    """Epoch width: a lower-ish bound on the placement->teardown gap.

    Every lifecycle serially spends at least the VM-create and
    guest-boot base costs between placement and teardown; half of that
    floor absorbs the multiplicative (log-normal, unit-mean) jitter in
    practice.  The protocol is deterministic and K-invariant for *any*
    positive epoch width — a smaller value only tightens how stale the
    conservative load vector can get, at the cost of more barriers.
    """
    spec = spec if spec is not None else PAPER_TESTBED
    return (spec.vm_create_base_s + spec.guest_boot_base_s) / 2.0


def peak_concurrency(spans):
    """Peak overlap of ``[(start, end), ...]``, starts before ends on ties.

    This is how the merged run recovers the cluster-wide realized
    startup concurrency the single-process driver counts incrementally:
    at equal timestamps an arrival's resume event always carries a
    smaller sequence number than a completion scheduled later, so
    arrivals are counted first.
    """
    events = []
    for start, end in spans:
        events.append((start, 0))
        events.append((end, 1))
    events.sort()
    current = peak = 0
    for _time, kind in events:
        if kind == 0:
            current += 1
            if current > peak:
                peak = current
        else:
            current -= 1
    return peak


# ----------------------------------------------------------------------
# shard groups: the same protocol, in-process or over worker processes
# ----------------------------------------------------------------------
class _InProcessGroup:
    """All shards in this process (workers=0, or inside a pool worker)."""

    def __init__(self, shard_specs):
        self.shards = [ClusterShard(**spec) for _, spec in shard_specs]

    def submit(self, batches):
        for shard_id, batch in batches.items():
            self.shards[shard_id].submit(batch)

    def run_until(self, when):
        deltas = []
        for shard in self.shards:
            deltas.extend(shard.run_until(when))
        return deltas

    def drain(self):
        return [shard.drain() for shard in self.shards]

    def finish(self, horizon):
        results = []
        for shard in self.shards:
            if shard.sim.now < horizon:
                shard.sim.run_until(horizon)
            results.append(shard.result())
        return results

    def close(self):
        self.shards = []


def _shard_worker_main(conn, shard_specs):
    """Worker loop: build the assigned shards, serve barrier commands."""
    try:
        shards = {shard_id: ClusterShard(**spec)
                  for shard_id, spec in shard_specs}
        while True:
            message = conn.recv()
            op = message[0]
            if op == "submit":
                for shard_id, batch in message[1].items():
                    shards[shard_id].submit(batch)
                conn.send(("ok", None))
            elif op == "run_until":
                deltas = []
                for shard in shards.values():
                    deltas.extend(shard.run_until(message[1]))
                conn.send(("ok", deltas))
            elif op == "drain":
                conn.send(
                    ("ok", {sid: shard.drain()
                            for sid, shard in shards.items()})
                )
            elif op == "finish":
                results = {}
                for shard_id, shard in shards.items():
                    if shard.sim.now < message[1]:
                        shard.sim.run_until(message[1])
                    results[shard_id] = shard.result()
                conn.send(("ok", results))
            elif op == "stop":
                conn.send(("ok", None))
                return
            else:  # pragma: no cover - protocol guard
                conn.send(("error", f"unknown op {op!r}"))
                return
    except BaseException as exc:  # noqa: BLE001 - ship it to the parent
        try:
            conn.send(("error", f"{exc!r}\n{traceback.format_exc()}"))
        except OSError:  # pragma: no cover - parent already gone
            pass


class _WorkerGroup:
    """Shards spread over ``workers`` forked processes.

    Shard-to-process mapping is a pure convenience: every shard is a
    deterministic object, so results are invariant to how many processes
    serve them.
    """

    def __init__(self, shard_specs, workers):
        context = multiprocessing.get_context("fork")
        chunks = [shard_specs[index::workers] for index in range(workers)]
        chunks = [chunk for chunk in chunks if chunk]
        self._owner = {}
        self._procs = []
        self._conns = []
        for worker_index, chunk in enumerate(chunks):
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_shard_worker_main,
                args=(child_conn, chunk),
                name=f"repro-shard-worker-{worker_index}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
            for shard_id, _ in chunk:
                self._owner[shard_id] = worker_index

    def _broadcast(self, message):
        for conn in self._conns:
            conn.send(message)
        replies = []
        for conn in self._conns:
            status, payload = conn.recv()
            if status != "ok":
                self.close()
                raise RuntimeError(f"shard worker failed:\n{payload}")
            replies.append(payload)
        return replies

    def submit(self, batches):
        routed = [{} for _ in self._conns]
        for shard_id, batch in batches.items():
            routed[self._owner[shard_id]][shard_id] = batch
        for conn, payload in zip(self._conns, routed):
            conn.send(("submit", payload))
        for conn in self._conns:
            status, detail = conn.recv()
            if status != "ok":
                self.close()
                raise RuntimeError(f"shard worker failed:\n{detail}")

    def run_until(self, when):
        deltas = []
        for payload in self._broadcast(("run_until", when)):
            deltas.extend(payload)
        return deltas

    def drain(self):
        ends = {}
        for payload in self._broadcast(("drain", None)):
            ends.update(payload)
        return [ends[shard_id] for shard_id in sorted(ends)]

    def finish(self, horizon):
        results = {}
        for payload in self._broadcast(("finish", horizon)):
            results.update(payload)
        return [results[shard_id] for shard_id in sorted(results)]

    def close(self):
        for conn in self._conns:
            try:
                conn.send(("stop", None))
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []


def _make_group(shard_specs, workers):
    if workers is None:
        workers = len(shard_specs)
    # A multiprocessing.Pool worker is daemonic and may not fork
    # children; sharded cells that land there degrade to in-process.
    if multiprocessing.current_process().daemon:
        workers = 0
    if workers < 1:
        return _InProcessGroup(shard_specs)
    return _WorkerGroup(shard_specs, min(workers, len(shard_specs)))


# ----------------------------------------------------------------------
# the sharded run
# ----------------------------------------------------------------------
def run_sharded_cluster(preset, concurrency, hosts, seed=0, shards=2,
                        placement="least-loaded", app_name=None,
                        teardown=True, memory_bytes=None, spec=None,
                        vf_count=None, arrivals=None, workers=None,
                        name_prefix="w", trace=None):
    """Run one cluster churn burst over K shards; returns the summary.

    The summary has exactly the shape (and, for round-robin and for
    burst arrivals, exactly the bytes) of the single-process
    :func:`~repro.cluster.churn.run_cluster_cell`.

    Args:
        shards: Number of shards K (clamped to ``hosts``).
        workers: OS processes serving the shards.  None = one per
            shard (the parallel fast path); 0 = everything in-process
            (useful under pool workers and in tests).  Results are
            invariant to this knob.
        arrivals: :class:`ArrivalPattern` (default: simultaneous burst).
        trace: Optional dict, filled with the merged flight-recorder
            bundle (``repro.obs``): each shard records its own hosts
            and the merge is a disjoint union of host-unique tracks.
            The returned summary never contains trace data.
        Other arguments: as for ``run_cluster_cell``.
    """
    if concurrency <= 0:
        raise ValueError(f"concurrency must be positive, got {concurrency}")
    shards = min(shards, hosts)
    bounds = partition_hosts(hosts, shards)
    if arrivals is None:
        arrivals = ArrivalPattern("burst")
    offsets = arrivals.offsets(concurrency)
    # Arrival order: schedule time, ties by submission index — exactly
    # the order the single-process simulator resumes them in.
    order = sorted(range(concurrency), key=lambda n: (offsets[n], n))

    shard_specs = [
        (shard_id, {
            "preset_or_config": preset,
            "host_start": start,
            "host_stop": stop,
            "spec": spec,
            "seed": seed,
            "vf_count": vf_count,
            "app_name": app_name,
            "teardown": teardown,
            "memory_bytes": memory_bytes,
            "trace": trace is not None,
        })
        for shard_id, (start, stop) in enumerate(bounds)
    ]

    def shard_of(host_index):
        for shard_id, (start, stop) in enumerate(bounds):
            if start <= host_index < stop:
                return shard_id
        raise IndexError(host_index)

    host_shard = [shard_of(index) for index in range(hosts)]

    group = _make_group(shard_specs, workers)
    try:
        if placement == "round-robin":
            _place_round_robin(group, order, offsets, hosts, host_shard)
        else:
            _place_epoch_barrier(
                group, order, offsets, hosts, host_shard, placement,
                min_startup_lookahead(spec),
            )
        ends = group.drain()
        results = group.finish(max(ends))
    finally:
        group.close()
    if trace is not None:
        from repro.obs.recorder import merge_dumps

        trace.update(
            merge_dumps([result.pop("trace") for result in results])
        )
    return _merge(results, hosts, concurrency)


def _place_round_robin(group, order, offsets, hosts, host_shard):
    """The sync-free plan: container n -> host n % H, one submit."""
    batches = {}
    for position, n in enumerate(order):
        host_index = position % hosts
        batches.setdefault(host_shard[host_index], []).append(
            (n, offsets[n], host_index)
        )
    group.submit(batches)


def _place_epoch_barrier(group, order, offsets, hosts, host_shard,
                         placement, lookahead):
    """Least-loaded over the fixed epoch grid (see module docstring)."""
    policy = make_placement(placement)
    loads = [0] * hosts
    # Epochs are tracked by integer index so barrier times are always
    # the product ``k * lookahead`` — products of increasing integers
    # with the same positive float are monotonic, so shard clocks never
    # step backwards even when ``start + lookahead`` would round
    # differently from ``(k + 1) * lookahead``.
    barrier_epoch = 0
    position = 0
    count = len(order)
    while position < count:
        epoch = int(offsets[order[position]] // lookahead)
        if epoch > barrier_epoch:
            # Jump over empty epochs in one step; the teardowns
            # collected here all have time <= the epoch start, so the
            # grid-visibility rule is unaffected by the jump.
            for _time, host_index in group.run_until(epoch * lookahead):
                loads[host_index] -= 1
            barrier_epoch = epoch
        epoch_end = (epoch + 1) * lookahead
        batches = {}
        while position < count and offsets[order[position]] < epoch_end:
            n = order[position]
            position += 1
            host_index = policy.pick(loads)
            loads[host_index] += 1
            batches.setdefault(host_shard[host_index], []).append(
                (n, offsets[n], host_index)
            )
        group.submit(batches)
        for _time, host_index in group.run_until(epoch_end):
            loads[host_index] -= 1
        barrier_epoch = epoch + 1


def _merge(results, hosts, concurrency):
    """Stitch shard results into the single-process summary shape."""
    records = []
    for result in results:
        records.extend(result["records"])
    records.sort()
    if len(records) != concurrency:
        raise RuntimeError(
            f"lost containers: {len(records)} records for "
            f"{concurrency} submissions"
        )
    summary = Distribution(
        [record[3] for record in records]
    ).summary()
    peak_loads = {}
    free_vfs = {}
    for result in results:
        peak_loads.update(result["peak_loads"])
        free_vfs.update(result["free_vfs"])
    if any(free_vfs[index] is None for index in free_vfs):
        free_total = None
    else:
        free_total = sum(free_vfs[index] for index in sorted(free_vfs))
    return {
        "count": summary["count"],
        "mean": summary["mean"],
        "p50": summary["p50"],
        "p99": summary["p99"],
        "min": summary["min"],
        "max": summary["max"],
        "hosts": hosts,
        "peak_in_flight": peak_concurrency(
            [(record[1], record[2]) for record in records]
        ),
        "events": sum(result["events"] for result in results),
        "free_vfs_total": free_total,
        "peak_load_per_host": [
            peak_loads[index] for index in range(hosts)
        ],
    }
