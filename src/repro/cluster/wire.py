"""Packed binary wire format for the sharded runner's hot epoch path.

The epoch protocol exchanges two message shapes thousands of times per
run: coordinator -> worker *step/submit* messages carrying placement
batches, and worker -> coordinator *delta* replies carrying teardown
``(time, host_index)`` pairs.  Pickling those tagged tuples is the
dominant per-epoch cost once the simulation itself is sharded away —
every message pays pickle's opcode walk, per-object allocation, and
memo bookkeeping for what is structurally three flat arrays and a
header.

This module packs exactly those shapes with :mod:`struct` headers and
:mod:`array` payloads (native byte order — both ends of a pipe are the
same machine), and falls back to pickle for everything else (drain,
finish, stop, checkpoint control, error replies: a handful of messages
per run).  The first byte of every frame discriminates:

====  ==============================================================
tag   frame
====  ==============================================================
``S`` step: ``barrier, epoch_end, safe`` doubles + batch sections
``B`` submit: batch sections only (conservative protocol)
``R`` run_until: one double
``D`` delta reply: count + times ``array('d')`` + hosts ``array('q')``
``L`` load digest: count + hosts ``array('q')`` + counts ``array('q')``
``K`` bare ``("ok", None)`` acknowledgement
``P`` pickled payload (everything else)
====  ==============================================================

The ``L`` frame is the optimistic/hierarchical step reply: instead of
every individual ``(time, host)`` teardown pair, the worker ships the
*digest* — how many containers left each host within the committed
epoch, as sorted ``(host, freed_count)`` pairs
(:func:`digest_deltas`).  The coordinator only ever used the deltas to
decrement its load vector, and every delta in a step reply is applied
before the next placement decision, so the digest carries exactly the
information placement consumes — while shrinking the reply from
O(teardowns) to O(distinct hosts) and, crucially, letting relay nodes
in a hierarchical topology *merge* their children's replies
(:func:`merge_digests`) into one frame instead of concatenating them.

A batch section is ``shard_id, count`` followed by three parallel
arrays: global container indices (``q``), arrival offsets (``d``), and
global host indices (``q``).  Floats round-trip exactly through
``struct``/``array`` doubles, so the encoding is byte-transparent to
the placement protocol: decoded messages compare equal to the tuples
the pickled protocol carried.
"""

import pickle
import struct
from array import array

_HEAD_STEP = struct.Struct("=ddd")
_HEAD_COUNT = struct.Struct("=I")
_HEAD_BATCH = struct.Struct("=II")
_HEAD_WHEN = struct.Struct("=d")


def digest_deltas(deltas):
    """Teardown deltas ``[(time, host), ...]`` -> sorted load digest.

    The digest is ``[(host, freed_count), ...]`` in host order: the
    exact decrement the coordinator's load vector needs, independent of
    the order the teardowns happened in (all of a step reply's deltas
    are applied before the next placement decision, so only the sums
    matter).
    """
    counts = {}
    for _when, host in deltas:
        counts[host] = counts.get(host, 0) + 1
    return sorted(counts.items())


def merge_digests(digests):
    """Combine child load digests into one (relay tree reduction)."""
    counts = {}
    for digest in digests:
        for host, freed in digest:
            counts[host] = counts.get(host, 0) + freed
    return sorted(counts.items())


def _pack_batches(out, batches):
    out.append(_HEAD_COUNT.pack(len(batches)))
    for shard_id, batch in batches.items():
        out.append(_HEAD_BATCH.pack(shard_id, len(batch)))
        indices = array("q")
        offsets = array("d")
        hosts = array("q")
        for index, offset, host in batch:
            indices.append(index)
            offsets.append(offset)
            hosts.append(host)
        out.append(indices.tobytes())
        out.append(offsets.tobytes())
        out.append(hosts.tobytes())


def _unpack_batches(payload, cursor):
    (count,) = _HEAD_COUNT.unpack_from(payload, cursor)
    cursor += _HEAD_COUNT.size
    batches = {}
    for _ in range(count):
        shard_id, length = _HEAD_BATCH.unpack_from(payload, cursor)
        cursor += _HEAD_BATCH.size
        indices = array("q")
        indices.frombytes(payload[cursor:cursor + 8 * length])
        cursor += 8 * length
        offsets = array("d")
        offsets.frombytes(payload[cursor:cursor + 8 * length])
        cursor += 8 * length
        hosts = array("q")
        hosts.frombytes(payload[cursor:cursor + 8 * length])
        cursor += 8 * length
        batches[shard_id] = list(zip(indices, offsets, hosts))
    return batches, cursor


def encode(message):
    """One protocol message -> bytes (packed when hot, pickled else)."""
    op = message[0]
    if op == "step":
        _op, barrier, epoch_end, safe, batches = message
        out = [b"S", _HEAD_STEP.pack(barrier, epoch_end, safe)]
        _pack_batches(out, batches)
        return b"".join(out)
    if op == "submit":
        out = [b"B"]
        _pack_batches(out, message[1])
        return b"".join(out)
    if op == "run_until":
        return b"R" + _HEAD_WHEN.pack(message[1])
    if op == "loads" and len(message) == 2:
        digest = message[1]
        hosts = array("q")
        counts = array("q")
        for host, freed in digest:
            hosts.append(host)
            counts.append(freed)
        return b"".join((
            b"L", _HEAD_COUNT.pack(len(digest)),
            hosts.tobytes(), counts.tobytes(),
        ))
    if op == "ok" and len(message) == 2:
        payload = message[1]
        if payload is None:
            return b"K"
        if isinstance(payload, list) and all(
            isinstance(item, tuple) and len(item) == 2 for item in payload
        ):
            times = array("d")
            hosts = array("q")
            for when, host in payload:
                times.append(when)
                hosts.append(host)
            return b"".join((
                b"D", _HEAD_COUNT.pack(len(payload)),
                times.tobytes(), hosts.tobytes(),
            ))
    return b"P" + pickle.dumps(message)


def decode(payload):
    """Bytes -> the exact tagged tuple the pickled protocol carried."""
    tag = payload[:1]
    if tag == b"S":
        barrier, epoch_end, safe = _HEAD_STEP.unpack_from(payload, 1)
        batches, _ = _unpack_batches(payload, 1 + _HEAD_STEP.size)
        return ("step", barrier, epoch_end, safe, batches)
    if tag == b"B":
        batches, _ = _unpack_batches(payload, 1)
        return ("submit", batches)
    if tag == b"R":
        return ("run_until", _HEAD_WHEN.unpack_from(payload, 1)[0])
    if tag == b"K":
        return ("ok", None)
    if tag == b"D":
        (count,) = _HEAD_COUNT.unpack_from(payload, 1)
        cursor = 1 + _HEAD_COUNT.size
        times = array("d")
        times.frombytes(payload[cursor:cursor + 8 * count])
        cursor += 8 * count
        hosts = array("q")
        hosts.frombytes(payload[cursor:cursor + 8 * count])
        return ("ok", list(zip(times, hosts)))
    if tag == b"L":
        (count,) = _HEAD_COUNT.unpack_from(payload, 1)
        cursor = 1 + _HEAD_COUNT.size
        hosts = array("q")
        hosts.frombytes(payload[cursor:cursor + 8 * count])
        cursor += 8 * count
        counts = array("q")
        counts.frombytes(payload[cursor:cursor + 8 * count])
        return ("loads", list(zip(hosts, counts)))
    if tag == b"P":
        return pickle.loads(payload[1:])
    raise ValueError(f"unknown wire tag {tag!r}")


def send(conn, message):
    """Encode and ship one message on a multiprocessing Connection."""
    conn.send_bytes(encode(message))


def recv(conn):
    """Receive and decode one message from a Connection."""
    return decode(conn.recv_bytes())
