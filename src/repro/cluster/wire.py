"""Packed binary wire format for the sharded runner's hot epoch path.

The epoch protocol exchanges two message shapes thousands of times per
run: coordinator -> worker *step/submit* messages carrying placement
batches, and worker -> coordinator *delta* replies carrying teardown
``(time, host_index)`` pairs.  Pickling those tagged tuples is the
dominant per-epoch cost once the simulation itself is sharded away —
every message pays pickle's opcode walk, per-object allocation, and
memo bookkeeping for what is structurally three flat arrays and a
header.

This module packs exactly those shapes with :mod:`struct` headers and
:mod:`array` payloads (native byte order — both ends of a pipe are the
same machine), and falls back to pickle for everything else (drain,
finish, stop, checkpoint control, error replies: a handful of messages
per run).  The first byte of every frame discriminates:

====  ==============================================================
tag   frame
====  ==============================================================
``S`` step: ``barrier, epoch_end, safe`` doubles + batch sections
``B`` submit: batch sections only (conservative protocol)
``R`` run_until: one double
``D`` delta reply: count + times ``array('d')`` + hosts ``array('q')``
``L`` load digest: count + hosts ``array('q')`` + counts ``array('q')``
``K`` bare ``("ok", None)`` acknowledgement
``P`` pickled payload (everything else)
``T`` telemetry envelope: inner frame + piggybacked probe records
====  ==============================================================

The ``L`` frame is the optimistic/hierarchical step reply: instead of
every individual ``(time, host)`` teardown pair, the worker ships the
*digest* — how many containers left each host within the committed
epoch, as sorted ``(host, freed_count)`` pairs
(:func:`digest_deltas`).  The coordinator only ever used the deltas to
decrement its load vector, and every delta in a step reply is applied
before the next placement decision, so the digest carries exactly the
information placement consumes — while shrinking the reply from
O(teardowns) to O(distinct hosts) and, crucially, letting relay nodes
in a hierarchical topology *merge* their children's replies
(:func:`merge_digests`) into one frame instead of concatenating them.

A batch section is ``shard_id, count`` followed by three parallel
arrays: global container indices (``q``), arrival offsets (``d``), and
global host indices (``q``).  Floats round-trip exactly through
``struct``/``array`` doubles, so the encoding is byte-transparent to
the placement protocol: decoded messages compare equal to the tuples
the pickled protocol carried.

Telemetry envelope (wall-clock plane, ``repro.obs.runtime``)
------------------------------------------------------------

When a :class:`~repro.obs.runtime.RuntimeProbe` is installed in this
process (:func:`set_probe`), upward replies sent with
``send(..., piggyback=True)`` travel inside a ``T`` envelope: the
inner frame's bytes, length-prefixed, followed by a pickled list of
probe records — the worker's own flush plus, in a relay, whatever its
children piggybacked since the last upward send
(:func:`set_telemetry_sink` installs the buffer).  ``decode`` strips
the envelope, routes the records to the local sink (the coordinator's
:class:`~repro.obs.runtime.TelemetryAggregator`), and returns exactly
the inner message — the protocol above never sees telemetry, which is
what makes the plane results-invariant by construction.  The probe
also accounts every frame by *inner* tag (frames, bytes, both
directions) and attributes encode+write time to ``ipc_send`` and
decode time to ``ipc_recv``; blocked receive time stays with the
caller (that is barrier wait, not IPC cost).
"""

import pickle
import struct
import time
from array import array

_HEAD_STEP = struct.Struct("=ddd")
_HEAD_COUNT = struct.Struct("=I")
_HEAD_BATCH = struct.Struct("=II")
_HEAD_WHEN = struct.Struct("=d")

#: Installed :class:`~repro.obs.runtime.RuntimeProbe` for this process
#: (None = telemetry off: send/recv take the original zero-overhead
#: path after one attribute read and a None check).
_PROBE = None
#: Callable fed each incoming envelope's record list (the
#: coordinator's aggregator ``ingest``, or a relay's
#: :class:`~repro.obs.runtime.RecordBuffer`).
_SINK = None


def set_probe(probe):
    """Install this process's runtime probe (None disables)."""
    global _PROBE
    _PROBE = probe


def set_telemetry_sink(sink):
    """Install the handler for piggybacked telemetry records."""
    global _SINK
    _SINK = sink


def digest_deltas(deltas):
    """Teardown deltas ``[(time, host), ...]`` -> sorted load digest.

    The digest is ``[(host, freed_count), ...]`` in host order: the
    exact decrement the coordinator's load vector needs, independent of
    the order the teardowns happened in (all of a step reply's deltas
    are applied before the next placement decision, so only the sums
    matter).
    """
    counts = {}
    for _when, host in deltas:
        counts[host] = counts.get(host, 0) + 1
    return sorted(counts.items())


def merge_digests(digests):
    """Combine child load digests into one (relay tree reduction)."""
    counts = {}
    for digest in digests:
        for host, freed in digest:
            counts[host] = counts.get(host, 0) + freed
    return sorted(counts.items())


def _pack_batches(out, batches):
    out.append(_HEAD_COUNT.pack(len(batches)))
    for shard_id, batch in batches.items():
        out.append(_HEAD_BATCH.pack(shard_id, len(batch)))
        indices = array("q")
        offsets = array("d")
        hosts = array("q")
        for index, offset, host in batch:
            indices.append(index)
            offsets.append(offset)
            hosts.append(host)
        out.append(indices.tobytes())
        out.append(offsets.tobytes())
        out.append(hosts.tobytes())


def _unpack_batches(payload, cursor):
    (count,) = _HEAD_COUNT.unpack_from(payload, cursor)
    cursor += _HEAD_COUNT.size
    batches = {}
    for _ in range(count):
        shard_id, length = _HEAD_BATCH.unpack_from(payload, cursor)
        cursor += _HEAD_BATCH.size
        indices = array("q")
        indices.frombytes(payload[cursor:cursor + 8 * length])
        cursor += 8 * length
        offsets = array("d")
        offsets.frombytes(payload[cursor:cursor + 8 * length])
        cursor += 8 * length
        hosts = array("q")
        hosts.frombytes(payload[cursor:cursor + 8 * length])
        cursor += 8 * length
        batches[shard_id] = list(zip(indices, offsets, hosts))
    return batches, cursor


def encode(message):
    """One protocol message -> bytes (packed when hot, pickled else)."""
    op = message[0]
    if op == "step":
        _op, barrier, epoch_end, safe, batches = message
        out = [b"S", _HEAD_STEP.pack(barrier, epoch_end, safe)]
        _pack_batches(out, batches)
        return b"".join(out)
    if op == "submit":
        out = [b"B"]
        _pack_batches(out, message[1])
        return b"".join(out)
    if op == "run_until":
        return b"R" + _HEAD_WHEN.pack(message[1])
    if op == "loads" and len(message) == 2:
        digest = message[1]
        hosts = array("q")
        counts = array("q")
        for host, freed in digest:
            hosts.append(host)
            counts.append(freed)
        return b"".join((
            b"L", _HEAD_COUNT.pack(len(digest)),
            hosts.tobytes(), counts.tobytes(),
        ))
    if op == "ok" and len(message) == 2:
        payload = message[1]
        if payload is None:
            return b"K"
        if isinstance(payload, list) and all(
            isinstance(item, tuple) and len(item) == 2 for item in payload
        ):
            times = array("d")
            hosts = array("q")
            for when, host in payload:
                times.append(when)
                hosts.append(host)
            return b"".join((
                b"D", _HEAD_COUNT.pack(len(payload)),
                times.tobytes(), hosts.tobytes(),
            ))
    return b"P" + pickle.dumps(message)


def decode(payload):
    """Bytes -> the exact tagged tuple the pickled protocol carried."""
    tag = payload[:1]
    if tag == b"S":
        barrier, epoch_end, safe = _HEAD_STEP.unpack_from(payload, 1)
        batches, _ = _unpack_batches(payload, 1 + _HEAD_STEP.size)
        return ("step", barrier, epoch_end, safe, batches)
    if tag == b"B":
        batches, _ = _unpack_batches(payload, 1)
        return ("submit", batches)
    if tag == b"R":
        return ("run_until", _HEAD_WHEN.unpack_from(payload, 1)[0])
    if tag == b"K":
        return ("ok", None)
    if tag == b"D":
        (count,) = _HEAD_COUNT.unpack_from(payload, 1)
        cursor = 1 + _HEAD_COUNT.size
        times = array("d")
        times.frombytes(payload[cursor:cursor + 8 * count])
        cursor += 8 * count
        hosts = array("q")
        hosts.frombytes(payload[cursor:cursor + 8 * count])
        return ("ok", list(zip(times, hosts)))
    if tag == b"L":
        (count,) = _HEAD_COUNT.unpack_from(payload, 1)
        cursor = 1 + _HEAD_COUNT.size
        hosts = array("q")
        hosts.frombytes(payload[cursor:cursor + 8 * count])
        cursor += 8 * count
        counts = array("q")
        counts.frombytes(payload[cursor:cursor + 8 * count])
        return ("loads", list(zip(hosts, counts)))
    if tag == b"P":
        return pickle.loads(payload[1:])
    if tag == b"T":
        (inner_len,) = _HEAD_COUNT.unpack_from(payload, 1)
        inner_end = 1 + _HEAD_COUNT.size + inner_len
        records = pickle.loads(payload[inner_end:])
        if _SINK is not None:
            _SINK(records)
        return decode(payload[1 + _HEAD_COUNT.size:inner_end])
    raise ValueError(f"unknown wire tag {tag!r}")


def _frame_tag(payload):
    """The accounting tag of a frame: the inner tag for envelopes."""
    tag = payload[:1]
    if tag == b"T":
        offset = 1 + _HEAD_COUNT.size
        return payload[offset:offset + 1].decode()
    return tag.decode()


def send(conn, message, piggyback=False):
    """Encode and ship one message on a multiprocessing Connection.

    With a probe installed and ``piggyback=True`` (upward replies
    only: worker -> relay -> coordinator), the frame travels inside a
    ``T`` envelope carrying this process's probe flush plus any
    buffered child records — telemetry rides existing replies, never
    its own round-trips.
    """
    probe = _PROBE
    if probe is None:
        conn.send_bytes(encode(message))
        return
    began = time.perf_counter()
    payload = encode(message)
    tag = payload[:1].decode()
    if piggyback:
        records = _SINK.drain() if hasattr(_SINK, "drain") else []
        records.append(probe.flush())
        payload = b"".join((
            b"T", _HEAD_COUNT.pack(len(payload)), payload,
            pickle.dumps(records, protocol=pickle.HIGHEST_PROTOCOL),
        ))
    conn.send_bytes(payload)
    probe.wire.note_tx(tag, len(payload))
    probe.lap("ipc_send", began)


def recv(conn):
    """Receive and decode one message from a Connection.

    Blocking time belongs to the caller (barrier wait); only the
    decode — envelope stripping included — counts as ``ipc_recv``.
    """
    payload = conn.recv_bytes()
    probe = _PROBE
    if probe is None:
        return decode(payload)
    began = time.perf_counter()
    message = decode(payload)
    probe.wire.note_rx(_frame_tag(payload), len(payload))
    probe.lap("ipc_recv", began)
    return message
