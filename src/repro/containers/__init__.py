"""Container stack: engine, runtime, network namespaces, CNI plugins.

The left half of Fig. 4: Containerd creates the cgroup and network
namespace, invokes the CNI plugin to configure the VF (or software
device), and hands off to the Kata runtime, which builds the microVM,
boots the guest, and (a)synchronously initializes the network
interface.  The :mod:`~repro.containers.orchestrator` launches many
containers concurrently and collects :class:`StartupRecord`\\ s, which
is the measurement loop behind every figure in the paper.
"""

from repro.containers.cni import (
    CniPlugin,
    IpvtapCni,
    NetworkAttachment,
    NoNetworkCni,
    SriovCni,
)
from repro.containers.engine import Containerd, ContainerRequest
from repro.containers.nns import NetworkNamespace
from repro.containers.orchestrator import LaunchResult, Orchestrator
from repro.containers.runtime import KataRuntime

__all__ = [
    "CniPlugin",
    "Containerd",
    "ContainerRequest",
    "IpvtapCni",
    "KataRuntime",
    "LaunchResult",
    "NetworkAttachment",
    "NetworkNamespace",
    "NoNetworkCni",
    "Orchestrator",
    "SriovCni",
]
