"""CNI plugins: no-network, SR-IOV (vanilla / fixed / FastIOV), IPvtap."""

from repro.containers.cni.base import CniPlugin, NetworkAttachment
from repro.containers.cni.ipvtap import IpvtapCni
from repro.containers.cni.none import NoNetworkCni
from repro.containers.cni.sriov import SriovCni

__all__ = [
    "CniPlugin",
    "IpvtapCni",
    "NetworkAttachment",
    "NoNetworkCni",
    "SriovCni",
]
