"""CNI plugin interface and the attachment handed to the runtime."""

from repro.oskernel.vfio import EAGER_ZEROING
from repro.virt.hypervisor import VirtNetworkPlan


class NetworkAttachment:
    """What the CNI produced for one container.

    Carries the allocated VF (if any), the host-side interface placed in
    the container NNS (dummy/ipvtap/VF netdev), the IP configuration,
    and the :class:`VirtNetworkPlan` the runtime must apply when
    building the microVM.
    """

    def __init__(self, plan, vf=None, netdev=None, ip_address=None):
        self.plan = plan
        self.vf = vf
        self.netdev = netdev
        self.ip_address = ip_address

    @property
    def has_network(self):
        return self.vf is not None or self.netdev is not None

    def __repr__(self):
        return (
            f"<NetworkAttachment vf={getattr(self.vf, 'bdf', None)} "
            f"netdev={getattr(self.netdev, 'name', None)} ip={self.ip_address}>"
        )


class CniPlugin:
    """Base class for CNI plugins.

    Subclasses implement :meth:`setup_network` / :meth:`teardown_network`
    as generators yielding sim commands (they run inside the container
    startup pipeline and are timed by the engine's ``cni`` step).
    """

    name = "base"

    def __init__(self, host):
        self._host = host
        self._ip_counter = 0

    def next_ip(self):
        self._ip_counter += 1
        return f"10.0.{self._ip_counter // 256}.{self._ip_counter % 256}/16"

    def setup_network(self, container, timer):
        raise NotImplementedError

    def teardown_network(self, container, attachment):
        raise NotImplementedError

    @staticmethod
    def no_network_plan():
        return VirtNetworkPlan(passthrough=False)

    @staticmethod
    def eager_plan(vf):
        return VirtNetworkPlan(
            passthrough=True, vf=vf, zeroing_policy=EAGER_ZEROING
        )
