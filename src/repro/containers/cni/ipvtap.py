"""The IPvtap software CNI (§6.4's comparison point).

Emulates the microVM's NIC in software: an ipvtap device is created on
the host (heavy RTNL-lock holds), wired into the container NNS, and the
hypervisor runs a virtio-net backend for it (CPU cost at attach).  No
passthrough setup is needed — but data-plane performance is far worse,
and `addCNI` + cgroup contention dominate startup at high concurrency.
"""

from repro.containers.cni.base import CniPlugin, NetworkAttachment
from repro.sim.core import Timeout


class IpvtapCni(CniPlugin):
    """Basic software CNI with ipvtap devices."""

    name = "ipvtap"

    def __init__(self, host):
        super().__init__(host)
        self._mac_counter = 0

    def setup_network(self, container, timer):
        host = self._host
        spec = host.spec
        yield Timeout(spec.cni_invoke_base_s)
        with timer.step("addCNI"):
            netdev = yield from host.hostnet.create_device(
                f"ipvtap-{container.name}", "ipvtap"
            )
            self._mac_counter += 1
            yield from host.hostnet.configure(
                netdev,
                ip_address=self.next_ip(),
                mac=f"02:11:00:00:{self._mac_counter // 256:02x}:"
                    f"{self._mac_counter % 256:02x}",
                up=True,
            )
            yield from host.hostnet.move_to_nns(netdev, container.nns.name)
            container.nns.add_interface(netdev)
            # virtio-net backend setup in the hypervisor.
            yield host.cpu.work(spec.ipvtap_backend_cpu_s)
        return NetworkAttachment(
            plan=self.no_network_plan(), netdev=netdev,
            ip_address=netdev.ip_address,
        )

    def teardown_network(self, container, attachment):
        yield from self._host.hostnet.delete_device(attachment.netdev.name)
