"""The no-network baseline (the paper's *No-Net* lower bound)."""

from repro.containers.cni.base import CniPlugin, NetworkAttachment


class NoNetworkCni(CniPlugin):
    """Starts containers without any network device.

    Represents the lower bound for network-startup optimization
    (Fig. 11's *No-Net* bar): the pipeline still pays cgroups, NNS,
    microVM creation, virtioFS, and guest boot.
    """

    name = "no-network"

    def setup_network(self, container, timer):
        return NetworkAttachment(plan=self.no_network_plan())
        yield  # pragma: no cover - generator protocol

    def teardown_network(self, container, attachment):
        return
        yield  # pragma: no cover - generator protocol
