"""The SR-IOV CNI plugin, in its three incarnations.

* **True vanilla** (``rebind_flaw=True``): the upstream plugin's flow
  (§5): bind the VF to the host network driver to obtain a netdev,
  configure it, move it to the container NNS — and leave the runtime to
  unbind/rebind vfio-pci afterwards.  This is the configuration that
  takes minutes at concurrency 200.
* **Fixed vanilla** (``rebind_flaw=False``, no FastIOV flags): VFs are
  pre-bound to vfio-pci once at host boot; the plugin creates a cheap
  *dummy* netdev that carries the IP configuration and identifies the
  VF to the Kata runtime.  This is the baseline used throughout the
  paper's evaluation.
* **FastIOV**: same plugin flow as fixed vanilla, with the kernel/
  hypervisor optimizations selected through the attachment's
  :class:`VirtNetworkPlan` (decoupled zeroing, image-mapping skip) and
  the host's lock policy / runtime asynchrony chosen at host build
  time.
"""

from repro.containers.cni.base import CniPlugin, NetworkAttachment
from repro.oskernel.binding import HOST_NETDEV_DRIVER
from repro.oskernel.vfio import (
    VFIO_DRIVER_NAME,
    ZeroingMode,
    ZeroingPolicy,
)
from repro.sim.core import Timeout
from repro.virt.hypervisor import VirtNetworkPlan


class VfPoolExhausted(Exception):
    """No free VF remains for a new container."""


class SriovCni(CniPlugin):
    """SR-IOV CNI plugin with a VF pool."""

    name = "sriov"

    def __init__(
        self,
        host,
        rebind_flaw=False,
        decoupled_zeroing=False,
        prezeroed_fraction=0.0,
        skip_image_mapping=False,
        use_instant_zeroing_list=True,
        proactive_virtio_faults=True,
        vdpa=False,
        deferred_mapping=False,
    ):
        super().__init__(host)
        self.rebind_flaw = rebind_flaw
        self.vdpa = vdpa
        self.deferred_mapping = deferred_mapping
        self._zeroing_policy = ZeroingPolicy(
            mode=(
                ZeroingMode.DECOUPLED if decoupled_zeroing else ZeroingMode.EAGER
            ),
            prezeroed_fraction=prezeroed_fraction,
        )
        self._skip_image_mapping = skip_image_mapping
        self._use_instant_zeroing_list = use_instant_zeroing_list
        self._proactive_virtio_faults = proactive_virtio_faults
        self._free_vfs = list(host.nic.pf.vfs)
        self._mac_counter = 0

    # ------------------------------------------------------------------
    # VF pool
    # ------------------------------------------------------------------
    def allocate_vf(self):
        if not self._free_vfs:
            raise VfPoolExhausted(
                f"all {len(self._host.nic.pf.vfs)} VFs are in use"
            )
        return self._free_vfs.pop(0)

    def release_vf(self, vf):
        self._free_vfs.append(vf)

    @property
    def free_vf_count(self):
        return len(self._free_vfs)

    def _next_mac(self):
        self._mac_counter += 1
        return f"02:00:00:00:{self._mac_counter // 256:02x}:{self._mac_counter % 256:02x}"

    # ------------------------------------------------------------------
    # setup (t_config in Fig. 4)
    # ------------------------------------------------------------------
    def setup_network(self, container, timer):
        host = self._host
        spec = host.spec
        vf = self.allocate_vf()
        mac = self._next_mac()
        ip = self.next_ip()
        yield Timeout(spec.cni_invoke_base_s)
        # Set VF parameters through the PF driver.
        yield Timeout(spec.pf_configure_vf_s)
        host.nic.pf.configure_vf(vf, mac=mac)

        if self.rebind_flaw:
            # Upstream flow: VF must present a host netdev, so bind the
            # host network driver (expensive, PF-mailbox-serialized).
            if vf.driver == VFIO_DRIVER_NAME:
                with timer.step("unbind-vfio"):
                    yield from host.binding.unbind(vf)
            with timer.step("bind-host-driver"):
                yield from host.binding.bind(vf, HOST_NETDEV_DRIVER)
            netdev = yield from host.hostnet.create_device(
                f"vfnet-{container.name}", "dummy"
            )
            netdev.kind = "vf-netdev"
        else:
            # Fixed flow (§5): VFs stay bound to vfio-pci; a dummy
            # interface carries identification + IP configuration.
            netdev = yield from host.hostnet.create_device(
                f"dummy-{container.name}", "dummy"
            )
        yield from host.hostnet.configure(netdev, ip_address=ip, mac=mac, up=True)
        yield from host.hostnet.move_to_nns(netdev, container.nns.name)
        container.nns.add_interface(netdev)

        plan = VirtNetworkPlan(
            passthrough=True,
            vf=vf,
            zeroing_policy=self._zeroing_policy,
            skip_image_mapping=self._skip_image_mapping,
            use_instant_zeroing_list=self._use_instant_zeroing_list,
            proactive_virtio_faults=self._proactive_virtio_faults,
            vdpa=self.vdpa,
            deferred_mapping=self.deferred_mapping,
        )
        return NetworkAttachment(plan=plan, vf=vf, netdev=netdev, ip_address=ip)

    def teardown_network(self, container, attachment):
        host = self._host
        yield from host.hostnet.delete_device(attachment.netdev.name)
        if self.rebind_flaw and attachment.vf.driver == HOST_NETDEV_DRIVER:
            yield from host.binding.unbind(attachment.vf)
            yield from host.binding.bind(attachment.vf, VFIO_DRIVER_NAME)
        self.release_vf(attachment.vf)
