"""The container engine (Containerd): the end-to-end startup pipeline.

One :meth:`Containerd.run_container` call is one horizontal line of
Fig. 5: cgroup creation, NNS creation, CNI invocation, runtime sandbox
creation, and (optionally) the serverless application, with every stage
timed into the container's :class:`StartupRecord`.
"""

from repro.containers.nns import NetworkNamespace
from repro.metrics.timeline import StepTimer
from repro.sim.core import Timeout


class ContainerRequest:
    """Parameters of one container invocation."""

    def __init__(self, name, memory_bytes=None, app=None, softcni=False):
        self.name = name
        self.memory_bytes = memory_bytes
        self.app = app
        self.softcni = softcni

    def __repr__(self):
        return (
            f"<ContainerRequest {self.name} "
            f"mem={self.memory_bytes} app={getattr(self.app, 'name', None)}>"
        )


class Container:
    """Runtime state of one container."""

    def __init__(self, request):
        self.name = request.name
        self.request = request
        self.memory_bytes = request.memory_bytes
        self.nns = None
        self.attachment = None
        self.microvm = None

    def __repr__(self):
        return f"<Container {self.name}>"


class Containerd:
    """The container engine driving the full pipeline."""

    def __init__(self, host, cni, runtime):
        from repro.sim.sync import Mutex

        self._host = host
        self.cni = cni
        self.runtime = runtime
        self.containers = {}
        #: Containerd's sandbox-store critical section [42].
        self._store_mutex = Mutex(host.sim, name="containerd-store")

    def run_container(self, request, record):
        """The end-to-end startup (and app) pipeline for one container.

        Generator suitable for ``sim.spawn``; fills ``record`` with
        per-step spans, ``t_ready`` at startup completion, and (when an
        app is given) ``t_app_done`` at task completion (§6.6).
        """
        host = self._host
        spec = host.spec
        if request.memory_bytes is None:
            request.memory_bytes = spec.default_vm_memory_bytes
        container = Container(request)
        self.containers[request.name] = container
        timer = StepTimer(host.sim, record, trace=host.trace,
                          probe_owner=host.name)
        timer.mark_start()
        try:
            with timer.step("engine-store"):
                yield self._store_mutex.acquire()
                try:
                    yield Timeout(spec.engine_serialized_s)
                finally:
                    self._store_mutex.release()
            with timer.step("0-cgroup"):
                yield from host.cgroups.create(
                    request.name, softcni=request.softcni
                )
            with timer.step("nns-create"):
                yield Timeout(spec.nns_create_s)
                container.nns = NetworkNamespace(f"nns-{request.name}")
            with timer.step("cni"):
                container.attachment = yield from self.cni.setup_network(
                    container, timer
                )
            yield from self.runtime.create_sandbox(
                container, container.attachment, timer
            )
            timer.mark_ready()
            if request.app is not None:
                yield from self.runtime.launch_app(container, request.app, timer)
        except Exception as exc:
            record.failed = repr(exc)
            raise
        return container

    def remove_container(self, name):
        """Tear the container down and recycle its resources."""
        container = self.containers.pop(name)
        yield from self.runtime.destroy_sandbox(container)
        if container.attachment is not None and container.attachment.has_network:
            yield from self.cni.teardown_network(container, container.attachment)
        yield from self._host.cgroups.destroy(name)

    def __repr__(self):
        return f"<Containerd containers={len(self.containers)} cni={self.cni.name}>"
