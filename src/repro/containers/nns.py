"""Container network namespaces."""


class NetworkNamespace:
    """One container's isolated network namespace."""

    def __init__(self, name):
        self.name = name
        self.interfaces = {}

    def add_interface(self, device):
        self.interfaces[device.name] = device

    def find_interface_by_kind(self, kind):
        for device in self.interfaces.values():
            if device.kind == kind:
                return device
        return None

    def __repr__(self):
        return f"<NetworkNamespace {self.name} ifaces={list(self.interfaces)}>"
