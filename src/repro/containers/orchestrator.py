"""Concurrent container launches and result collection.

The measurement loop of §3.1: ``crictl``-style concurrent invocation of
N secure containers, returning every container's
:class:`~repro.metrics.timeline.StartupRecord` plus host-level
telemetry (lock contention, CPU utilization) for bottleneck analysis.
"""

from repro.metrics.stats import Distribution
from repro.metrics.timeline import StartupRecord
from repro.sim.core import Timeout


class LaunchResult:
    """Everything one concurrent-launch experiment produced."""

    def __init__(self, records, host):
        self.records = records
        self.host = host

    # ------------------------------------------------------------------
    # distributions
    # ------------------------------------------------------------------
    def startup_times(self, label=""):
        return Distribution(
            [record.startup_time for record in self.records], label=label
        )

    def task_completion_times(self, label=""):
        return Distribution(
            [record.task_completion_time for record in self.records], label=label
        )

    def step_times(self, step):
        return [record.step_time(step) for record in self.records]

    def mean_step_time(self, step):
        times = self.step_times(step)
        return sum(times) / len(times)

    def vf_related_times(self):
        return [record.vf_related_time() for record in self.records]

    def __repr__(self):
        return f"<LaunchResult n={len(self.records)}>"


class Orchestrator:
    """Launches containers concurrently on one host."""

    def __init__(self, host, engine):
        self._host = host
        self.engine = engine

    def launch(
        self,
        count,
        memory_bytes=None,
        app_factory=None,
        arrival_spacing_s=0.0,
        name_prefix="c",
        run=True,
    ):
        """Start ``count`` containers concurrently; return LaunchResult.

        Args:
            count: Concurrency level (10–200 in the paper).
            memory_bytes: Per-container memory (None = spec default).
            app_factory: Optional ``(index) -> app`` for §6.6 workloads.
            arrival_spacing_s: Inter-arrival gap (0 = simultaneous burst,
                matching the paper's near-simultaneous invocations).
            run: Execute the simulation before returning (set False to
                compose with other processes first).
        """
        from repro.containers.engine import ContainerRequest

        host = self._host
        records = []
        softcni = self.engine.cni.name == "ipvtap"
        for index in range(count):
            name = f"{name_prefix}{index}"
            record = StartupRecord(name)
            records.append(record)
            request = ContainerRequest(
                name,
                memory_bytes=memory_bytes,
                app=app_factory(index) if app_factory else None,
                softcni=softcni,
            )
            delay = arrival_spacing_s * index

            def flow(request=request, record=record, delay=delay):
                if delay:
                    yield Timeout(delay)
                yield from self.engine.run_container(request, record)

            host.sim.spawn(flow(), name=f"launch-{name}")
        if run:
            host.sim.run()
        return LaunchResult(records, host)

    def __repr__(self):
        return f"<Orchestrator engine={self.engine!r}>"
