"""The Kata runtime: builds the sandbox microVM and launches the app.

Owns two FastIOV-relevant decisions:

* the **rebind fix** — with the upstream plugin flaw active, the
  runtime must unbind the VF from the host driver and rebind vfio-pci
  at every launch (the dashed boxes of Fig. 4);
* **asynchronous VF driver initialization** (§4.2.2) — with
  ``async_vf_init`` the guest-side interface bring-up is spawned as a
  separate process that overlaps container-image transfer and process
  creation, and the agent polls readiness just before app exec.
"""

from repro.oskernel.binding import HOST_NETDEV_DRIVER
from repro.oskernel.vfio import VFIO_DRIVER_NAME
from repro.sim.core import Timeout


class KataRuntime:
    """Secure-container runtime (Kata-style, microVM-based)."""

    def __init__(self, host, async_vf_init=False):
        self._host = host
        self.async_vf_init = async_vf_init
        self.sandboxes_created = 0

    # ------------------------------------------------------------------
    # sandbox creation (t_attach in Fig. 4)
    # ------------------------------------------------------------------
    def create_sandbox(self, container, attachment, timer):
        """Build the microVM, boot the guest, bring up networking."""
        host = self._host
        spec = host.spec
        plan = attachment.plan

        if plan.passthrough:
            # Detect the VF via the interface the CNI left in the NNS.
            yield Timeout(spec.runtime_vf_detect_s)
            if attachment.vf.driver == HOST_NETDEV_DRIVER:
                # Upstream flaw: rebind to vfio-pci for passthrough.
                with timer.step("unbind-host-driver"):
                    yield from host.binding.unbind(attachment.vf)
                with timer.step("bind-vfio"):
                    yield from host.binding.bind(attachment.vf, VFIO_DRIVER_NAME)
            elif attachment.vf.driver != VFIO_DRIVER_NAME:
                raise RuntimeError(
                    f"VF {attachment.vf.bdf} bound to {attachment.vf.driver!r}; "
                    f"cannot attach"
                )

        # virtiofsd is spawned before the VM (Kata ordering); its
        # shared-state registration is host-serialized.
        yield from host.hypervisor.spawn_virtiofsd(timer)

        microvm = yield from host.hypervisor.create_microvm(
            container.name, container.memory_bytes, plan, timer
        )
        container.microvm = microvm

        yield from microvm.guest.boot(timer)

        if plan.passthrough:
            if plan.vdpa:
                init = microvm.guest.vdpa_nic_init(timer)
            else:
                init = microvm.guest.vf_driver_init(timer)
            if self.async_vf_init:
                # §4.2.2: overlap interface bring-up with the rest of
                # the launch; the agent polls readiness before app exec.
                host.sim.spawn(
                    init, name=f"{container.name}-vf-init", daemon=True
                )
            else:
                yield from init
        elif attachment.has_network:
            yield from microvm.guest.virtual_nic_init()

        with timer.step("agent-start"):
            yield Timeout(spec.agent_start_s)
        yield Timeout(spec.sandbox_finalize_s)
        self.sandboxes_created += 1
        return microvm

    # ------------------------------------------------------------------
    # application launch (§4.2.2's masking window)
    # ------------------------------------------------------------------
    def launch_app(self, container, app, timer):
        """Pull the container image, create the process, run the app.

        The network-readiness poll sits between process creation and
        app execution, exactly where FastIOV's agent checks it.
        """
        host = self._host
        spec = host.spec
        microvm = container.microvm
        with timer.step("app-image-transfer"):
            yield from microvm.virtiofs.guest_read_file(
                f"image:{app.name}", spec.container_image_bytes
            )
        with timer.step("app-create"):
            yield Timeout(spec.app_create_process_s)
            yield host.cpu.work(spec.app_create_cpu_s)
        if container.attachment.has_network:
            with timer.step("net-ready-wait"):
                yield from microvm.guest.wait_network_ready()
        with timer.step("app-run"):
            yield from app.run(container, host)
        timer.mark_app_done()

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def destroy_sandbox(self, container):
        if container.microvm is not None:
            yield from self._host.hypervisor.destroy_microvm(container.microvm)
            container.microvm = None

    def __repr__(self):
        return (
            f"<KataRuntime sandboxes={self.sandboxes_created} "
            f"async_vf_init={self.async_vf_init}>"
        )
