"""FastIOV as a library: solution configs, presets, host assembly.

This is the package downstream users interact with::

    from repro.core import build_host

    host = build_host("fastiov", concurrency=200)
    result = host.orchestrator.launch(200)
    print(result.startup_times().mean)

Presets mirror the paper's evaluation matrix (§6.1): ``no-net``,
``vanilla`` (fixed SR-IOV CNI), ``true-vanilla`` (with the §5 rebinding
flaw), ``fastiov`` and its four ablation variants ``fastiov-l/a/s/d``,
the pre-zeroing baselines ``pre10/50/100``, and the ``ipvtap`` software
CNI.
"""

from repro.core.config import SolutionConfig
from repro.core.host import Host, build_host
from repro.core.presets import PRESETS, get_preset

__all__ = ["Host", "PRESETS", "SolutionConfig", "build_host", "get_preset"]
