"""Solution configuration: which optimizations are enabled.

One :class:`SolutionConfig` fully determines a host's network solution:
the CNI type, the VFIO devset lock policy, the DMA zeroing strategy,
image-mapping skip, and VF-driver-init scheduling.  The paper's
evaluation presets (:mod:`repro.core.presets`) are instances of this.
"""

import dataclasses

_NETWORKS = ("none", "sriov", "ipvtap")


@dataclasses.dataclass(frozen=True)
class SolutionConfig:
    """A complete network-solution configuration for one host."""

    name: str
    description: str = ""
    #: CNI family: "none", "sriov", or "ipvtap".
    network: str = "sriov"

    # -- FastIOV's four optimizations (§4.1) ---------------------------
    #: L: hierarchical devset lock instead of the global mutex (§4.2.1).
    lock_decomposition: bool = False
    #: A: VF driver init overlapped with app launch (§4.2.2).
    async_vf_init: bool = False
    #: S: skip DMA mapping of the microVM image region (§4.3.1).
    skip_image_mapping: bool = False
    #: D: decoupled (lazy) page zeroing via fastiovd (§4.3.2).
    decoupled_zeroing: bool = False

    # -- baselines ------------------------------------------------------
    #: HawkEye-style idle-time pre-zeroing fraction (Pre10/50/100).
    prezeroed_fraction: float = 0.0
    #: §5 upstream SR-IOV CNI rebinding flaw (true vanilla).
    rebind_flaw: bool = False
    #: §7 future work: vDPA — hardware data plane through the VF, but
    #: the guest drives it with the standard virtio driver, so there is
    #: no vendor VF driver to initialize (and no driver changes needed
    #: for lazy zeroing: the virtio frontend's proactive faults cover
    #: device-first-write buffers).
    vdpa: bool = False
    #: §8 related-work baseline: vIOMMU/coIOMMU-style *deferred DMA
    #: mapping* — no up-front pin/map/zero; guest memory is demand-paged
    #: and pages are mapped into the IOMMU only when DMA first targets
    #: them (requires an IOMMU emulation layer and couples with memory
    #: overcommitment, which is the paper's argument for decoupling
    #: zeroing instead).
    deferred_mapping: bool = False

    # -- failure-injection knobs (correctness experiments) --------------
    use_instant_zeroing_list: bool = True
    proactive_virtio_faults: bool = True

    def __post_init__(self):
        if self.network not in _NETWORKS:
            raise ValueError(
                f"network must be one of {_NETWORKS}, got {self.network!r}"
            )
        if not 0.0 <= self.prezeroed_fraction <= 1.0:
            raise ValueError(
                f"prezeroed_fraction must be in [0, 1], "
                f"got {self.prezeroed_fraction}"
            )
        if self.network != "sriov":
            enabled = [
                flag
                for flag in (
                    "lock_decomposition",
                    "async_vf_init",
                    "skip_image_mapping",
                    "decoupled_zeroing",
                    "rebind_flaw",
                    "vdpa",
                    "deferred_mapping",
                )
                if getattr(self, flag)
            ]
            if enabled:
                raise ValueError(
                    f"{self.name!r}: flags {enabled} require network='sriov'"
                )
        if self.deferred_mapping and self.decoupled_zeroing:
            raise ValueError(
                f"{self.name!r}: deferred mapping already defers zeroing "
                f"(demand paging); decoupled_zeroing is redundant"
            )

    @property
    def needs_fastiovd(self):
        """The kernel module is loaded only for decoupled zeroing."""
        return self.decoupled_zeroing

    @property
    def is_passthrough(self):
        return self.network == "sriov"

    def derive(self, **overrides):
        """Copy with fields replaced (for ablations/injections)."""
        return dataclasses.replace(self, **overrides)

    def optimization_flags(self):
        """The L/A/S/D vector, for reporting."""
        return {
            "L": self.lock_decomposition,
            "A": self.async_vf_init,
            "S": self.skip_image_mapping,
            "D": self.decoupled_zeroing,
        }
