"""Host assembly: build a fully wired simulated server for one preset.

Reproduces the testbed of §3.1: hardware (CPU socket, physical memory,
PCI topology, SR-IOV NIC with pre-created VFs), the kernel substrate
(VFIO with the configured lock policy, KVM, MMU, cgroups, binding,
host network stack, optionally fastiovd), the hypervisor, the selected
CNI plugin, the Kata runtime, the container engine, and the
orchestrator.  A second "storage server" is modeled as a fair-shared
network link (two-server setup of §6.1).
"""

from repro.containers.cni import IpvtapCni, NoNetworkCni, SriovCni
from repro.containers.engine import Containerd
from repro.containers.orchestrator import Orchestrator
from repro.containers.runtime import KataRuntime
from repro.core.presets import get_preset
from repro.hw.iommu import IOMMU
from repro.hw.memory import PhysicalMemory
from repro.hw.nic import SriovNic
from repro.hw.pci import PciDevice, PciTopology
from repro.oskernel.binding import DriverRegistry
from repro.oskernel.cgroup import CgroupManager
from repro.oskernel.fastiovd import Fastiovd
from repro.oskernel.hostnet import HostNetworkStack
from repro.oskernel.kvm import KVM
from repro.oskernel.locks import CoarseLockPolicy, HierarchicalLockPolicy
from repro.oskernel.mmu import HostMMU
from repro.oskernel.vfio import VFIO_DRIVER_NAME, VfioDriver
from repro.sim.core import Simulator
from repro.sim.cpu import FairShareCPU
from repro.sim.rng import Jitter
from repro.spec import PAPER_TESTBED
from repro.virt.hypervisor import Hypervisor

NIC_BUS = 0x3B


class Host:
    """One fully assembled simulated server."""

    def __init__(self, config, spec=None, seed=0, vf_count=None,
                 sim=None, name="host", trace=None, ticker=None):
        """Args:
        config: A :class:`SolutionConfig` (or preset name via
            :func:`build_host`).
        spec: Host cost constants; defaults to the paper testbed.
        seed: Jitter seed; every run with the same (config, spec,
            seed) is bit-identical.
        vf_count: VFs to pre-create (defaults to the NIC maximum,
            256 on the modeled E810).
        sim: Optional shared :class:`Simulator`.  A cluster passes one
            simulator to all of its hosts so they advance on a single
            virtual timeline; standalone hosts build their own.
        name: Diagnostic name (distinguishes hosts within a cluster).
        trace: Optional :class:`repro.obs.recorder.TraceRecorder`.
            Binds to the host's simulator, host-prefixes every lock
            track, and registers the host's pull probes (CPU runnable
            jobs, EPT faults, bytes zeroed, fastiovd backlog).  Tracing
            never changes simulation results.
        ticker: Optional :class:`repro.sim.ticker.DaemonTicker` shared
            across a cluster cell; the host's fastiovd scanner parks on
            it instead of arming a private timer per scan interval.
            Standalone hosts leave it None (one host gains nothing from
            aggregation).
        """
        self.config = config
        self.spec = spec if spec is not None else PAPER_TESTBED
        self.seed = seed
        self.name = name
        spec = self.spec

        # -- simulation substrate --------------------------------------
        #: Whether this host built (and therefore owns) its simulator —
        #: engine-level statistics are attributed to the owner only, so
        #: cluster hosts sharing one simulator never double-report.
        self.owns_sim = sim is None
        self.sim = (
            sim
            if sim is not None
            else Simulator(bucket_width=spec.timer_wheel_width())
        )
        self.trace = trace
        if trace is not None:
            trace.bind(self.sim)
        self.jitter = Jitter(seed)
        self.cpu = FairShareCPU(self.sim, cores=spec.cores, name="host-cpu")
        #: The storage-server link: fair-shared among concurrent
        #: downloads (one "core" = the full link).
        self.storage_link = FairShareCPU(self.sim, cores=1, name="storage-link")
        #: Memory-controller write bandwidth for bulk zeroing: up to
        #: ``dram_channels`` streams at full per-stream rate, shared
        #: beyond that.
        self.dram = FairShareCPU(
            self.sim, cores=spec.dram_channels, name="dram-bandwidth"
        )

        # -- hardware ---------------------------------------------------
        self.memory = PhysicalMemory(spec.memory_bytes, spec.page_size)
        self.iommu = IOMMU()
        self.topology = PciTopology()
        self.topology.add_bus(NIC_BUS)
        self.nic = SriovNic(
            model=spec.nic_model,
            max_vfs=spec.nic_max_vfs,
            bandwidth_gbps=spec.nic_bandwidth_gbps,
            topology=self.topology,
            bus_number=NIC_BUS,
            pf_bdf="3b:00.0",
        )
        for index in range(spec.pci_extra_devices):
            # Device numbers above the VF range (VFs occupy 01..20).
            self.topology.attach(
                NIC_BUS, PciDevice(f"3b:40.{index}", f"bridge-{index}")
            )
        if vf_count is None:
            vf_count = spec.nic_max_vfs
        self.vfs = self.nic.pf.create_vfs(vf_count, self.topology, NIC_BUS)

        # -- kernel substrate --------------------------------------------
        self.fastiovd = (
            Fastiovd(self.sim, self.cpu, spec, dram=self.dram,
                     name=f"{name}-fastiovd", ticker=ticker)
            if config.needs_fastiovd
            else None
        )
        lock_factory = (
            HierarchicalLockPolicy
            if config.lock_decomposition
            else CoarseLockPolicy
        )
        self.vfio = VfioDriver(
            self.sim, self.cpu, self.memory, self.iommu, spec,
            lock_policy_factory=lock_factory, jitter=self.jitter,
            fastiovd=self.fastiovd, dram=self.dram,
        )
        self.kvm = KVM(self.sim, self.cpu, spec, fastiovd=self.fastiovd)
        self.mmu = HostMMU(self.sim, self.cpu, self.memory, spec, dram=self.dram)
        self.binding = DriverRegistry(self.sim, spec, self.jitter, self.vfio)
        self.cgroups = CgroupManager(self.sim, spec, self.jitter, cpu=self.cpu)
        self.hostnet = HostNetworkStack(self.sim, spec, self.jitter)
        self.hypervisor = Hypervisor(
            self.sim, self.cpu, self.kvm, self.vfio, self.mmu, spec,
            self.jitter, fastiovd=self.fastiovd,
            pf_mailbox=self.binding.pf_mailbox,
        )

        # -- boot-time VF binding ----------------------------------------
        if config.is_passthrough and not config.rebind_flaw:
            # §5 fix: bind every VF to vfio-pci exactly once after the
            # server boots; this one-time cost is outside the startup
            # path (like VF pre-creation, §2.3).
            for vf in self.vfs:
                vf.driver = VFIO_DRIVER_NAME
                self.vfio.register_device(vf)

        # -- container stack ----------------------------------------------
        self.cni = self._build_cni(config)
        self.runtime = KataRuntime(self, async_vf_init=config.async_vf_init)
        self.engine = Containerd(self, self.cni, self.runtime)
        self.orchestrator = Orchestrator(self, self.engine)

        if trace is not None:
            self._wire_trace(trace)

    def _build_cni(self, config):
        if config.network == "none":
            return NoNetworkCni(self)
        if config.network == "ipvtap":
            return IpvtapCni(self)
        return SriovCni(
            self,
            rebind_flaw=config.rebind_flaw,
            decoupled_zeroing=config.decoupled_zeroing,
            prezeroed_fraction=config.prezeroed_fraction,
            skip_image_mapping=config.skip_image_mapping,
            use_instant_zeroing_list=config.use_instant_zeroing_list,
            proactive_virtio_faults=config.proactive_virtio_faults,
            vdpa=config.vdpa,
            deferred_mapping=config.deferred_mapping,
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _host_primitives(self):
        """The host-global sync primitives worth trace scoping."""
        return (
            self.cgroups._mutex,
            self.hostnet.rtnl,
            self.binding._pf_mailbox,
            self.hypervisor._virtiofs_mutex,
            self.engine._store_mutex,
        )

    def _wire_trace(self, trace):
        """Scope lock tracks to this host and register its pull probes."""
        scope = f"{self.name}/"
        for primitive in self._host_primitives():
            primitive.trace_scope = scope
        for devset in self.vfio._devsets.values():
            devset.lock.set_trace_scope(scope)
        owner = self.name
        self.vfio.probe_owner = owner
        trace.add_probe(owner, f"{owner}/cpu", "runnable",
                        lambda: self.cpu.runnable_jobs)
        trace.add_probe(owner, f"{owner}/kvm", "ept_faults",
                        lambda: self.kvm.ept_faults_serviced)
        trace.add_probe(owner, f"{owner}/vfio", "bytes_zeroed",
                        lambda: self.vfio.bytes_zeroed_total)
        fastiovd = self.fastiovd
        if fastiovd is not None:
            fastiovd.probe_owner = owner
            trace.add_probe(owner, f"{owner}/fastiovd", "pending_bytes",
                            fastiovd.pending_bytes)
            trace.add_probe(
                owner, f"{owner}/fastiovd", "background_zeroed_pages",
                lambda: fastiovd.stats.background_zeroed_pages)
            trace.add_probe(
                owner, f"{owner}/fastiovd", "fault_zeroed_pages",
                lambda: fastiovd.stats.fault_zeroed_pages)

    def finalize_trace(self):
        """Fold the host's ad-hoc statistics into the trace registry.

        Call after the simulation ran.  Lock contention stats become
        ``lock/<host>/<name>/*`` counters; CPU utilization a gauge;
        timing-wheel statistics fold in only for the simulator's owner
        (cluster hosts share one simulator).
        """
        trace = self.trace
        if trace is None:
            return
        registry = trace.registry
        scope = f"{self.name}/"
        for primitive in self._host_primitives():
            registry.ingest_lock_stats(scope + primitive.name,
                                       primitive.stats)
        for devset in self.vfio._devsets.values():
            for lock_name, stats in devset.lock.contention_stats.items():
                registry.ingest_lock_stats(
                    f"{scope}{devset.name}/{lock_name}", stats
                )
        registry.inc(f"{scope}vfio/bytes_zeroed_total",
                     self.vfio.bytes_zeroed_total)
        registry.set_gauge(f"{scope}cpu-utilization",
                           self.cpu.utilization())
        if self.owns_sim:
            registry.ingest_wheel_stats(self.sim.wheel_stats())

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def launch(self, count, **kwargs):
        """Shortcut for ``host.orchestrator.launch``."""
        return self.orchestrator.launch(count, **kwargs)

    def contention_report(self):
        """Host-wide lock/CPU telemetry for bottleneck analysis."""
        report = {
            "cgroup-mutex": self.cgroups.lock_stats,
            "rtnl": self.hostnet.rtnl_stats,
            "pf-mailbox": self.binding.mailbox_stats,
            "cpu-utilization": self.cpu.utilization(),
        }
        for devset in self.vfio._devsets.values():
            for lock_name, stats in devset.lock.contention_stats.items():
                report[f"{devset.name}/{lock_name}"] = stats
        return report

    def __repr__(self):
        return (
            f"<Host {self.name} config={self.config.name!r} seed={self.seed}>"
        )


def build_host(preset_or_config, spec=None, seed=0, vf_count=None,
               sim=None, name="host", trace=None):
    """Build a host from a preset name or a :class:`SolutionConfig`."""
    if isinstance(preset_or_config, str):
        config = get_preset(preset_or_config)
    else:
        config = preset_or_config
    return Host(config, spec=spec, seed=seed, vf_count=vf_count,
                sim=sim, name=name, trace=trace)
