"""The paper's evaluation presets (§6.1 "Baselines")."""

from repro.core.config import SolutionConfig

NO_NET = SolutionConfig(
    name="no-net",
    description="Startup without enabling network: the optimization lower bound.",
    network="none",
)

VANILLA = SolutionConfig(
    name="vanilla",
    description=(
        "SR-IOV CNI with the §5 rebinding fix but no passthrough "
        "optimizations — the paper's main baseline."
    ),
    network="sriov",
)

TRUE_VANILLA = SolutionConfig(
    name="true-vanilla",
    description=(
        "The upstream SR-IOV CNI with the per-launch host-driver "
        "rebinding flaw (minutes at concurrency 200, §5)."
    ),
    network="sriov",
    rebind_flaw=True,
)

FASTIOV = SolutionConfig(
    name="fastiov",
    description="All four optimizations: L + A + S + D (§4.1).",
    network="sriov",
    lock_decomposition=True,
    async_vf_init=True,
    skip_image_mapping=True,
    decoupled_zeroing=True,
)

#: Ablations: FastIOV minus one optimization each (§6.2).
FASTIOV_L = FASTIOV.derive(
    name="fastiov-l",
    description="FastIOV without Lock decomposition.",
    lock_decomposition=False,
)
FASTIOV_A = FASTIOV.derive(
    name="fastiov-a",
    description="FastIOV without Asynchronous VF driver init.",
    async_vf_init=False,
)
FASTIOV_S = FASTIOV.derive(
    name="fastiov-s",
    description="FastIOV without image-mapping Skipping.",
    skip_image_mapping=False,
)
FASTIOV_D = FASTIOV.derive(
    name="fastiov-d",
    description="FastIOV without Decoupled zeroing.",
    decoupled_zeroing=False,
)

#: HawkEye-style idle-time memory pre-zeroing baselines (§6.1).
PRE10 = VANILLA.derive(
    name="pre10",
    description="Vanilla with 10% of memory pre-zeroed during idle time.",
    prezeroed_fraction=0.10,
)
PRE50 = VANILLA.derive(
    name="pre50",
    description="Vanilla with 50% of memory pre-zeroed during idle time.",
    prezeroed_fraction=0.50,
)
PRE100 = VANILLA.derive(
    name="pre100",
    description="Vanilla with 100% of memory pre-zeroed during idle time.",
    prezeroed_fraction=1.00,
)

IPVTAP = SolutionConfig(
    name="ipvtap",
    description="Basic software CNI (fastest-starting software option, §6.4).",
    network="ipvtap",
)

#: §7 future work, implemented here as an extension: FastIOV's host-side
#: optimizations with the guest driving the VF through vDPA's standard
#: virtio driver (no vendor VF driver init at all).
FASTIOV_VDPA = FASTIOV.derive(
    name="fastiov-vdpa",
    description=(
        "FastIOV + vDPA: hardware data plane, standard virtio control "
        "plane — investigates the §7 open question."
    ),
    vdpa=True,
)

#: vDPA on the otherwise-vanilla stack, to isolate vDPA's own effect.
VANILLA_VDPA = VANILLA.derive(
    name="vanilla-vdpa",
    description="Vanilla SR-IOV CNI with vDPA guest driver bring-up.",
    vdpa=True,
)

#: §8 related-work baseline: vIOMMU/coIOMMU-style deferred DMA mapping.
#: Startup pays no mapping/zeroing, but the data path pays mapping at
#: first DMA and the design couples with memory overcommitment — the
#: trade-off the paper cites for decoupling zeroing instead.
VIOMMU = SolutionConfig(
    name="viommu",
    description=(
        "Deferred DMA mapping (vIOMMU-style): demand-paged guest memory "
        "mapped into the IOMMU at first device access."
    ),
    network="sriov",
    deferred_mapping=True,
)

PRESETS = {
    config.name: config
    for config in (
        NO_NET,
        VANILLA,
        TRUE_VANILLA,
        FASTIOV,
        FASTIOV_L,
        FASTIOV_A,
        FASTIOV_S,
        FASTIOV_D,
        PRE10,
        PRE50,
        PRE100,
        IPVTAP,
        FASTIOV_VDPA,
        VANILLA_VDPA,
        VIOMMU,
    )
}

#: The Fig. 11 bar order.
FIG11_PRESETS = (
    "no-net", "vanilla", "fastiov", "fastiov-l", "fastiov-a",
    "fastiov-s", "fastiov-d", "pre10", "pre50", "pre100",
)


def get_preset(name):
    """Look up a preset by name; raises with the catalog on a typo."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
