"""Experiment harness: one module per paper table/figure.

Every experiment follows the same protocol::

    from repro.experiments import get_experiment

    exp = get_experiment("fig11")
    result = exp.run(quick=True)   # smaller concurrency for CI/benches
    print(result.render())          # the figure/table as text
    for row in result.comparisons():
        print(row)                  # (metric, paper, measured) triples

``quick=False`` reproduces the paper's full scale (concurrency 200,
512 MiB per container on the §3.1 testbed spec).  Results are
deterministic per seed.
"""

from repro.experiments.registry import (
    ALL_EXPERIMENTS,
    get_experiment,
    list_experiments,
)

__all__ = ["ALL_EXPERIMENTS", "get_experiment", "list_experiments"]
