"""Experiment protocol shared by every figure/table reproduction."""

from repro.metrics.reporting import format_table


class Comparison:
    """One paper-vs-measured row for EXPERIMENTS.md."""

    def __init__(self, metric, paper, measured, note=""):
        self.metric = metric
        self.paper = paper
        self.measured = measured
        self.note = note

    def as_row(self):
        return (self.metric, self.paper, self.measured, self.note)

    def __repr__(self):
        return f"<Comparison {self.metric}: paper={self.paper} measured={self.measured}>"


class ExperimentResult:
    """What an experiment run produced."""

    def __init__(self, experiment_id, title, data, text, comparisons):
        self.experiment_id = experiment_id
        self.title = title
        #: Structured results (series, tables) for programmatic use.
        self.data = data
        self._text = text
        self._comparisons = comparisons

    def render(self):
        """The figure/table as printable text."""
        return self._text

    def comparisons(self):
        """Paper-vs-measured rows."""
        return list(self._comparisons)

    def comparison_table(self):
        return format_table(
            ["metric", "paper", "measured", "note"],
            [c.as_row() for c in self._comparisons],
            title=f"{self.experiment_id}: {self.title} — paper vs measured",
        )

    def __repr__(self):
        return f"<ExperimentResult {self.experiment_id}>"


class Experiment:
    """Base class: subclasses implement :meth:`_execute`."""

    #: Short id ("fig11"); set by subclasses.
    experiment_id = None
    #: Human title.
    title = ""
    #: What the paper reports (documented expectations).
    paper_reference = ""

    def configure(self, **options):
        """Set experiment-specific knobs before :meth:`run`.

        Experiments that support them read knobs like ``hosts``,
        ``placement``, and ``shards`` through :meth:`option` (the CLI
        plumbs ``repro run scale --hosts 48 --shards 8`` through here).
        ``None`` values are ignored so callers can pass parsed CLI
        arguments straight through.  Returns ``self`` for chaining.
        """
        current = getattr(self, "_options", None) or {}
        for key, value in options.items():
            if value is not None:
                current[key] = value
        self._options = current
        return self

    def option(self, key, default=None):
        """One configured knob, or ``default``."""
        options = getattr(self, "_options", None) or {}
        return options.get(key, default)

    def run(self, quick=False, seed=0, jobs=None, use_cache=None):
        """Run the experiment and return an :class:`ExperimentResult`.

        Args:
            quick: Reduced concurrency/sweep for fast benches; the full
                setting reproduces the paper's scale.
            seed: Jitter seed for exact reproducibility.
            jobs: Worker processes for independent launch cells
                (None = ``$REPRO_JOBS`` or 1).
            use_cache: Reuse/store cell summaries in the result cache
                (None = ``$REPRO_CACHE``, default off).

        Parallelism and caching change wall-clock time only: a cell's
        summary is identical whether it ran in-process, in a worker
        process, or came from a cache hit.
        """
        from repro.experiments.parallel import CellRunner, default_cache

        self._runner = CellRunner(jobs=jobs, cache=default_cache(use_cache))
        try:
            self._runner.prefetch(self._cells(quick=quick, seed=seed))
            data, text, comparisons = self._execute(quick=quick, seed=seed)
        finally:
            self._runner = None
        return ExperimentResult(
            self.experiment_id, self.title, data, text, comparisons
        )

    def _cells(self, quick, seed):
        """The independent launch cells this experiment will consume.

        Subclasses built on :meth:`_launch_summary` override this so
        :meth:`run` can fan the whole list out before `_execute` walks
        it serially.  The default (no cells) keeps bespoke experiments
        on their original in-process path.
        """
        return []

    def _launch_summary(self, preset, concurrency, memory_bytes=None, seed=0):
        """Summary dict for one launch cell (see ``summarize_launch``)."""
        from repro.experiments.parallel import Cell

        return self._cell_summary(Cell(preset, concurrency, memory_bytes, seed))

    def _cell_summary(self, cell):
        """Summary dict for one cell of any kind.

        Served from the prefetched/cached cell results when available;
        falls back to an in-process run when `_execute` is called
        directly (as unit tests do).
        """
        runner = getattr(self, "_runner", None)
        if runner is None:
            from repro.experiments.parallel import CellRunner

            runner = self._runner = CellRunner(jobs=1, cache=None)
        return runner.cell_summary(cell)

    def _execute(self, quick, seed):
        raise NotImplementedError

    def __repr__(self):
        return f"<Experiment {self.experiment_id}: {self.title}>"


def reduction(baseline, value):
    """Fractional reduction of ``value`` relative to ``baseline``."""
    if baseline == 0:
        raise ValueError("baseline is zero")
    return 1.0 - value / baseline


def pct(fraction):
    """Format a fraction as a percent string."""
    return f"{fraction * 100:.1f}%"
