"""Experiment protocol shared by every figure/table reproduction."""

from repro.metrics.reporting import format_table


class Comparison:
    """One paper-vs-measured row for EXPERIMENTS.md."""

    def __init__(self, metric, paper, measured, note=""):
        self.metric = metric
        self.paper = paper
        self.measured = measured
        self.note = note

    def as_row(self):
        return (self.metric, self.paper, self.measured, self.note)

    def __repr__(self):
        return f"<Comparison {self.metric}: paper={self.paper} measured={self.measured}>"


class ExperimentResult:
    """What an experiment run produced."""

    def __init__(self, experiment_id, title, data, text, comparisons):
        self.experiment_id = experiment_id
        self.title = title
        #: Structured results (series, tables) for programmatic use.
        self.data = data
        self._text = text
        self._comparisons = comparisons

    def render(self):
        """The figure/table as printable text."""
        return self._text

    def comparisons(self):
        """Paper-vs-measured rows."""
        return list(self._comparisons)

    def comparison_table(self):
        return format_table(
            ["metric", "paper", "measured", "note"],
            [c.as_row() for c in self._comparisons],
            title=f"{self.experiment_id}: {self.title} — paper vs measured",
        )

    def __repr__(self):
        return f"<ExperimentResult {self.experiment_id}>"


class Experiment:
    """Base class: subclasses implement :meth:`_execute`."""

    #: Short id ("fig11"); set by subclasses.
    experiment_id = None
    #: Human title.
    title = ""
    #: What the paper reports (documented expectations).
    paper_reference = ""

    def run(self, quick=False, seed=0):
        """Run the experiment and return an :class:`ExperimentResult`.

        Args:
            quick: Reduced concurrency/sweep for fast benches; the full
                setting reproduces the paper's scale.
            seed: Jitter seed for exact reproducibility.
        """
        data, text, comparisons = self._execute(quick=quick, seed=seed)
        return ExperimentResult(
            self.experiment_id, self.title, data, text, comparisons
        )

    def _execute(self, quick, seed):
        raise NotImplementedError

    def __repr__(self):
        return f"<Experiment {self.experiment_id}: {self.title}>"


def reduction(baseline, value):
    """Fractional reduction of ``value`` relative to ``baseline``."""
    if baseline == 0:
        raise ValueError("baseline is zero")
    return 1.0 - value / baseline


def pct(fraction):
    """Format a fraction as a percent string."""
    return f"{fraction * 100:.1f}%"
