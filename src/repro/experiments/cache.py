"""Content-addressed result cache for experiment launch cells.

A *cell* — one ``launch_preset`` invocation — is pure: its summary is a
deterministic function of (a) the simulator source code, (b) the host
spec constants, and (c) the cell parameters (preset, concurrency,
memory, seed).  The cache keys on a digest of all three, so any source
edit or spec change invalidates every stale entry automatically; there
is no TTL and no manual invalidation step.

Layout: one JSON file per cell under the cache directory (default
``.repro-cache/`` in the working directory, overridable with
``REPRO_CACHE_DIR``)::

    .repro-cache/
        a3f1…e9.json     # {"key": …, "cell": …, "summary": …}

Values survive JSON round-trips exactly (floats serialize via repr), so
a cache hit is numerically identical to a fresh run.
"""

import dataclasses
import hashlib
import json
import os
import pathlib

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

_code_digest = None


def code_digest():
    """Digest of every ``repro`` source file (memoized per process)."""
    global _code_digest
    if _code_digest is None:
        root = pathlib.Path(__file__).resolve().parents[1]
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _code_digest = h.hexdigest()
    return _code_digest


def spec_fingerprint(spec):
    """Stable serialization of a HostSpec (all cost constants)."""
    return json.dumps(dataclasses.asdict(spec), sort_keys=True, default=repr)


def cell_key(cell_dict, spec):
    """The cache key for one cell under one spec and the current code."""
    payload = json.dumps(
        {
            "code": code_digest(),
            "spec": spec_fingerprint(spec),
            "cell": cell_dict,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Filesystem-backed cell-summary cache (tolerant of corruption)."""

    def __init__(self, directory=None):
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.directory = pathlib.Path(directory)

    def _path(self, key):
        return self.directory / f"{key}.json"

    def get(self, key):
        """The cached summary for ``key``, or None."""
        try:
            with open(self._path(key)) as fh:
                entry = json.load(fh)
            return entry["summary"]
        except (OSError, ValueError, KeyError):
            return None

    def put(self, key, cell_dict, summary):
        """Store one cell summary (atomic: write temp + rename)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "cell": cell_dict, "summary": summary}
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "w") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            # A read-only or full filesystem downgrades to "no cache".
            try:
                tmp.unlink()
            except OSError:
                pass

    def clear(self):
        """Drop every entry (keeps the directory)."""
        if not self.directory.is_dir():
            return 0
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self):
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self):
        return f"<ResultCache {self.directory} entries={len(self)}>"
