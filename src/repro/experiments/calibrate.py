"""Calibration harness: HostSpec constants vs the paper's anchors.

Run:
    python -m repro.experiments.calibrate [--concurrency 200]

Launches the anchor presets at the paper's headline concurrency and
prints every calibration target next to the measured value, with the
`HostSpec` knob(s) that move it.  This is the tool that produced the
``# cal`` constants in :mod:`repro.spec`; re-run it after touching any
of them.
"""

import argparse

from repro.core import build_host
from repro.metrics.reporting import format_table
from repro.metrics.timeline import PAPER_STEPS

#: (target description, paper value, knobs) — measured values are
#: computed from the runs below.
ANCHORS = [
    ("vanilla mean (s)", "16.2",
     "vfio_bus_scan_per_device_s, zeroing rates, virtiofs_lock_hold_s"),
    ("no-net mean (s)", "4.0",
     "virtiofs_lock_hold_s, guest_boot_cpu_s, cgroup_lock_hold_s"),
    ("fastiov mean (s)", "5.56", "fastiovd scanner knobs, vfio open costs"),
    ("fastiov avg reduction", "65.7%", "(derived)"),
    ("fastiov p99 reduction", "75.4%", "(derived)"),
    ("VF-related share of vanilla avg", "70.1%", "(derived)"),
    ("1-dma-ram share", "13.0%", "zeroing_bytes_per_cpu_s, dram_channels"),
    ("2-virtiofs share", "13.3%", "virtiofs_lock_hold_s, virtiofs_setup_cpu_s"),
    ("3-dma-image share", "5.6%", "image_bytes, zeroing rates"),
    ("4-vfio-dev share", "48.1%", "vfio_bus_scan_per_device_s"),
    ("5-vf-driver share", "3.4%", "vf_driver_* costs"),
    ("0-cgroup share", "2.9%", "cgroup_lock_hold_s"),
]


def measure(concurrency, seed=0):
    """Run the anchor presets; return the measured values in ANCHORS
    order plus the raw results."""
    results = {}
    for preset in ("vanilla", "no-net", "fastiov"):
        host = build_host(preset, seed=seed)
        results[preset] = host.launch(concurrency)
    vanilla = results["vanilla"].startup_times()
    no_net = results["no-net"].startup_times()
    fastiov = results["fastiov"].startup_times()
    vf_share = (
        sum(results["vanilla"].vf_related_times())
        / len(results["vanilla"].records) / vanilla.mean
    )

    def share(step):
        return results["vanilla"].mean_step_time(step) / vanilla.mean

    measured = [
        f"{vanilla.mean:.1f}",
        f"{no_net.mean:.1f}",
        f"{fastiov.mean:.2f}",
        f"{(1 - fastiov.mean / vanilla.mean) * 100:.1f}%",
        f"{(1 - fastiov.p99 / vanilla.p99) * 100:.1f}%",
        f"{vf_share * 100:.1f}%",
        f"{share('1-dma-ram') * 100:.1f}%",
        f"{share('2-virtiofs') * 100:.1f}%",
        f"{share('3-dma-image') * 100:.1f}%",
        f"{share('4-vfio-dev') * 100:.1f}%",
        f"{share('5-vf-driver') * 100:.1f}%",
        f"{share('0-cgroup') * 100:.1f}%",
    ]
    return measured, results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--concurrency", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    measured, results = measure(args.concurrency, args.seed)
    rows = [
        (name, paper, value, knobs)
        for (name, paper, knobs), value in zip(ANCHORS, measured)
    ]
    print(format_table(
        ["anchor", "paper", "measured", "HostSpec knobs"],
        rows,
        title=f"Calibration anchors (c={args.concurrency}, "
              f"seed={args.seed})",
    ))
    print("\nVanilla step means (s):")
    for step in PAPER_STEPS:
        print(f"  {step:12s} {results['vanilla'].mean_step_time(step):6.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
