"""Extension experiment: sustained serverless churn.

The paper evaluates simultaneous bursts (its production traces show
200 near-simultaneous invocations).  Real platforms also sustain
continuous load: containers arrive (Poisson), run a short task, and are
recycled — VFs return to the pool, frames return dirty to the
allocator.  This experiment drives sustained churn through the full
lifecycle (start -> app -> teardown) and measures steady-state startup
latency, demonstrating that FastIOV's gain is not an artifact of the
burst pattern and that recycling preserves the security invariant under
load (every guest read remains leak-checked).

With ``--hosts N`` (N > 1) the churn spreads over a cluster instead of
one host; combined with ``--shards K`` the Poisson stream drives the
epoch-barrier placement protocol of :mod:`repro.cluster.sharded`.
"""

from repro.containers.engine import ContainerRequest
from repro.experiments.base import Comparison, Experiment, pct, reduction
from repro.experiments.parallel import Cell
from repro.metrics.reporting import format_table
from repro.metrics.stats import Distribution
from repro.metrics.timeline import StartupRecord
from repro.spec import PAPER_TESTBED
from repro.workloads.generator import ArrivalPattern
from repro.workloads.serverless import make_app


def run_churn(preset, total, rate_per_s, app_name, seed, trace=None):
    """Drive ``total`` Poisson invocations at ``rate_per_s``; each runs
    ``app_name`` then is torn down.  Returns (records, host)."""
    from repro.core import build_host

    host = build_host(preset, spec=PAPER_TESTBED, seed=seed, trace=trace)
    arrivals = ArrivalPattern(
        "poisson", rate_per_s=rate_per_s, jitter=host.jitter.fork("arrivals")
    )
    offsets = arrivals.offsets(total)
    records = []
    for index, offset in enumerate(offsets):
        name = f"w{index}"
        record = StartupRecord(name)
        records.append(record)
        request = ContainerRequest(name, app=make_app(app_name))

        def flow(request=request, record=record, offset=offset, name=name):
            from repro.sim.core import Timeout

            yield Timeout(offset)
            yield from host.engine.run_container(request, record)
            yield from host.engine.remove_container(name)

        host.sim.spawn(flow(), name=f"churn-{name}")
    host.sim.run()
    return records, host


def run_churn_cell(preset, total, rate_per_s, seed, engine_stats=None,
                   trace=None):
    """One single-host churn cell; returns a plain-JSON summary.

    Pure in its arguments (the app is fixed to "image", matching the
    experiment), so it is safe to run in a worker process and to cache.
    Steady state drops the first third of arrivals (warm-up).
    ``engine_stats``, if given, is filled with the host simulator's
    ``wheel_stats()`` for diagnostics; never part of the summary.
    ``trace``, if given, is a dict filled with the flight-recorder
    bundle (never part of the summary).
    """
    recorder = None
    if trace is not None:
        from repro.obs.recorder import TraceRecorder

        recorder = TraceRecorder()
    records, host = run_churn(preset, total, rate_per_s, "image", seed,
                              trace=recorder)
    if engine_stats is not None:
        engine_stats.update(host.sim.wheel_stats())
    if recorder is not None:
        host.finalize_trace()
        trace.update(recorder.dump())
    steady = records[total // 3:]
    return {
        "startup": Distribution(
            [r.startup_time for r in steady], label=preset
        ).summary(),
        "tct": Distribution(
            [r.task_completion_time for r in steady], label=preset
        ).summary(),
        "free_vfs": host.cni.free_vf_count,
        "events": host.sim.events_dispatched,
    }


class Churn(Experiment):
    """Runs the sustained-churn lifecycle study (extension)."""

    experiment_id = "churn"
    title = "Sustained Poisson churn through the full container lifecycle"
    paper_reference = (
        "Extension (no paper figure): steady-state startup latency under "
        "continuous arrivals with recycling; expectations: FastIOV's "
        "reduction persists, VF pool fully recycles, no residual leaks."
    )

    @staticmethod
    def _load(quick):
        total = 60 if quick else 300
        # Little's law bounds the sustainable rate by the VF pool: with
        # 256 VFs and vanilla's ~9 s lifecycle (start + task + teardown),
        # arrivals beyond ~28/s exhaust the pool — itself a capacity
        # consequence of slow startup.  20/s is sustainable for both.
        rate = 15.0 if quick else 20.0
        return total, rate

    def _hosts(self):
        return self.option("hosts", 1)

    def _cells(self, quick, seed):
        total, rate = self._load(quick)
        hosts = self._hosts()
        if hosts > 1:
            from repro.cluster.sharded import resolve_shards

            shards = resolve_shards(self.option("shards", 1), hosts)
            placement = self.option("placement", "least-loaded")
            return [
                Cell(preset, total, None, seed, kind="cluster", hosts=hosts,
                     placement=placement, shards=shards, rate_per_s=rate)
                for preset in ("vanilla", "fastiov")
            ]
        return [
            Cell(preset, total, None, seed, kind="churn", rate_per_s=rate)
            for preset in ("vanilla", "fastiov")
        ]

    def _execute(self, quick, seed):
        if self._hosts() > 1:
            return self._execute_cluster(quick, seed)
        total, rate = self._load(quick)
        results = {
            preset: self._cell_summary(
                Cell(preset, total, None, seed, kind="churn", rate_per_s=rate)
            )
            for preset in ("vanilla", "fastiov")
        }

        rows = [
            (preset,
             r["startup"]["mean"], r["startup"]["p99"],
             r["tct"]["mean"], r["tct"]["p99"])
            for preset, r in results.items()
        ]
        text = format_table(
            ["solution", "startup mean (s)", "startup p99 (s)",
             "TCT mean (s)", "TCT p99 (s)"],
            rows,
            title=(f"Churn — {total} Poisson arrivals at {rate:.0f}/s "
                   f"(steady state)"),
        )

        vanilla = results["vanilla"]
        fastiov = results["fastiov"]
        free_vfs = {p: results[p]["free_vfs"] for p in results}
        comparisons = [
            Comparison(
                "steady-state startup reduction",
                "expected: persists under churn",
                pct(reduction(vanilla["startup"]["mean"],
                              fastiov["startup"]["mean"])),
            ),
            Comparison(
                "steady-state TCT p99 reduction",
                "expected: positive",
                pct(reduction(vanilla["tct"]["p99"], fastiov["tct"]["p99"])),
            ),
            Comparison(
                "VF pool fully recycled after the run",
                f"{PAPER_TESTBED.nic_max_vfs} free",
                f"vanilla={free_vfs['vanilla']}, fastiov={free_vfs['fastiov']}",
            ),
            Comparison(
                "residual-data leaks across recycles",
                "0", "0 (every guest read is checked in-simulation)",
            ),
            Comparison(
                "max sustainable rate (Little's law, 256 VFs)",
                "bounded by lifecycle length",
                f"vanilla ~{256 / (vanilla['tct']['mean'] + 1.0):.0f}/s vs "
                f"fastiov ~{256 / (fastiov['tct']['mean'] + 1.0):.0f}/s",
                note="slow startup also costs pool capacity",
            ),
        ]
        data = {
            "results": {
                p: {"startup": r["startup"], "tct": r["tct"]}
                for p, r in results.items()
            },
            "free_vfs": free_vfs,
            "total": total,
            "rate": rate,
        }
        return data, text, comparisons

    def _execute_cluster(self, quick, seed):
        """Churn spread over a cluster (``--hosts N``, optional shards).

        A Poisson stream into least-loaded placement is exactly the
        regime where sharding must exchange load deltas at epoch
        barriers, so this is the CLI path that exercises the protocol
        end to end.
        """
        total, rate = self._load(quick)
        hosts = self._hosts()
        from repro.cluster.sharded import resolve_shards

        shards = resolve_shards(self.option("shards", 1), hosts)
        placement = self.option("placement", "least-loaded")
        results = {
            preset: self._cell_summary(
                Cell(preset, total, None, seed, kind="cluster", hosts=hosts,
                     placement=placement, shards=shards, rate_per_s=rate)
            )
            for preset in ("vanilla", "fastiov")
        }
        rows = [
            (preset, r["mean"], r["p99"], r["peak_in_flight"],
             f"{min(r['peak_load_per_host'])}..{max(r['peak_load_per_host'])}")
            for preset, r in results.items()
        ]
        sharding = f", {shards} shards" if shards > 1 else ""
        text = format_table(
            ["solution", "startup mean (s)", "startup p99 (s)",
             "peak in-flight", "host peak"],
            rows,
            title=(f"Churn — {total} Poisson arrivals at {rate:.0f}/s over "
                   f"{hosts} hosts ({placement}{sharding})"),
        )
        vanilla = results["vanilla"]
        fastiov = results["fastiov"]
        comparisons = [
            Comparison(
                "cluster churn startup reduction",
                "expected: persists under churn",
                pct(reduction(vanilla["mean"], fastiov["mean"])),
            ),
            Comparison(
                "VF pools fully recycled after the run",
                f"{hosts * PAPER_TESTBED.nic_max_vfs} free",
                f"vanilla={vanilla['free_vfs_total']}, "
                f"fastiov={fastiov['free_vfs_total']}",
            ),
        ]
        data = {
            "hosts": hosts,
            "placement": placement,
            "total": total,
            "rate": rate,
            "results": results,
        }
        return data, text, comparisons
