"""Extension experiment: sustained serverless churn.

The paper evaluates simultaneous bursts (its production traces show
200 near-simultaneous invocations).  Real platforms also sustain
continuous load: containers arrive (Poisson), run a short task, and are
recycled — VFs return to the pool, frames return dirty to the
allocator.  This experiment drives sustained churn through the full
lifecycle (start -> app -> teardown) and measures steady-state startup
latency, demonstrating that FastIOV's gain is not an artifact of the
burst pattern and that recycling preserves the security invariant under
load (every guest read remains leak-checked).
"""

from repro.containers.engine import ContainerRequest
from repro.experiments.base import Comparison, Experiment, pct, reduction
from repro.metrics.reporting import format_table
from repro.metrics.stats import Distribution
from repro.metrics.timeline import StartupRecord
from repro.spec import PAPER_TESTBED
from repro.workloads.generator import ArrivalPattern
from repro.workloads.serverless import make_app


def run_churn(preset, total, rate_per_s, app_name, seed):
    """Drive ``total`` Poisson invocations at ``rate_per_s``; each runs
    ``app_name`` then is torn down.  Returns (records, host)."""
    from repro.core import build_host

    host = build_host(preset, spec=PAPER_TESTBED, seed=seed)
    arrivals = ArrivalPattern(
        "poisson", rate_per_s=rate_per_s, jitter=host.jitter.fork("arrivals")
    )
    offsets = arrivals.offsets(total)
    records = []
    for index, offset in enumerate(offsets):
        name = f"w{index}"
        record = StartupRecord(name)
        records.append(record)
        request = ContainerRequest(name, app=make_app(app_name))

        def flow(request=request, record=record, offset=offset, name=name):
            from repro.sim.core import Timeout

            yield Timeout(offset)
            yield from host.engine.run_container(request, record)
            yield from host.engine.remove_container(name)

        host.sim.spawn(flow(), name=f"churn-{name}")
    host.sim.run()
    return records, host


class Churn(Experiment):
    """Runs the sustained-churn lifecycle study (extension)."""

    experiment_id = "churn"
    title = "Sustained Poisson churn through the full container lifecycle"
    paper_reference = (
        "Extension (no paper figure): steady-state startup latency under "
        "continuous arrivals with recycling; expectations: FastIOV's "
        "reduction persists, VF pool fully recycles, no residual leaks."
    )

    def _execute(self, quick, seed):
        total = 60 if quick else 300
        # Little's law bounds the sustainable rate by the VF pool: with
        # 256 VFs and vanilla's ~9 s lifecycle (start + task + teardown),
        # arrivals beyond ~28/s exhaust the pool — itself a capacity
        # consequence of slow startup.  20/s is sustainable for both.
        rate = 15.0 if quick else 20.0
        results = {}
        hosts = {}
        for preset in ("vanilla", "fastiov"):
            records, host = run_churn(preset, total, rate, "image", seed)
            # Steady state: drop the first third (warm-up).
            steady = records[total // 3:]
            results[preset] = {
                "startup": Distribution(
                    [r.startup_time for r in steady], label=preset
                ),
                "tct": Distribution(
                    [r.task_completion_time for r in steady], label=preset
                ),
            }
            hosts[preset] = host

        rows = [
            (preset,
             r["startup"].mean, r["startup"].p99,
             r["tct"].mean, r["tct"].p99)
            for preset, r in results.items()
        ]
        text = format_table(
            ["solution", "startup mean (s)", "startup p99 (s)",
             "TCT mean (s)", "TCT p99 (s)"],
            rows,
            title=(f"Churn — {total} Poisson arrivals at {rate:.0f}/s "
                   f"(steady state)"),
        )

        vanilla = results["vanilla"]
        fastiov = results["fastiov"]
        free_vfs = {p: hosts[p].cni.free_vf_count for p in hosts}
        comparisons = [
            Comparison(
                "steady-state startup reduction",
                "expected: persists under churn",
                pct(reduction(vanilla["startup"].mean,
                              fastiov["startup"].mean)),
            ),
            Comparison(
                "steady-state TCT p99 reduction",
                "expected: positive",
                pct(reduction(vanilla["tct"].p99, fastiov["tct"].p99)),
            ),
            Comparison(
                "VF pool fully recycled after the run",
                f"{hosts['fastiov'].spec.nic_max_vfs} free",
                f"vanilla={free_vfs['vanilla']}, fastiov={free_vfs['fastiov']}",
            ),
            Comparison(
                "residual-data leaks across recycles",
                "0", "0 (every guest read is checked in-simulation)",
            ),
            Comparison(
                "max sustainable rate (Little's law, 256 VFs)",
                "bounded by lifecycle length",
                f"vanilla ~{256 / (vanilla['tct'].mean + 1.0):.0f}/s vs "
                f"fastiov ~{256 / (fastiov['tct'].mean + 1.0):.0f}/s",
                note="slow startup also costs pool capacity",
            ),
        ]
        data = {
            "results": {
                p: {"startup": r["startup"].summary(),
                    "tct": r["tct"].summary()}
                for p, r in results.items()
            },
            "free_vfs": free_vfs,
            "total": total,
            "rate": rate,
        }
        return data, text, comparisons
