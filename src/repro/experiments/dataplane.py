"""Extension experiment: data-plane comparison (passthrough vs software).

§1 motivates SR-IOV with near-bare-metal data-plane performance, and
§6.4 notes IPvtap's "much worse data plane" without quantifying it on
the startup testbed.  This experiment measures the end-to-end transfer
phase of identical bulk downloads on both paths under concurrency: the
passthrough path is wire-limited (NIC DMA straight to guest rings)
while the software path burns host CPU per byte and collapses under
concurrent load.
"""

from repro.experiments.base import Comparison, Experiment
from repro.experiments.runs import launch_preset
from repro.metrics.reporting import format_table
from repro.metrics.stats import Distribution
from repro.spec import MIB
from repro.workloads.serverless import ServerlessApp

TRANSFER_BYTES = 256 * MIB


def _bulk_app(_index):
    return ServerlessApp(
        "bulk-transfer", input_bytes=TRANSFER_BYTES,
        compute_cpu_s=0.0, footprint_bytes=2 * MIB, output_bytes=64 * 1024,
    )


class Dataplane(Experiment):
    """Quantifies the data-plane gap (extension)."""

    experiment_id = "dataplane"
    title = "Data plane: passthrough VF vs software (ipvtap) under load"
    paper_reference = (
        "Extension quantifying §1/§6.4's data-plane claims: passthrough "
        "transfers stay wire-limited; the software path is CPU-bound "
        "and degrades with concurrency."
    )

    def _execute(self, quick, seed):
        concurrencies = (1, 16) if quick else (1, 16, 64)
        rows = []
        series = {}
        for concurrency in concurrencies:
            for preset in ("fastiov", "ipvtap"):
                _host, result = launch_preset(
                    preset, concurrency, seed=seed, app_factory=_bulk_app
                )
                transfer = Distribution(
                    [r.step_time("app-run") for r in result.records],
                    label=f"{preset}@{concurrency}",
                )
                gbps = TRANSFER_BYTES * 8 / transfer.mean / 1e9
                series[(preset, concurrency)] = {
                    "mean_s": transfer.mean, "max_s": transfer.maximum,
                    "gbps": gbps,
                }
                rows.append((preset, concurrency, transfer.mean, gbps))
        text = format_table(
            ["path", "concurrency", "transfer time (s)",
             "per-container Gbps"],
            rows,
            title=f"Data plane — {TRANSFER_BYTES >> 20} MiB bulk download",
        )

        pass_1 = series[("fastiov", 1)]
        soft_1 = series[("ipvtap", 1)]
        c_hi = concurrencies[-1]
        pass_hi = series[("fastiov", c_hi)]
        soft_hi = series[("ipvtap", c_hi)]
        wire = 25.0  # the modeled 25 GbE link
        comparisons = [
            Comparison(
                "single-stream passthrough throughput",
                "near wire rate (25 GbE)",
                f"{pass_1['gbps']:.1f} Gbps",
            ),
            Comparison(
                "single-stream software throughput",
                "well below passthrough",
                f"{soft_1['gbps']:.1f} Gbps",
            ),
            Comparison(
                "passthrough per-stream rate never exceeds the wire",
                "<= 25 Gbps",
                f"{max(v['gbps'] for (p, _c), v in series.items() if p == 'fastiov'):.1f} Gbps",
            ),
            Comparison(
                f"software slowdown vs passthrough at c={c_hi}",
                ">1x (CPU-bound copies)",
                f"{soft_hi['mean_s'] / pass_hi['mean_s']:.1f}x",
            ),
        ]
        assert pass_1["gbps"] <= wire + 1e-6
        data = {
            "series": {f"{p}@{c}": v for (p, c), v in series.items()},
        }
        return data, text, comparisons
