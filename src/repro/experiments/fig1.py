"""Fig. 1: overhead of enabling SR-IOV on secure-container startup.

The motivating figure: average startup time of No-Net vs vanilla
SR-IOV at concurrency 10..200.  The paper reports a 12.2 s overhead at
concurrency 200 (+305% on the average), growing with concurrency, and a
fastest no-network container of ~460 ms at concurrency 10.
"""

from repro.experiments.base import Comparison, Experiment, pct
from repro.experiments.parallel import Cell
from repro.experiments.runs import concurrency_sweep
from repro.metrics.reporting import format_table


class Fig1(Experiment):
    """Regenerates Fig. 1 (see module docstring for the claims)."""

    experiment_id = "fig1"
    title = "Overhead of enabling SR-IOV vs startup concurrency"
    paper_reference = (
        "Fig. 1: overhead 12.2 s at c=200 (+305% avg); grows with "
        "concurrency; fastest no-net container ~0.46 s at c=10."
    )

    def _cells(self, quick, seed):
        return [
            Cell(preset, concurrency, seed=seed)
            for concurrency in concurrency_sweep(quick)
            for preset in ("no-net", "vanilla")
        ]

    def _execute(self, quick, seed):
        series = []
        for concurrency in concurrency_sweep(quick):
            nn = self._launch_summary("no-net", concurrency, seed=seed)
            va = self._launch_summary("vanilla", concurrency, seed=seed)
            series.append({
                "concurrency": concurrency,
                "no_net_mean": nn["mean"],
                "vanilla_mean": va["mean"],
                "overhead": va["mean"] - nn["mean"],
                "overhead_pct": (va["mean"] - nn["mean"]) / nn["mean"],
                "no_net_min": nn["min"],
            })

        rows = [
            (s["concurrency"], s["no_net_mean"], s["vanilla_mean"],
             s["overhead"], pct(s["overhead_pct"]))
            for s in series
        ]
        text = format_table(
            ["concurrency", "no-net mean (s)", "vanilla mean (s)",
             "overhead (s)", "overhead (%)"],
            rows, title="Fig. 1 — SR-IOV startup overhead vs concurrency",
        )

        last = series[-1]
        overheads = [s["overhead"] for s in series]
        comparisons = [
            Comparison(
                "overhead at max concurrency (s)", "12.2 (c=200)",
                f"{last['overhead']:.1f} (c={last['concurrency']})",
            ),
            Comparison(
                "avg increase at max concurrency", "+305%",
                f"+{last['overhead_pct'] * 100:.0f}%",
            ),
            Comparison(
                "overhead grows with concurrency", "yes",
                "yes" if overheads == sorted(overheads) else "NO",
            ),
            Comparison(
                "fastest no-net startup at c=10 (s)", "0.46",
                f"{series[0]['no_net_min']:.2f}",
                note="low-concurrency floor",
            ),
        ]
        return {"series": series}, text, comparisons
