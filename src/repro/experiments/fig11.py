"""Fig. 11: average startup time across all solutions at c=200.

Paper claims:
* FastIOV reduces the average startup time by 65.7% vs vanilla and the
  VF-related time by 96.1%;
* each ablation variant loses part of the gain: FastIOV-L/A/S/D reduce
  the average by only 21.8/40.3/58.2/43.7% respectively;
* FastIOV is 39.1% above No-Net on the average;
* FastIOV is 56.4% below Pre100 (and pre-zeroing helps with fraction).
"""

from repro.core.presets import FIG11_PRESETS
from repro.experiments.base import Comparison, Experiment, pct, reduction
from repro.experiments.parallel import Cell
from repro.experiments.runs import main_concurrency
from repro.metrics.reporting import format_table

PAPER_VARIANT_REDUCTIONS = {
    "fastiov": 0.657,
    "fastiov-l": 0.218,
    "fastiov-a": 0.403,
    "fastiov-s": 0.582,
    "fastiov-d": 0.437,
}


class Fig11(Experiment):
    """Regenerates Fig. 11 (see module docstring for the claims)."""

    experiment_id = "fig11"
    title = "Average startup time by solution (VF-related vs others)"
    paper_reference = "Fig. 11 (see PAPER_VARIANT_REDUCTIONS)."

    def _cells(self, quick, seed):
        concurrency = main_concurrency(quick)
        return [Cell(preset, concurrency, seed=seed) for preset in FIG11_PRESETS]

    def _execute(self, quick, seed):
        concurrency = main_concurrency(quick)
        results = {}
        for preset in FIG11_PRESETS:
            summary = self._launch_summary(preset, concurrency, seed=seed)
            results[preset] = {
                "mean": summary["mean"],
                "p99": summary["p99"],
                "vf_related_mean": summary["vf_related_mean"],
                "others_mean": summary["mean"] - summary["vf_related_mean"],
            }

        vanilla = results["vanilla"]
        no_net = results["no-net"]
        fastiov = results["fastiov"]
        rows = []
        for preset in FIG11_PRESETS:
            r = results[preset]
            red = reduction(vanilla["mean"], r["mean"])
            rows.append((preset, r["vf_related_mean"], r["others_mean"],
                         r["mean"], pct(red)))
        from repro.metrics.plots import ascii_bars

        text = "\n\n".join([
            format_table(
                ["solution", "VF-related (s)", "others (s)", "mean (s)",
                 "reduction vs vanilla"],
                rows, title=f"Fig. 11 — average startup time (c={concurrency})",
            ),
            ascii_bars({p: results[p]["mean"] for p in FIG11_PRESETS}),
        ])

        comparisons = [
            Comparison("vanilla mean startup (s)", "16.2 (c=200)",
                       f"{vanilla['mean']:.1f} (c={concurrency})"),
        ]
        for preset, paper_red in PAPER_VARIANT_REDUCTIONS.items():
            comparisons.append(Comparison(
                f"{preset} reduction vs vanilla", pct(paper_red),
                pct(reduction(vanilla["mean"], results[preset]["mean"])),
            ))
        comparisons.extend([
            Comparison(
                "FastIOV VF-related time reduction", "96.1%",
                pct(reduction(vanilla["vf_related_mean"],
                              fastiov["vf_related_mean"])),
            ),
            Comparison(
                "FastIOV above No-Net (avg)", "+39.1%",
                f"+{(fastiov['mean'] / no_net['mean'] - 1) * 100:.1f}%",
            ),
            Comparison(
                "FastIOV below Pre100 (avg)", "56.4%",
                pct(reduction(results["pre100"]["mean"], fastiov["mean"])),
            ),
            Comparison(
                "pre-zeroing helps monotonically (pre10>pre50>pre100)",
                "yes",
                "yes" if results["pre10"]["mean"] >= results["pre50"]["mean"]
                >= results["pre100"]["mean"] else "NO",
            ),
        ])
        data = {"results": results, "concurrency": concurrency}
        return data, text, comparisons
