"""Fig. 12: startup-time distribution (CDF) at c=200.

Paper claims: FastIOV reduces the 99th-percentile startup time by 75.4%
vs vanilla and sits only 11.6% above No-Net at the 99th percentile.
"""

from repro.experiments.base import Comparison, Experiment, pct, reduction
from repro.experiments.runs import launch_preset, main_concurrency
from repro.metrics.reporting import format_table

CDF_PRESETS = ("no-net", "vanilla", "fastiov", "pre100")


class Fig12(Experiment):
    """Regenerates Fig. 12 (see module docstring for the claims)."""

    experiment_id = "fig12"
    title = "Startup time distribution (CDF)"
    paper_reference = "Fig. 12: p99 -75.4% vs vanilla, +11.6% vs No-Net."

    def _execute(self, quick, seed):
        concurrency = main_concurrency(quick)
        distributions = {}
        for preset in CDF_PRESETS:
            _host, result = launch_preset(preset, concurrency, seed=seed)
            distributions[preset] = result.startup_times(preset)

        quantiles = (10, 25, 50, 75, 90, 99)
        rows = [
            (f"p{q}",) + tuple(
                distributions[p].percentile(q) for p in CDF_PRESETS
            )
            for q in quantiles
        ]
        from repro.metrics.plots import ascii_cdf

        text = "\n\n".join([
            format_table(
                ("quantile",) + CDF_PRESETS, rows,
                title=f"Fig. 12 — startup time quantiles (s, c={concurrency})",
            ),
            ascii_cdf(
                {p: distributions[p].values for p in CDF_PRESETS},
                x_label="startup time (s)",
            ),
        ])

        vanilla = distributions["vanilla"]
        fastiov = distributions["fastiov"]
        no_net = distributions["no-net"]
        comparisons = [
            Comparison("FastIOV p99 reduction vs vanilla", "75.4%",
                       pct(reduction(vanilla.p99, fastiov.p99))),
            Comparison("FastIOV p99 above No-Net", "+11.6%",
                       f"+{(fastiov.p99 / no_net.p99 - 1) * 100:.1f}%"),
            Comparison("vanilla p99 above No-Net", "+354.5%",
                       f"+{(vanilla.p99 / no_net.p99 - 1) * 100:.1f}%"),
            Comparison(
                "FastIOV CDF strictly left of vanilla", "yes",
                "yes" if all(
                    fastiov.percentile(q) < vanilla.percentile(q)
                    for q in quantiles
                ) else "NO",
            ),
        ]
        data = {
            "cdfs": {p: d.cdf() for p, d in distributions.items()},
            "concurrency": concurrency,
        }
        return data, text, comparisons
