"""Fig. 13: impacting factors — concurrency, memory, fully loaded server.

Paper claims:
* (a) FastIOV's reduction grows from 46.7% at c=10 to 65.6% at c=200
  (512 MiB per container);
* (b) at c=50, growing memory 512 MiB -> 2 GiB raises vanilla's average
  by 60.5% but FastIOV's by only 21.5%;
* (c) with the server's memory evenly divided, FastIOV's reduction is
  largest at low concurrency (79.5% at c=10, ~65.7% at c=200).
"""

from repro.experiments.base import Comparison, Experiment, pct, reduction
from repro.experiments.parallel import Cell
from repro.experiments.runs import (
    concurrency_sweep,
    fully_loaded_memory,
    memory_sweep,
)
from repro.metrics.reporting import format_table
from repro.spec import MIB


def _pair_cells(concurrency, memory_bytes, seed):
    return [
        Cell("vanilla", concurrency, memory_bytes, seed),
        Cell("fastiov", concurrency, memory_bytes, seed),
    ]


class _PairedExperiment(Experiment):
    """Shared vanilla-vs-fastiov comparison point."""

    def _pair(self, concurrency, memory_bytes, seed):
        v = self._launch_summary("vanilla", concurrency, memory_bytes, seed)
        f = self._launch_summary("fastiov", concurrency, memory_bytes, seed)
        return {
            "vanilla_mean": v["mean"], "fastiov_mean": f["mean"],
            "vanilla_p99": v["p99"], "fastiov_p99": f["p99"],
            "reduction": reduction(v["mean"], f["mean"]),
        }


class Fig13a(_PairedExperiment):
    """Regenerates Fig. 13a (concurrency sweep)."""

    experiment_id = "fig13a"
    title = "Impact of concurrency (512 MiB per container)"
    paper_reference = "Fig. 13a: reductions 46.7% (c=10) -> 65.6% (c=200)."

    def _cells(self, quick, seed):
        return [
            cell
            for concurrency in concurrency_sweep(quick)
            for cell in _pair_cells(concurrency, None, seed)
        ]

    def _execute(self, quick, seed):
        series = []
        for concurrency in concurrency_sweep(quick):
            point = self._pair(concurrency, None, seed)
            point["concurrency"] = concurrency
            series.append(point)
        rows = [
            (s["concurrency"], s["vanilla_mean"], s["fastiov_mean"],
             pct(s["reduction"]))
            for s in series
        ]
        text = format_table(
            ["concurrency", "vanilla mean (s)", "fastiov mean (s)",
             "reduction"],
            rows, title="Fig. 13a — concurrency sweep",
        )
        comparisons = [
            Comparison("reduction at lowest concurrency", "46.7% (c=10)",
                       pct(series[0]["reduction"])),
            Comparison("reduction at highest concurrency", "65.6% (c=200)",
                       f"{pct(series[-1]['reduction'])} "
                       f"(c={series[-1]['concurrency']})"),
            Comparison(
                "reduction grows with concurrency", "yes",
                "yes" if series[-1]["reduction"] > series[0]["reduction"]
                else "NO",
            ),
        ]
        return {"series": series}, text, comparisons


class Fig13b(_PairedExperiment):
    """Regenerates Fig. 13b (memory sweep)."""

    experiment_id = "fig13b"
    title = "Impact of per-container memory (c=50)"
    paper_reference = (
        "Fig. 13b: 512 MiB -> 2 GiB raises vanilla +60.5%, FastIOV +21.5%."
    )

    def _cells(self, quick, seed):
        concurrency = 20 if quick else 50
        return [
            cell
            for memory_bytes in memory_sweep(quick)
            for cell in _pair_cells(concurrency, memory_bytes, seed)
        ]

    def _execute(self, quick, seed):
        concurrency = 20 if quick else 50
        series = []
        for memory_bytes in memory_sweep(quick):
            point = self._pair(concurrency, memory_bytes, seed)
            point["memory_mib"] = memory_bytes // MIB
            series.append(point)
        rows = [
            (s["memory_mib"], s["vanilla_mean"], s["fastiov_mean"],
             pct(s["reduction"]))
            for s in series
        ]
        text = format_table(
            ["memory (MiB)", "vanilla mean (s)", "fastiov mean (s)",
             "reduction"],
            rows, title=f"Fig. 13b — memory sweep (c={concurrency})",
        )
        vanilla_rise = series[-1]["vanilla_mean"] / series[0]["vanilla_mean"] - 1
        fastiov_rise = series[-1]["fastiov_mean"] / series[0]["fastiov_mean"] - 1
        comparisons = [
            Comparison("vanilla increase 512MiB->2GiB", "+60.5%",
                       f"+{vanilla_rise * 100:.1f}%"),
            Comparison("FastIOV increase 512MiB->2GiB", "+21.5%",
                       f"+{fastiov_rise * 100:.1f}%"),
            Comparison("FastIOV less memory-sensitive than vanilla", "yes",
                       "yes" if fastiov_rise < vanilla_rise else "NO"),
            Comparison(
                "reduction ratio grows with memory", "yes",
                "yes" if series[-1]["reduction"] > series[0]["reduction"]
                else "NO",
            ),
        ]
        return {"series": series, "concurrency": concurrency}, text, comparisons


class Fig13c(_PairedExperiment):
    """Regenerates Fig. 13c (fully loaded server)."""

    experiment_id = "fig13c"
    title = "Fully loaded server (resources evenly divided)"
    paper_reference = (
        "Fig. 13c: reductions across all settings; largest (79.5%) at "
        "c=10, ~65.7% at c=200."
    )

    def _cells(self, quick, seed):
        return [
            cell
            for concurrency in concurrency_sweep(quick)
            for cell in _pair_cells(
                concurrency, fully_loaded_memory(concurrency), seed
            )
        ]

    def _execute(self, quick, seed):
        series = []
        for concurrency in concurrency_sweep(quick):
            memory_bytes = fully_loaded_memory(concurrency)
            point = self._pair(concurrency, memory_bytes, seed)
            point["concurrency"] = concurrency
            point["memory_mib"] = memory_bytes // MIB
            series.append(point)
        rows = [
            (s["concurrency"], s["memory_mib"], s["vanilla_mean"],
             s["fastiov_mean"], pct(s["reduction"]))
            for s in series
        ]
        text = format_table(
            ["concurrency", "mem/ctr (MiB)", "vanilla mean (s)",
             "fastiov mean (s)", "reduction"],
            rows, title="Fig. 13c — fully loaded server",
        )
        comparisons = [
            Comparison("reduction at c=10 (fully loaded)", "79.5%",
                       pct(series[0]["reduction"])),
            Comparison(
                "reduction at max concurrency", "~65.7% (c=200)",
                f"{pct(series[-1]['reduction'])} "
                f"(c={series[-1]['concurrency']})",
            ),
            Comparison(
                "reduction most pronounced at low concurrency", "yes",
                "yes" if series[0]["reduction"] >= series[-1]["reduction"]
                else "NO",
            ),
        ]
        return {"series": series}, text, comparisons
