"""Fig. 14: bottleneck differences with a software CNI (IPvtap).

Paper claims: IPvtap starts faster than vanilla SR-IOV (no passthrough
setup) but FastIOV beats it — 41.3% lower total and 31.8% lower average
startup time — and IPvtap's deficiency concentrates in `addCNI` (RTNL
contention) and `cgroup` operations.
"""

from repro.experiments.base import Comparison, Experiment, pct, reduction
from repro.experiments.runs import launch_preset, main_concurrency
from repro.metrics.reporting import format_table


class Fig14(Experiment):
    """Regenerates Fig. 14 (see module docstring for the claims)."""

    experiment_id = "fig14"
    title = "FastIOV vs software CNI (IPvtap)"
    paper_reference = (
        "Fig. 14: FastIOV -41.3% total / -31.8% average vs IPvtap; "
        "IPvtap bottlenecked by addCNI + cgroup."
    )

    def _execute(self, quick, seed):
        concurrency = main_concurrency(quick)
        _h1, ipvtap = launch_preset("ipvtap", concurrency, seed=seed)
        _h2, fastiov = launch_preset("fastiov", concurrency, seed=seed)
        _h3, vanilla = launch_preset("vanilla", concurrency, seed=seed)

        def totals(result):
            d = result.startup_times()
            makespan = max(r.t_ready for r in result.records) - min(
                r.t_start for r in result.records
            )
            return d.mean, makespan

        ipvtap_mean, ipvtap_total = totals(ipvtap)
        fastiov_mean, fastiov_total = totals(fastiov)
        vanilla_mean, _ = totals(vanilla)

        breakdown_steps = ("addCNI", "0-cgroup", "2-virtiofs", "guest-boot")
        rows = []
        for label, result in (("ipvtap", ipvtap), ("fastiov", fastiov)):
            mean = result.startup_times().mean
            rows.append(
                (label, mean)
                + tuple(result.mean_step_time(step) for step in breakdown_steps)
            )
        text = format_table(
            ("solution", "mean (s)") + breakdown_steps, rows,
            title=f"Fig. 14 — FastIOV vs IPvtap (c={concurrency})",
        )

        ipvtap_cni_cgroup = (
            ipvtap.mean_step_time("addCNI") + ipvtap.mean_step_time("0-cgroup")
        )
        comparisons = [
            Comparison("FastIOV avg below IPvtap", "31.8%",
                       pct(reduction(ipvtap_mean, fastiov_mean))),
            Comparison("FastIOV total (makespan) below IPvtap", "41.3%",
                       pct(reduction(ipvtap_total, fastiov_total))),
            Comparison("IPvtap faster than vanilla SR-IOV", "yes",
                       "yes" if ipvtap_mean < vanilla_mean else "NO"),
            Comparison(
                "addCNI+cgroup dominate IPvtap's deficiency", ">50%",
                pct(ipvtap_cni_cgroup
                    / max(ipvtap_mean - fastiov_mean, 1e-9)),
                note="share of the IPvtap-FastIOV gap",
            ),
        ]
        data = {
            "ipvtap_mean": ipvtap_mean, "fastiov_mean": fastiov_mean,
            "ipvtap_total": ipvtap_total, "fastiov_total": fastiov_total,
            "concurrency": concurrency,
        }
        return data, text, comparisons
