"""Fig. 15: serverless application performance at c=200 (§6.6).

Paper claims: across Image/Compression/Scientific/Inference, FastIOV
reduces the average task completion time by 12.1–53.5% and the 99th
percentile by 20.3–53.7% vs vanilla, with the reduction ratio
*decreasing* from Image to Inference (longer tasks dilute the startup
share).
"""

from repro.experiments.base import Comparison, Experiment, pct, reduction
from repro.experiments.runs import launch_preset, main_concurrency
from repro.metrics.reporting import format_table
from repro.workloads.serverless import make_app

APPS = ("image", "compression", "scientific", "inference")


def run_apps(concurrency, seed, presets=("vanilla", "fastiov"),
             memory_bytes=None):
    """TCT distributions per (app, preset)."""
    out = {}
    for app_name in APPS:
        for preset in presets:
            _host, result = launch_preset(
                preset, concurrency, seed=seed, memory_bytes=memory_bytes,
                app_factory=lambda index: make_app(app_name),
            )
            out[(app_name, preset)] = result.task_completion_times(
                f"{app_name}/{preset}"
            )
    return out


class Fig15(Experiment):
    """Regenerates Fig. 15 (see module docstring for the claims)."""

    experiment_id = "fig15"
    title = "Serverless task completion time distributions"
    paper_reference = (
        "Fig. 15: avg reductions 12.1-53.5%, p99 20.3-53.7%, decreasing "
        "Image -> Inference."
    )

    def _execute(self, quick, seed):
        concurrency = main_concurrency(quick)
        tcts = run_apps(concurrency, seed)

        rows = []
        avg_reductions = []
        p99_reductions = []
        for app_name in APPS:
            vanilla = tcts[(app_name, "vanilla")]
            fastiov = tcts[(app_name, "fastiov")]
            avg_red = reduction(vanilla.mean, fastiov.mean)
            p99_red = reduction(vanilla.p99, fastiov.p99)
            avg_reductions.append(avg_red)
            p99_reductions.append(p99_red)
            rows.append((app_name, vanilla.mean, fastiov.mean, pct(avg_red),
                         vanilla.p99, fastiov.p99, pct(p99_red)))
        text = format_table(
            ["app", "vanilla avg (s)", "fastiov avg (s)", "avg red.",
             "vanilla p99 (s)", "fastiov p99 (s)", "p99 red."],
            rows,
            title=f"Fig. 15 — task completion times (c={concurrency})",
        )

        comparisons = [
            Comparison(
                "avg TCT reduction range", "12.1%-53.5%",
                f"{pct(min(avg_reductions))}-{pct(max(avg_reductions))}",
            ),
            Comparison(
                "p99 TCT reduction range", "20.3%-53.7%",
                f"{pct(min(p99_reductions))}-{pct(max(p99_reductions))}",
            ),
            Comparison(
                "reduction decreases Image -> Inference", "yes",
                "yes" if avg_reductions[0] > avg_reductions[-1] else "NO",
            ),
        ]
        data = {
            "tcts": {f"{a}/{p}": d.summary() for (a, p), d in tcts.items()},
            "avg_reductions": dict(zip(APPS, avg_reductions)),
            "p99_reductions": dict(zip(APPS, p99_reductions)),
            "concurrency": concurrency,
        }
        return data, text, comparisons
