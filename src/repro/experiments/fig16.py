"""Fig. 16: serverless apps under varying conditions (12 panels).

Panels a–d: average TCT vs concurrency per app; gain grows with
concurrency.  Panels e–h: TCT vs per-container resources at c=50;
FastIOV's TCT stays flat (Image/Compression) or decreases
(Scientific/Inference) while the gain grows.  Panels i–l: fully loaded
server; reductions across all settings, most pronounced at low
concurrency.
"""

from repro.experiments.base import Comparison, Experiment, pct, reduction
from repro.experiments.runs import (
    concurrency_sweep,
    fully_loaded_memory,
    launch_preset,
    memory_sweep,
)
from repro.metrics.reporting import format_table
from repro.spec import MIB
from repro.workloads.serverless import make_app

APPS = ("image", "compression", "scientific", "inference")


def _tct_pair(app_name, concurrency, memory_bytes, seed):
    means = {}
    for preset in ("vanilla", "fastiov"):
        _host, result = launch_preset(
            preset, concurrency, seed=seed, memory_bytes=memory_bytes,
            app_factory=lambda index: make_app(app_name),
        )
        means[preset] = result.task_completion_times().mean
    return means["vanilla"], means["fastiov"]


class Fig16(Experiment):
    """Regenerates Fig. 16's twelve panels (see module docstring)."""

    experiment_id = "fig16"
    title = "Serverless apps: concurrency / resources / fully loaded"
    paper_reference = (
        "Fig. 16a-l: (i) gain grows with concurrency; (ii) gain grows "
        "with per-container resources, FastIOV TCT flat or decreasing; "
        "(iii) fully loaded: reduction most pronounced at low concurrency."
    )

    def _execute(self, quick, seed):
        apps = APPS[:2] if quick else APPS
        panels = {}

        # -- a-d: concurrency sweep --------------------------------------
        for app_name in apps:
            series = []
            for concurrency in concurrency_sweep(quick):
                vanilla, fastiov = _tct_pair(app_name, concurrency, None, seed)
                series.append({
                    "x": concurrency, "vanilla": vanilla, "fastiov": fastiov,
                    "r_ratio": reduction(vanilla, fastiov),
                })
            panels[f"concurrency/{app_name}"] = series

        # -- e-h: resource sweep at c=50 ----------------------------------
        resource_c = 20 if quick else 50
        for app_name in apps:
            series = []
            for memory_bytes in memory_sweep(quick):
                vanilla, fastiov = _tct_pair(
                    app_name, resource_c, memory_bytes, seed
                )
                series.append({
                    "x": memory_bytes // MIB, "vanilla": vanilla,
                    "fastiov": fastiov, "r_ratio": reduction(vanilla, fastiov),
                })
            panels[f"resources/{app_name}"] = series

        # -- i-l: fully loaded server --------------------------------------
        for app_name in apps:
            series = []
            for concurrency in concurrency_sweep(quick):
                memory_bytes = fully_loaded_memory(concurrency)
                vanilla, fastiov = _tct_pair(
                    app_name, concurrency, memory_bytes, seed
                )
                series.append({
                    "x": concurrency, "vanilla": vanilla, "fastiov": fastiov,
                    "r_ratio": reduction(vanilla, fastiov),
                })
            panels[f"fully-loaded/{app_name}"] = series

        # -- render ----------------------------------------------------------
        blocks = []
        for panel, series in panels.items():
            rows = [
                (s["x"], s["vanilla"], s["fastiov"], pct(s["r_ratio"]))
                for s in series
            ]
            blocks.append(format_table(
                ["x", "vanilla TCT (s)", "fastiov TCT (s)", "R-ratio"],
                rows, title=f"Fig. 16 [{panel}]",
            ))
        text = "\n\n".join(blocks)

        # -- claims -----------------------------------------------------------
        def trend_ok(prefix, check):
            return all(check(panels[f"{prefix}/{app}"]) for app in apps)

        comparisons = [
            Comparison(
                "(a-d) gain grows with concurrency", "yes",
                "yes" if trend_ok(
                    "concurrency",
                    lambda s: max(p["r_ratio"] for p in s[1:])
                    > s[0]["r_ratio"],
                ) else "NO",
                note=(
                    "checked low-concurrency vs peak; at the very top of "
                    "the sweep, compute-heavy apps can saturate the CPU "
                    "and flatten the gain"
                ),
            ),
            Comparison(
                "(e-h) gain grows with per-container resources", "yes",
                "yes" if trend_ok(
                    "resources",
                    lambda s: s[-1]["r_ratio"] > s[0]["r_ratio"],
                ) else "NO",
            ),
            Comparison(
                "(e-h) FastIOV TCT flat or decreasing with resources",
                "yes",
                "yes" if trend_ok(
                    "resources",
                    lambda s: s[-1]["fastiov"] <= s[0]["fastiov"] * 1.10,
                ) else "NO",
            ),
            Comparison(
                "(i-l) fully-loaded reduction most pronounced at low "
                "concurrency", "yes",
                "yes" if trend_ok(
                    "fully-loaded",
                    lambda s: s[0]["r_ratio"] >= s[-1]["r_ratio"] - 0.02,
                ) else "NO",
            ),
        ]
        return {"panels": panels}, text, comparisons
