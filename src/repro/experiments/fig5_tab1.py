"""Fig. 5 + Tab. 1: breakdown of the concurrent startup timeline.

Fig. 5 shows, per container, where time goes during a 200-way vanilla
startup; Tab. 1 summarizes each step's share of the average and 99th
percentile startup time.  Paper values (c=200, vanilla):

    step         avg%   p99%
    0-cgroup      2.9    2.3
    1-dma-ram    13.0   11.1
    2-virtiofs   13.3   13.6
    3-dma-image   5.6    4.3
    4-vfio-dev   48.1   59.0
    5-vf-driver   3.4    4.1
    VF-related   70.1   80.8
"""

from repro.experiments.base import Comparison, Experiment, pct
from repro.experiments.runs import launch_preset, main_concurrency
from repro.metrics.reporting import format_table
from repro.metrics.stats import percentile
from repro.metrics.timeline import PAPER_STEPS, VF_RELATED_STEPS

PAPER_PROPORTIONS = {
    "0-cgroup": (2.9, 2.3),
    "1-dma-ram": (13.0, 11.1),
    "2-virtiofs": (13.3, 13.6),
    "3-dma-image": (5.6, 4.3),
    "4-vfio-dev": (48.1, 59.0),
    "5-vf-driver": (3.4, 4.1),
}
PAPER_VF_RELATED = (70.1, 80.8)


def step_proportions(result):
    """(avg%, p99%) per step, plus the VF-related aggregate."""
    startups = result.startup_times()
    mean_total = startups.mean
    p99_total = startups.p99
    # p99 share: step time of the containers in the p99 neighbourhood,
    # approximated (as the paper does) by the mean step share among the
    # slowest 1% of containers.
    ordered = sorted(result.records, key=lambda r: r.startup_time)
    tail = ordered[max(0, int(len(ordered) * 0.99) - 1):]
    proportions = {}
    for step in PAPER_STEPS:
        avg_share = result.mean_step_time(step) / mean_total * 100
        tail_step = sum(r.step_time(step) for r in tail) / len(tail)
        tail_total = sum(r.startup_time for r in tail) / len(tail)
        proportions[step] = (avg_share, tail_step / tail_total * 100)
    vf_avg = sum(proportions[s][0] for s in VF_RELATED_STEPS)
    vf_p99 = sum(proportions[s][1] for s in VF_RELATED_STEPS)
    return proportions, (vf_avg, vf_p99)


class Fig5(Experiment):
    """Regenerates Fig. 5's per-container timeline (ASCII Gantt)."""

    experiment_id = "fig5"
    title = "Per-container timeline of time-consuming steps (vanilla)"
    paper_reference = (
        "Fig. 5: 4-vfio-dev dominates and grows nearly linearly across "
        "containers; fastest container ~3.8 s at c=200."
    )

    def _execute(self, quick, seed):
        concurrency = main_concurrency(quick)
        _host, result = launch_preset("vanilla", concurrency, seed=seed)
        # Sample a handful of containers across the sorted timeline.
        ordered = sorted(result.records, key=lambda r: r.startup_time)
        stride = max(1, len(ordered) // 10)
        sample_rows = []
        for record in ordered[::stride]:
            sample_rows.append(
                (record.container_id,
                 f"{record.startup_time:.2f}",
                 " ".join(
                     f"{step}:{record.step_time(step):.2f}"
                     for step in PAPER_STEPS
                     if record.step_time(step) > 0.01
                 ))
            )
        from repro.metrics.plots import ascii_gantt

        text = "\n\n".join([
            format_table(
                ["container", "startup (s)", "step spans (s)"],
                sample_rows,
                title=f"Fig. 5 — timeline sample (vanilla, c={concurrency})",
            ),
            ascii_gantt(
                [(r.container_id, r.timeline()) for r in ordered[::stride]],
                PAPER_STEPS,
            ),
        ])

        # The signature behaviour: vfio-dev wait grows ~linearly with
        # the container's position in the open queue.
        vfio_sorted = sorted(r.step_time("4-vfio-dev") for r in result.records)
        n = len(vfio_sorted)
        first_q = sum(vfio_sorted[: n // 4]) / (n // 4)
        last_q = sum(vfio_sorted[-(n // 4):]) / (n // 4)
        comparisons = [
            Comparison(
                "4-vfio-dev dominates total time", "yes",
                "yes" if result.mean_step_time("4-vfio-dev")
                == max(result.mean_step_time(s) for s in PAPER_STEPS) else "NO",
            ),
            Comparison(
                "vfio-dev wait grows across containers (Q4/Q1)",
                "near-linear growth", f"{last_q / max(first_q, 1e-9):.1f}x",
            ),
            Comparison(
                "fastest container startup (s)", "3.8 (c=200)",
                f"{result.startup_times().minimum:.2f} (c={concurrency})",
            ),
        ]
        data = {
            "concurrency": concurrency,
            "timelines": [r.timeline() for r in ordered[::stride]],
            "vfio_dev_sorted": vfio_sorted,
        }
        return data, text, comparisons


class Tab1(Experiment):
    """Regenerates Tab. 1's step-proportion table."""

    experiment_id = "tab1"
    title = "Time proportions of time-consuming steps (vanilla)"
    paper_reference = "Tab. 1 (see PAPER_PROPORTIONS)."

    def _execute(self, quick, seed):
        concurrency = main_concurrency(quick)
        _host, result = launch_preset("vanilla", concurrency, seed=seed)
        proportions, vf_related = step_proportions(result)

        rows = []
        for step in PAPER_STEPS:
            avg_share, p99_share = proportions[step]
            paper_avg, paper_p99 = PAPER_PROPORTIONS[step]
            rows.append((step, f"{avg_share:.1f}", f"{paper_avg}",
                         f"{p99_share:.1f}", f"{paper_p99}"))
        rows.append(("VF-related (1,3,4,5)", f"{vf_related[0]:.1f}",
                     f"{PAPER_VF_RELATED[0]}", f"{vf_related[1]:.1f}",
                     f"{PAPER_VF_RELATED[1]}"))
        text = format_table(
            ["step", "avg% (meas)", "avg% (paper)", "p99% (meas)",
             "p99% (paper)"],
            rows, title=f"Tab. 1 — step proportions (vanilla, c={concurrency})",
        )

        comparisons = [
            Comparison(f"{step} share of avg", f"{PAPER_PROPORTIONS[step][0]}%",
                       pct(proportions[step][0] / 100))
            for step in PAPER_STEPS
        ]
        comparisons.append(
            Comparison("VF-related share of avg", "70.1%", pct(vf_related[0] / 100))
        )
        comparisons.append(
            Comparison("VF-related share of p99", "80.8%", pct(vf_related[1] / 100))
        )
        data = {"proportions": proportions, "vf_related": vf_related,
                "concurrency": concurrency}
        return data, text, comparisons
