"""§5: the SR-IOV CNI rebinding flaw (implementation experiment).

Paper claims: the upstream plugin, which binds each VF to the host
network driver at every launch and rebinds vfio-pci afterwards, takes
*several minutes* to start 200 secure containers; pre-binding VFs to
vfio-pci once (plus dummy interfaces) brings this to 16.2 s.
"""

from repro.experiments.base import Comparison, Experiment
from repro.experiments.runs import launch_preset, main_concurrency
from repro.metrics.reporting import format_table


class ImplRebind(Experiment):
    """Regenerates the §5 rebinding-flaw comparison."""

    experiment_id = "impl_rebind"
    title = "Upstream CNI rebinding flaw vs the pre-bind fix"
    paper_reference = (
        "§5: original plugin takes minutes at c=200; the fix reduces it "
        "to 16.2 s."
    )

    def _execute(self, quick, seed):
        concurrency = main_concurrency(quick)
        _h1, true_vanilla = launch_preset("true-vanilla", concurrency,
                                          seed=seed)
        _h2, vanilla = launch_preset("vanilla", concurrency, seed=seed)
        tv = true_vanilla.startup_times("true-vanilla")
        va = vanilla.startup_times("vanilla")
        tv_makespan = max(r.t_ready for r in true_vanilla.records)
        rebind_time = sum(
            r.step_time("bind-host-driver") + r.step_time("unbind-host-driver")
            + r.step_time("bind-vfio") + r.step_time("unbind-vfio")
            for r in true_vanilla.records
        ) / len(true_vanilla.records)

        rows = [
            ("true-vanilla (rebind flaw)", tv.mean, tv.p99, tv_makespan),
            ("vanilla (pre-bind fix)", va.mean, va.p99,
             max(r.t_ready for r in vanilla.records)),
        ]
        text = format_table(
            ["solution", "mean (s)", "p99 (s)", "makespan (s)"],
            rows, title=f"§5 — rebinding flaw (c={concurrency})",
        )
        comparisons = [
            Comparison(
                "upstream plugin startup scale", "minutes (c=200)",
                f"{tv_makespan / 60:.1f} min makespan "
                f"(c={concurrency})",
            ),
            Comparison(
                "fix brings mean to", "16.2 s",
                f"{va.mean:.1f} s",
            ),
            Comparison(
                "rebinding dominates the flawed startup", ">50%",
                f"{rebind_time / tv.mean * 100:.0f}% of mean",
            ),
        ]
        data = {
            "true_vanilla": tv.summary(), "vanilla": va.summary(),
            "makespan": tv_makespan, "concurrency": concurrency,
        }
        return data, text, comparisons
