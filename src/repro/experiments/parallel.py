"""Parallel, cached execution of experiment launch cells.

The figure experiments are embarrassingly parallel at the *cell* level:
each ``launch_preset(preset, concurrency, memory, seed)`` call builds
its own host and simulator and shares no state with any other cell.
:class:`CellRunner` exploits that — it collects an experiment's cells
up front, satisfies what it can from the result cache, and fans the
misses out over a ``multiprocessing`` pool.

Workers return a plain-JSON *summary* (startup distribution + VF-related
mean), never simulator objects, so results are cheap to pickle and safe
to cache.  Each worker recomputes nothing the parent already knows: the
jitter streams are seeded by CRC forks, so a cell's numbers are
identical whether it ran in-process, in a worker, or came from cache.
"""

import dataclasses
import multiprocessing
import os

from repro.experiments.cache import ResultCache, cell_key
from repro.experiments.runs import launch_preset
from repro.spec import PAPER_TESTBED

#: Environment variable providing the default worker count.
JOBS_ENV = "REPRO_JOBS"


@dataclasses.dataclass(frozen=True)
class Cell:
    """One independent launch: the unit of parallelism and caching.

    ``kind`` selects the cell body: "launch" is a single-host
    ``launch_preset`` run; "cluster" is a multi-host churn burst
    (``repro.cluster.churn.run_cluster_cell``) over ``hosts`` hosts;
    "churn" is the sustained single-host Poisson lifecycle study
    (``repro.experiments.churn.run_churn_cell``).

    Every field participates in the cache key (via :meth:`as_dict`):
    anything that can change a cell's semantics — including ``hosts``,
    ``placement``, ``shards``, and ``rate_per_s`` — must live here, not
    in runner state.  ``shards`` changes only wall-clock for round-robin
    and burst cells but changes teardown visibility for spread-arrival
    least-loaded cells, so it keys too.
    """

    preset: str
    concurrency: int
    memory_bytes: int = None
    seed: int = 0
    kind: str = "launch"
    hosts: int = 0
    placement: str = "least-loaded"
    shards: int = 1
    rate_per_s: float = 0.0
    #: Sharded sync protocol ("conservative" / "optimistic" / "auto").
    #: Results are byte-identical across modes — it keys the cache only
    #: because every field does, keeping the key derivation uniform.
    sync: str = "conservative"
    #: Fork-checkpoint cadence for optimistic sharded cells, in
    #: confirmed epochs (None = adaptive, 0 = disabled — rollback then
    #: replays from t=0).  Wall-clock only, byte-identical results; it
    #: keys the cache because every field does.
    checkpoint_every: int = None
    #: Record a flight-recorder trace (``repro.obs``) while running.
    #: Tracing never changes a cell's summary, but it keys the cache
    #: anyway (as_dict) so traced runs never serve or pollute the cache
    #: entries of untraced ones.
    trace: bool = False

    def as_dict(self):
        return dataclasses.asdict(self)


def summarize_launch(result):
    """Reduce a LaunchResult to the plain floats experiments consume."""
    summary = result.startup_times().summary()
    vf_times = result.vf_related_times()
    return {
        "count": summary["count"],
        "mean": summary["mean"],
        "p50": summary["p50"],
        "p99": summary["p99"],
        "min": summary["min"],
        "max": summary["max"],
        "vf_related_mean": sum(vf_times) / len(result.records),
    }


#: Engine statistics (:meth:`repro.sim.core.Simulator.wheel_stats`) of
#: the most recent :func:`run_cell` in this process.  Diagnostic only —
#: read by ``repro profile --hot`` after profiling a cell; never part
#: of a cell's summary, so caches and worker pipes are unaffected.
LAST_ENGINE_STATS = None

#: Flight-recorder bundle (``repro.obs`` tracks + metrics) of the most
#: recent *traced* :func:`run_cell` in this process, None otherwise.
#: Same contract as LAST_ENGINE_STATS: diagnostic side channel for the
#: CLI (``repro trace``), never part of a summary.
LAST_TRACE = None

#: Wall-clock telemetry snapshot (``repro.obs.runtime``) of the most
#: recent cluster :func:`run_cell` with runtime probes enabled
#: (``REPRO_RUNTIME_PROBES=1``), None otherwise.  Same contract as
#: LAST_TRACE: read by ``repro trace --wallclock`` and ``repro top``
#: after the run, never part of a summary.
LAST_TELEMETRY = None


def run_cell(cell):
    """Execute one cell in this process; returns its summary."""
    global LAST_ENGINE_STATS, LAST_TRACE, LAST_TELEMETRY
    stats = {}
    trace = {} if cell.trace else None
    telemetry = None
    if cell.kind == "cluster":
        from repro.cluster.churn import run_cluster_cell
        from repro.obs import runtime

        telemetry = {} if runtime.probes_enabled() else None
        summary = run_cluster_cell(
            cell.preset,
            cell.concurrency,
            hosts=cell.hosts,
            seed=cell.seed,
            placement=cell.placement,
            shards=cell.shards,
            rate_per_s=cell.rate_per_s,
            engine_stats=stats,
            trace=trace,
            sync=cell.sync,
            checkpoint_every=cell.checkpoint_every,
            telemetry=telemetry,
        )
    elif cell.kind == "churn":
        from repro.experiments.churn import run_churn_cell

        summary = run_churn_cell(
            cell.preset, cell.concurrency, cell.rate_per_s, cell.seed,
            engine_stats=stats, trace=trace,
        )
    else:
        recorder = None
        if cell.trace:
            from repro.obs.recorder import TraceRecorder

            recorder = TraceRecorder()
        host, result = launch_preset(
            cell.preset,
            cell.concurrency,
            memory_bytes=cell.memory_bytes,
            seed=cell.seed,
            trace=recorder,
        )
        stats.update(host.sim.wheel_stats())
        if recorder is not None:
            # launch_preset already finalized the host (which ingests the
            # wheel stats — a standalone host owns its simulator).
            trace = recorder.dump()
        summary = summarize_launch(result)
    LAST_ENGINE_STATS = stats or None
    LAST_TRACE = trace or None
    LAST_TELEMETRY = telemetry or None
    return summary


def _worker(cell):
    # Module-level so the pool can pickle it; echoes the cell back
    # because imap_unordered loses submission order.
    return cell, run_cell(cell)


def resolve_jobs(jobs):
    """Worker count: explicit argument, else $REPRO_JOBS, else 1."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "")
        jobs = int(env) if env else 1
    return max(1, int(jobs))


class CellRunner:
    """Runs cells with caching and an optional process pool.

    Args:
        jobs: Worker processes (None = ``$REPRO_JOBS`` or 1; 1 means
            everything runs in-process).
        cache: A :class:`ResultCache`, or None to disable caching.
        spec: HostSpec the cells run under (cache-key ingredient).
    """

    def __init__(self, jobs=None, cache=None, spec=None):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.spec = spec if spec is not None else PAPER_TESTBED
        self._summaries = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def prefetch(self, cells):
        """Compute (or load) every cell's summary before first use.

        This is where the fan-out happens: call it with the full cell
        list so misses run concurrently instead of one by one.
        """
        misses = []
        for cell in cells:
            if cell in self._summaries:
                continue
            hit = self._cache_get(cell)
            if hit is not None:
                self._summaries[cell] = hit
            elif cell not in misses:
                misses.append(cell)
        if not misses:
            return self
        # A sharded cell fans out its *own* worker processes (one per
        # shard), and pool workers are daemonic so they could not fork
        # them — keep sharded cells in the parent, pool the rest.
        pooled = [cell for cell in misses if cell.shards <= 1]
        sharded = [cell for cell in misses if cell.shards > 1]
        if self.jobs > 1 and len(pooled) > 1:
            workers = min(self.jobs, len(pooled))
            with multiprocessing.get_context("fork").Pool(workers) as pool:
                for cell, summary in pool.imap_unordered(_worker, pooled):
                    self._store(cell, summary)
        else:
            for cell in pooled:
                self._store(cell, run_cell(cell))
        for cell in sharded:
            self._store(cell, run_cell(cell))
        return self

    def summary(self, preset, concurrency, memory_bytes=None, seed=0):
        """The summary for one single-host launch cell."""
        return self.cell_summary(Cell(preset, concurrency, memory_bytes, seed))

    def cell_summary(self, cell):
        """The summary for any cell (computed now if not prefetched)."""
        if cell not in self._summaries:
            hit = self._cache_get(cell)
            if hit is not None:
                self._summaries[cell] = hit
            else:
                self._store(cell, run_cell(cell))
        return self._summaries[cell]

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------
    def _key(self, cell):
        return cell_key(cell.as_dict(), self.spec)

    def _cache_get(self, cell):
        if self.cache is None:
            return None
        hit = self.cache.get(self._key(cell))
        if hit is not None:
            self.cache_hits += 1
        return hit

    def _store(self, cell, summary):
        self._summaries[cell] = summary
        self.cache_misses += 1
        if self.cache is not None:
            self.cache.put(self._key(cell), cell.as_dict(), summary)

    def __repr__(self):
        return (
            f"<CellRunner jobs={self.jobs} cells={len(self._summaries)} "
            f"hits={self.cache_hits} misses={self.cache_misses}>"
        )


def default_cache(use_cache=None):
    """The cache to use given an explicit flag or the environment.

    ``use_cache=None`` consults ``$REPRO_CACHE`` (off unless set to a
    non-empty value other than "0" — library and test runs stay
    hermetic; the CLI turns caching on explicitly).
    """
    if use_cache is None:
        use_cache = os.environ.get("REPRO_CACHE", "") not in ("", "0")
    return ResultCache() if use_cache else None
