"""Registry mapping experiment ids to classes."""

from repro.experiments.churn import Churn
from repro.experiments.dataplane import Dataplane
from repro.experiments.fig1 import Fig1
from repro.experiments.fig5_tab1 import Fig5, Tab1
from repro.experiments.fig11 import Fig11
from repro.experiments.fig12 import Fig12
from repro.experiments.fig13 import Fig13a, Fig13b, Fig13c
from repro.experiments.fig14 import Fig14
from repro.experiments.fig15 import Fig15
from repro.experiments.fig16 import Fig16
from repro.experiments.impl_rebind import ImplRebind
from repro.experiments.scale import Scale
from repro.experiments.sec65 import Sec65
from repro.experiments.vdpa import Vdpa
from repro.experiments.viommu import Viommu

ALL_EXPERIMENTS = {
    cls.experiment_id: cls
    for cls in (
        Fig1, Fig5, Tab1, Fig11, Fig12, Fig13a, Fig13b, Fig13c,
        Fig14, Sec65, Fig15, Fig16, ImplRebind,
        # Extensions beyond the paper's figures:
        Vdpa, Churn, Dataplane, Viommu, Scale,
    )
}


def list_experiments():
    """(id, title) pairs in paper order."""
    return [(exp_id, cls.title) for exp_id, cls in ALL_EXPERIMENTS.items()]


def get_experiment(experiment_id):
    """Instantiate an experiment by id."""
    try:
        return ALL_EXPERIMENTS[experiment_id]()
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(ALL_EXPERIMENTS)}"
        ) from None
