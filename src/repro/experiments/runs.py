"""Shared launch helpers for experiments."""

from repro.core import build_host
from repro.spec import GIB, PAPER_TESTBED


def launch_preset(preset, concurrency, memory_bytes=None, seed=0,
                  app_factory=None, spec=None, trace=None):
    """Build a fresh host for ``preset`` and launch ``concurrency``
    containers; returns (host, LaunchResult).

    ``trace`` is an optional flight recorder
    (:class:`repro.obs.recorder.TraceRecorder`); tracing never changes
    the launch results."""
    spec = spec if spec is not None else PAPER_TESTBED
    host = build_host(preset, spec=spec, seed=seed, trace=trace)
    result = host.launch(
        concurrency, memory_bytes=memory_bytes, app_factory=app_factory
    )
    host.finalize_trace()
    return host, result


def fully_loaded_memory(concurrency, spec=None, headroom=0.95):
    """Per-container memory when the server is evenly divided (§6.3).

    Budgets the per-VM image region (which vanilla DMA-maps as real
    frames) and a host margin before dividing; the result is
    page-aligned.
    """
    spec = spec if spec is not None else PAPER_TESTBED
    budget = spec.memory_bytes * headroom - concurrency * spec.image_bytes
    budget -= 4 * GIB  # host page cache / daemon overheads
    per_container = int(budget / concurrency)
    per_container -= per_container % spec.page_size
    cap = 20 * GIB  # a microVM larger than this is unrealistic for FaaS
    return max(spec.page_size, min(per_container, cap))


def concurrency_sweep(quick):
    """The Fig. 1 / Fig. 13a / Fig. 13c concurrency axis."""
    if quick:
        return (10, 50)
    return (10, 50, 100, 150, 200)


def memory_sweep(quick):
    """The Fig. 13b memory axis (bytes)."""
    if quick:
        return (512 * 1024 * 1024, 2 * GIB)
    return (512 * 1024 * 1024, 1 * GIB, int(1.5 * GIB), 2 * GIB)


def main_concurrency(quick):
    """The paper's headline concurrency (200; 60 in quick mode)."""
    return 60 if quick else 200
