"""Extension experiment: cluster-scale startup storms.

The paper stops at 200 concurrent startups on one server; production
serverless platforms (the Quark regime) see bursts orders of magnitude
larger, spread across a fleet (the LiveStack regime of cluster-scale
full-stack simulation).  This experiment sweeps burst size up to 10,000
concurrent secure-container startups over a simulated cluster and plots
the startup-latency scaling curve for the vanilla baseline vs FastIOV.

Two claims are exercised:

* FastIOV's per-host startup reduction persists at cluster scale — the
  bottlenecks it removes are per-host, so spreading the burst does not
  wash the gain out.
* The simulator itself sustains the workload: a 10k-startup churn run
  (start + teardown, VFs recycled) is a single-process event stream of
  tens of millions of events, which is what the engine's slotted hot
  paths and same-timestamp batch dispatch exist for.
"""

from repro.experiments.base import Comparison, Experiment, pct, reduction
from repro.experiments.parallel import Cell
from repro.metrics.reporting import format_table
from repro.spec import PAPER_TESTBED

PRESETS = ("vanilla", "fastiov")


class Scale(Experiment):
    """Startup latency vs burst size across a simulated cluster."""

    experiment_id = "scale"
    title = "Cluster-scale startup storm: latency vs concurrency (extension)"
    paper_reference = (
        "Extension (no paper figure): the paper's Fig. 13a concurrency "
        "sweep stops at 200 on one host; this extends it to 10,000 "
        "startups across a cluster.  Expectations: FastIOV's reduction "
        "persists at every scale, per-host behaviour matches the "
        "single-host experiments at the same per-host load, VF pools "
        "fully recycle."
    )

    @staticmethod
    def _hosts(quick):
        return 8 if quick else 48

    @staticmethod
    def _sweep(quick):
        if quick:
            return (100, 300)
        return (500, 1000, 2000, 5000, 10000)

    def _cells(self, quick, seed):
        hosts = self._hosts(quick)
        return [
            Cell(preset, concurrency, None, seed, kind="cluster", hosts=hosts)
            for preset in PRESETS
            for concurrency in self._sweep(quick)
        ]

    def _execute(self, quick, seed):
        hosts = self._hosts(quick)
        sweep = self._sweep(quick)
        series = {preset: [] for preset in PRESETS}
        for preset in PRESETS:
            for concurrency in sweep:
                summary = self._cell_summary(
                    Cell(preset, concurrency, None, seed,
                         kind="cluster", hosts=hosts)
                )
                series[preset].append(
                    {"concurrency": concurrency, **summary}
                )

        rows = []
        for index, concurrency in enumerate(sweep):
            vanilla = series["vanilla"][index]
            fastiov = series["fastiov"][index]
            rows.append((
                concurrency,
                f"{concurrency / hosts:.0f}",
                f"{vanilla['mean']:.3f}",
                f"{vanilla['p99']:.3f}",
                f"{fastiov['mean']:.3f}",
                f"{fastiov['p99']:.3f}",
                pct(reduction(vanilla["mean"], fastiov["mean"])),
            ))
        text = format_table(
            ["burst", "per-host", "vanilla mean (s)", "vanilla p99 (s)",
             "fastiov mean (s)", "fastiov p99 (s)", "reduction"],
            rows,
            title=(f"Scale — startup latency vs burst size "
                   f"({hosts} hosts, least-loaded placement)"),
        )

        top = sweep[-1]
        van_top = series["vanilla"][-1]
        fio_top = series["fastiov"][-1]
        vf_pool = hosts * PAPER_TESTBED.nic_max_vfs
        reductions = [
            reduction(series["vanilla"][i]["mean"], series["fastiov"][i]["mean"])
            for i in range(len(sweep))
        ]
        comparisons = [
            Comparison(
                f"{top}-startup burst feasibility",
                "completes (beyond any single 256-VF host)",
                f"completed; peak in-flight {fio_top['peak_in_flight']}",
            ),
            Comparison(
                f"startup reduction at burst {top}",
                "expected: persists at cluster scale",
                pct(reductions[-1]),
            ),
            Comparison(
                "reduction stability across the sweep",
                "expected: roughly flat",
                f"{pct(min(reductions))} .. {pct(max(reductions))}",
            ),
            Comparison(
                "VF pools fully recycled after churn",
                f"{vf_pool} free",
                f"vanilla={van_top['free_vfs_total']}, "
                f"fastiov={fio_top['free_vfs_total']}",
            ),
            Comparison(
                f"p99 growth vanilla, burst {sweep[0]} -> {top}",
                "expected: ~linear in per-host load",
                f"{van_top['p99'] / series['vanilla'][0]['p99']:.2f}x "
                f"for {top / sweep[0]:.0f}x burst",
            ),
        ]
        data = {
            "hosts": hosts,
            "sweep": list(sweep),
            "series": series,
        }
        return data, text, comparisons
