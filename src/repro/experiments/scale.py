"""Extension experiment: cluster-scale startup storms.

The paper stops at 200 concurrent startups on one server; production
serverless platforms (the Quark regime) see bursts orders of magnitude
larger, spread across a fleet (the LiveStack regime of cluster-scale
full-stack simulation).  This experiment sweeps burst size up to 10,000
concurrent secure-container startups over a simulated cluster and plots
the startup-latency scaling curve for the vanilla baseline vs FastIOV.

Two claims are exercised:

* FastIOV's per-host startup reduction persists at cluster scale — the
  bottlenecks it removes are per-host, so spreading the burst does not
  wash the gain out.
* The simulator itself sustains the workload: a 10k-startup churn run
  (start + teardown, VFs recycled) is an event stream of tens of
  millions of events.  With ``--shards K`` the cluster is partitioned
  over K per-shard simulators in their own worker processes
  (:mod:`repro.cluster.sharded`); the placement protocol keeps the
  result data byte-identical to the single-process run, so sharding is
  a pure wall-clock knob here.

Knobs (``repro run scale --hosts N --placement P --shards K --sync M``
or :meth:`Experiment.configure`): ``hosts`` (default 8 quick / 48
full), ``placement`` ("least-loaded" default, or "round-robin"),
``shards`` (default 1 = single-process), ``sync`` (sharded barrier
protocol: "conservative" default, "optimistic", "hierarchical" —
optimistic workers under a relay tree with a pipelined coordinator —
or "auto", which picks hierarchical), ``rate``
(arrival rate per second; 0 = the paper's simultaneous burst —
positive rates spread arrivals and exercise the epoch protocol the
sync knob selects), ``checkpoint_every`` (optimistic workers'
fork-checkpoint cadence in confirmed epochs; empty = adaptive,
0 = disabled — wall-clock only, results are byte-identical).
"""

from repro.experiments.base import Comparison, Experiment, pct, reduction
from repro.experiments.parallel import Cell
from repro.metrics.reporting import format_table
from repro.spec import PAPER_TESTBED

PRESETS = ("vanilla", "fastiov")


def host_peak_spread(summary):
    """Per-host peak load as a compact ``min..max`` skew indicator."""
    peaks = summary["peak_load_per_host"]
    low, high = min(peaks), max(peaks)
    return f"{low}" if low == high else f"{low}..{high}"


class Scale(Experiment):
    """Startup latency vs burst size across a simulated cluster."""

    experiment_id = "scale"
    title = "Cluster-scale startup storm: latency vs concurrency (extension)"
    paper_reference = (
        "Extension (no paper figure): the paper's Fig. 13a concurrency "
        "sweep stops at 200 on one host; this extends it to 10,000 "
        "startups across a cluster.  Expectations: FastIOV's reduction "
        "persists at every scale, per-host behaviour matches the "
        "single-host experiments at the same per-host load, VF pools "
        "fully recycle."
    )

    def _hosts(self, quick):
        return self.option("hosts") or (8 if quick else 48)

    def _placement(self):
        return self.option("placement", "least-loaded")

    def _rate(self):
        return float(self.option("rate", 0.0) or 0.0)

    def _sync(self):
        return self.option("sync", "conservative")

    def _checkpoint_every(self):
        value = self.option("checkpoint_every", None)
        return None if value in (None, "") else int(value)

    def _shards(self, hosts):
        # Resolved here (not just in run_cluster_cell) so the resolved
        # count lands in the Cell — and therefore in cache keys and the
        # report header — instead of the literal "auto".
        from repro.cluster.sharded import resolve_shards

        return resolve_shards(
            self.option("shards", 1), hosts, placement=self._placement(),
            rate_per_s=self._rate(), sync=self._sync(),
        )

    @staticmethod
    def _sweep(quick):
        if quick:
            return (100, 300)
        return (500, 1000, 2000, 5000, 10000)

    def _cells(self, quick, seed):
        hosts = self._hosts(quick)
        placement = self._placement()
        shards = self._shards(hosts)
        return [
            Cell(preset, concurrency, None, seed, kind="cluster",
                 hosts=hosts, placement=placement, shards=shards,
                 rate_per_s=self._rate(), sync=self._sync(),
                 checkpoint_every=self._checkpoint_every())
            for preset in PRESETS
            for concurrency in self._sweep(quick)
        ]

    def _execute(self, quick, seed):
        hosts = self._hosts(quick)
        placement = self._placement()
        shards = self._shards(hosts)
        sweep = self._sweep(quick)
        series = {preset: [] for preset in PRESETS}
        for preset in PRESETS:
            for concurrency in sweep:
                summary = self._cell_summary(
                    Cell(preset, concurrency, None, seed,
                         kind="cluster", hosts=hosts,
                         placement=placement, shards=shards,
                         rate_per_s=self._rate(), sync=self._sync(),
                         checkpoint_every=self._checkpoint_every())
                )
                series[preset].append(
                    {"concurrency": concurrency, **summary}
                )

        rows = []
        for index, concurrency in enumerate(sweep):
            vanilla = series["vanilla"][index]
            fastiov = series["fastiov"][index]
            rows.append((
                concurrency,
                f"{concurrency / hosts:.0f}",
                host_peak_spread(fastiov),
                f"{vanilla['mean']:.3f}",
                f"{vanilla['p99']:.3f}",
                f"{fastiov['mean']:.3f}",
                f"{fastiov['p99']:.3f}",
                pct(reduction(vanilla["mean"], fastiov["mean"])),
            ))
        sharding = f", {shards} shards" if shards > 1 else ""
        text = format_table(
            ["burst", "per-host", "host peak", "vanilla mean (s)",
             "vanilla p99 (s)", "fastiov mean (s)", "fastiov p99 (s)",
             "reduction"],
            rows,
            title=(f"Scale — startup latency vs burst size "
                   f"({hosts} hosts, {placement} placement{sharding})"),
        )

        top = sweep[-1]
        van_top = series["vanilla"][-1]
        fio_top = series["fastiov"][-1]
        vf_pool = hosts * PAPER_TESTBED.nic_max_vfs
        reductions = [
            reduction(series["vanilla"][i]["mean"], series["fastiov"][i]["mean"])
            for i in range(len(sweep))
        ]
        top_peaks = fio_top["peak_load_per_host"]
        comparisons = [
            Comparison(
                f"{top}-startup burst feasibility",
                "completes (beyond any single 256-VF host)",
                f"completed; peak in-flight {fio_top['peak_in_flight']}",
            ),
            Comparison(
                f"startup reduction at burst {top}",
                "expected: persists at cluster scale",
                pct(reductions[-1]),
            ),
            Comparison(
                "reduction stability across the sweep",
                "expected: roughly flat",
                f"{pct(min(reductions))} .. {pct(max(reductions))}",
            ),
            Comparison(
                f"placement skew at burst {top} ({placement})",
                "expected: peak load within 1 of even",
                f"per-host peak {min(top_peaks)}..{max(top_peaks)} "
                f"(even share {top / hosts:.1f})",
            ),
            Comparison(
                "VF pools fully recycled after churn",
                f"{vf_pool} free",
                f"vanilla={van_top['free_vfs_total']}, "
                f"fastiov={fio_top['free_vfs_total']}",
            ),
            Comparison(
                f"p99 growth vanilla, burst {sweep[0]} -> {top}",
                "expected: ~linear in per-host load",
                f"{van_top['p99'] / series['vanilla'][0]['p99']:.2f}x "
                f"for {top / sweep[0]:.0f}x burst",
            ),
        ]
        data = {
            "hosts": hosts,
            "placement": placement,
            "sweep": list(sweep),
            "series": series,
        }
        return data, text, comparisons
