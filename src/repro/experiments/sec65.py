"""§6.5: impact of FastIOV on guest memory-access performance.

Paper claims: Tinymembench inside the secure container shows memory
throughput degradation and latency increase both within 1% of vanilla,
because the EPT-fault interception happens only on the first access to
each page.
"""

from repro.core import build_host
from repro.experiments.base import Comparison, Experiment, pct
from repro.metrics.reporting import format_table
from repro.spec import MIB, PAPER_TESTBED
from repro.workloads.membench import Tinymembench


class Sec65(Experiment):
    """Regenerates the §6.5 memory-performance check."""

    experiment_id = "sec65"
    title = "Memory access performance inside the container (Tinymembench)"
    paper_reference = "§6.5: throughput/latency degradation within 1%."

    def _execute(self, quick, seed):
        results = {}
        faults = {}
        for preset in ("vanilla", "fastiov"):
            host = build_host(preset, spec=PAPER_TESTBED, seed=seed)
            host.launch(1)
            container = host.engine.containers["c0"]
            bench = Tinymembench(host, container, working_set_bytes=64 * MIB)

            def flow(container=container, bench=bench):
                yield from container.microvm.guest.wait_network_ready()
                yield from bench.run(
                    copy_seconds=1.0 if quick is True else 5.0,
                    repeats=3 if quick else 10,
                    random_reads=1_000_000 if quick else 10_000_000,
                )

            host.sim.spawn(flow())
            host.sim.run()
            results[preset] = bench.result
            faults[preset] = bench.result.faults

        vanilla = results["vanilla"]
        fastiov = results["fastiov"]
        throughput_drop = 1 - (
            fastiov.throughput_bytes_per_s / vanilla.throughput_bytes_per_s
        )
        latency_rise = fastiov.latency_s / vanilla.latency_s - 1

        rows = [
            ("throughput (MiB/s)",
             vanilla.throughput_bytes_per_s / MIB,
             fastiov.throughput_bytes_per_s / MIB),
            ("latency (ns)", vanilla.latency_s * 1e9, fastiov.latency_s * 1e9),
            ("EPT faults (working set pages)", faults["vanilla"],
             faults["fastiov"]),
        ]
        text = format_table(
            ["metric", "vanilla", "fastiov"], rows,
            title="§6.5 — Tinymembench inside the secure container",
        )
        comparisons = [
            Comparison("memory throughput degradation", "<1%",
                       pct(max(throughput_drop, 0.0))),
            Comparison("memory latency increase", "<1%",
                       pct(max(latency_rise, 0.0))),
            Comparison(
                "interception only on first access", "yes",
                "yes" if faults["fastiov"] == faults["vanilla"] else "NO",
                note="equal fault counts: one per working-set page",
            ),
        ]
        data = {
            "throughput_drop": throughput_drop,
            "latency_rise": latency_rise,
            "results": {k: vars(v) for k, v in results.items()},
        }
        return data, text, comparisons
