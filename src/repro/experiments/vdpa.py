"""Extension experiment: the §7 vDPA open question, investigated.

The paper's discussion (§7) proposes vDPA — guest drives the VF with
the standard virtio driver — as the way to make FastIOV safe for
closed-source device drivers, but leaves "its effect on the concurrent
startup performance" to future work.  This experiment runs it: vDPA
replaces the vendor VF driver bring-up (PCI enumeration, PF admin-queue
negotiation, link bring-up) with a light virtio-net setup whose buffer
protocol proactively EPT-faults the rings, so lazy zeroing needs no
driver changes.

Expectations (ours, not the paper's): vDPA alone should shave the
`5-vf-driver` step off vanilla; combined with FastIOV it should match
or slightly beat plain FastIOV at startup time (the async-masked step
shrinks and the PF mailbox queue disappears), making FastIOV-A-style
configurations unnecessary.
"""

from repro.experiments.base import Comparison, Experiment, pct, reduction
from repro.experiments.runs import launch_preset, main_concurrency
from repro.metrics.reporting import format_table

PRESETS = ("vanilla", "vanilla-vdpa", "fastiov", "fastiov-vdpa")


class Vdpa(Experiment):
    """Investigates the §7 vDPA question (extension)."""

    experiment_id = "vdpa"
    title = "vDPA: standard-virtio control plane for passthrough VFs (§7)"
    paper_reference = (
        "§7 poses the question; no paper numbers exist.  Shape "
        "expectations: vDPA removes the 5-vf-driver cost and the PF "
        "mailbox serialization."
    )

    def _execute(self, quick, seed):
        concurrency = main_concurrency(quick)
        results = {}
        for preset in PRESETS:
            host, result = launch_preset(preset, concurrency, seed=seed)
            startups = result.startup_times(preset)
            results[preset] = {
                "mean": startups.mean,
                "p99": startups.p99,
                "vf_driver": result.mean_step_time("5-vf-driver"),
                "mailbox_waits": host.binding.mailbox_stats.contended,
            }

        rows = [
            (preset, r["mean"], r["p99"], r["vf_driver"], r["mailbox_waits"])
            for preset, r in results.items()
        ]
        text = format_table(
            ["solution", "mean (s)", "p99 (s)", "5-vf-driver (s)",
             "PF-mailbox waits"],
            rows, title=f"§7 extension — vDPA control plane (c={concurrency})",
        )

        comparisons = [
            Comparison(
                "vDPA removes vendor driver init from vanilla",
                "expected: 5-vf-driver shrinks",
                f"{results['vanilla']['vf_driver']:.2f}s -> "
                f"{results['vanilla-vdpa']['vf_driver']:.2f}s",
            ),
            Comparison(
                "vDPA eliminates PF-mailbox contention",
                "expected: ~0 waits",
                f"{results['vanilla']['mailbox_waits']} -> "
                f"{results['vanilla-vdpa']['mailbox_waits']}",
            ),
            Comparison(
                "vanilla-vdpa improvement over vanilla (avg)",
                "expected: modest (other bottlenecks remain)",
                pct(reduction(results["vanilla"]["mean"],
                              results["vanilla-vdpa"]["mean"])),
            ),
            Comparison(
                "fastiov-vdpa vs fastiov (avg)",
                "expected: comparable or slightly better",
                pct(reduction(results["fastiov"]["mean"],
                              results["fastiov-vdpa"]["mean"])),
            ),
        ]
        return {"results": results, "concurrency": concurrency}, text, comparisons
