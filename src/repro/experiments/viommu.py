"""Extension experiment: the §8 deferred-mapping (vIOMMU) baseline.

The paper's related-work section contrasts FastIOV with virtual-IOMMU
designs (vIOMMU/coIOMMU/V-Probe): those defer DMA memory mapping until
the device actually accesses a region, which removes the startup cost —
but couples the benefit to memory-overcommitment machinery and moves
pinning/mapping (and, with demand paging, zeroing) onto the data path.
FastIOV instead decouples only the *zeroing*, keeping memory fully
pinned up front.

This experiment measures both sides of that trade-off: startup time
(where deferred mapping looks as good as FastIOV) and the first data
transfer (where deferred mapping pays its debt while FastIOV's rings
are already mapped).
"""

from repro.experiments.base import Comparison, Experiment, pct, reduction
from repro.experiments.runs import launch_preset, main_concurrency
from repro.metrics.reporting import format_table
from repro.metrics.stats import Distribution
from repro.spec import MIB
from repro.workloads.serverless import ServerlessApp

PRESETS = ("vanilla", "fastiov", "viommu")


def _first_transfer_app(_index):
    """A tiny download that isolates the first-DMA cost."""
    return ServerlessApp(
        "first-touch", input_bytes=8 * MIB, compute_cpu_s=0.0,
        footprint_bytes=2 * MIB,
    )


class Viommu(Experiment):
    """Runs the §8 deferred-mapping baseline (extension)."""

    experiment_id = "viommu"
    title = "Deferred DMA mapping (vIOMMU-style) vs FastIOV (§8)"
    paper_reference = (
        "§8: delayed mapping 'can reduce the startup cost of "
        "passthrough I/O' but 'such reduction is coupled with enabling "
        "memory-overcommitment'; FastIOV decouples only zeroing.  No "
        "paper numbers — expectations are directional."
    )

    def _execute(self, quick, seed):
        concurrency = main_concurrency(quick)
        startup = {}
        for preset in PRESETS:
            _host, result = launch_preset(preset, concurrency, seed=seed)
            startup[preset] = result.startup_times(preset)

        transfer_c = 16 if quick else 50
        first_transfer = {}
        for preset in PRESETS:
            _host, result = launch_preset(
                preset, transfer_c, seed=seed,
                app_factory=_first_transfer_app,
            )
            first_transfer[preset] = Distribution(
                [r.step_time("app-run") for r in result.records],
                label=preset,
            )

        rows = [
            (preset, startup[preset].mean, startup[preset].p99,
             first_transfer[preset].mean * 1000)
            for preset in PRESETS
        ]
        text = format_table(
            ["solution", "startup mean (s)", "startup p99 (s)",
             "first 8 MiB transfer (ms)"],
            rows,
            title=(f"§8 baseline — deferred mapping "
                   f"(startup c={concurrency}, transfer c={transfer_c})"),
        )

        comparisons = [
            Comparison(
                "deferred mapping removes the startup mapping cost",
                "expected: startup ~ FastIOV's",
                pct(reduction(startup["vanilla"].mean,
                              startup["viommu"].mean)) + " vs vanilla",
            ),
            Comparison(
                "but pays pin/map/zero on the data path",
                "expected: first transfer slower than FastIOV",
                f"{first_transfer['viommu'].mean * 1000:.1f} ms vs "
                f"{first_transfer['fastiov'].mean * 1000:.1f} ms",
            ),
            Comparison(
                "FastIOV's memory stays fully pinned (no overcommit "
                "coupling)", "yes",
                "yes — vanilla-equivalent pinning, only zeroing deferred",
            ),
        ]
        data = {
            "startup": {p: d.summary() for p, d in startup.items()},
            "first_transfer": {
                p: d.summary() for p, d in first_transfer.items()
            },
        }
        return data, text, comparisons
