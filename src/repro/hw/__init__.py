"""Hardware substrate: physical memory, PCI, SR-IOV NIC, IOMMU, EPT.

Every class in this package is a *pure state machine* — allocation
tables, page flags, translation tables, device registries.  No virtual
time passes here; all latency/CPU costs of operating this hardware are
charged by the kernel-level drivers in :mod:`repro.oskernel`, which run
as simulated processes.  This mirrors the real split the paper studies:
the hardware defines *what must be done* (pages zeroed, IOMMU entries
written, buses scanned) and the software stack determines *how long it
takes under concurrency*.

Security-relevant page state (residual data from a previous tenant vs
zeroed vs legitimately written) is tracked explicitly so that the lazy
zeroing design of §4.3.2 can be validated as an executable invariant:
a guest read of a residual page raises
:class:`~repro.hw.memory.ResidualDataLeak`.
"""

from repro.hw.ept import EPT, EptFault
from repro.hw.errors import (
    DmaTranslationFault,
    HardwareError,
    OutOfMemory,
    ResidualDataLeak,
)
from repro.hw.iommu import IOMMU, IOMMUDomain
from repro.hw.memory import AllocatedRegion, Page, PageContent, PhysicalMemory
from repro.hw.nic import DmaEngine, PhysicalFunction, SriovNic, VirtualFunction
from repro.hw.pci import PciBus, PciDevice, PciTopology, ResetScope

__all__ = [
    "EPT",
    "EptFault",
    "AllocatedRegion",
    "DmaEngine",
    "DmaTranslationFault",
    "HardwareError",
    "IOMMU",
    "IOMMUDomain",
    "OutOfMemory",
    "Page",
    "PageContent",
    "PciBus",
    "PciDevice",
    "PciTopology",
    "PhysicalFunction",
    "PhysicalMemory",
    "ResetScope",
    "ResidualDataLeak",
    "SriovNic",
    "VirtualFunction",
]
