"""Extended Page Table: GPA -> HPA translation for one microVM.

The EPT is the hardware-assisted second-stage table the guest CPU uses
(§2.2 step iv).  Entries are installed *on first access*: a miss raises
:class:`EptFault`, which KVM services (§4.3.2, Fig. 9).  FastIOV's lazy
zeroing piggybacks on exactly this fault: the page is zeroed in the KVM
fault handler right before the entry is inserted, and subsequent
accesses translate in hardware with no interception.

The table is pure state; fault-servicing time is charged by
:class:`repro.oskernel.kvm.KVM`.
"""

from repro.hw.errors import HardwareError


class EptFault(Exception):
    """EPT violation: the guest touched a GPA with no EPT entry.

    Carries the faulting GPA (page-aligned base) so KVM can resolve
    GPA -> HVA -> HPA and install the entry.
    """

    def __init__(self, vm_name, gpa):
        super().__init__(f"EPT violation in {vm_name!r} at GPA {gpa:#x}")
        self.vm_name = vm_name
        self.gpa = gpa


class EPT:
    """One microVM's extended page table."""

    def __init__(self, vm_name, page_size):
        self.vm_name = vm_name
        self.page_size = page_size
        self._entries = {}  # gpa (page-aligned) -> Page
        self.fault_count = 0

    @property
    def entry_count(self):
        return len(self._entries)

    def align(self, gpa):
        return (gpa // self.page_size) * self.page_size

    def has_entry(self, gpa):
        return self.align(gpa) in self._entries

    def translate(self, gpa):
        """Translate a GPA; raise :class:`EptFault` on a missing entry.

        Returns (page, offset_in_page).  The fault counter counts
        violations, which experiments use to verify that FastIOV's
        interception happens once per page (§6.5).
        """
        base = self.align(gpa)
        page = self._entries.get(base)
        if page is None:
            self.fault_count += 1
            raise EptFault(self.vm_name, base)
        return page, gpa - base

    def insert(self, gpa, page):
        """Install a GPA -> page entry (done by KVM after a fault)."""
        base = self.align(gpa)
        if base in self._entries:
            raise HardwareError(
                f"EPT {self.vm_name!r}: duplicate entry for GPA {base:#x}"
            )
        if page.size != self.page_size:
            raise HardwareError(
                f"EPT {self.vm_name!r}: page size {page.size} != EPT "
                f"granularity {self.page_size}"
            )
        self._entries[base] = page

    def invalidate(self, gpa):
        base = self.align(gpa)
        if base not in self._entries:
            raise HardwareError(f"EPT {self.vm_name!r}: no entry at {base:#x}")
        del self._entries[base]

    def __repr__(self):
        return (
            f"<EPT {self.vm_name!r} entries={self.entry_count} "
            f"faults={self.fault_count}>"
        )
