"""Errors raised by the hardware substrate."""


class HardwareError(Exception):
    """Base class for hardware-model errors."""


class OutOfMemory(HardwareError):
    """The physical-page allocator could not satisfy a request."""


class ResidualDataLeak(HardwareError):
    """A guest-visible read observed another tenant's residual data.

    This is the multi-tenant security violation that eager page zeroing
    prevents and that FastIOV's lazy zeroing must also prevent (§4.3.2).
    Tests inject faults into the lazy-zeroing machinery and assert this
    is raised, demonstrating why the instant-zeroing list and proactive
    EPT faults are load-bearing.
    """

    def __init__(self, page, reader):
        super().__init__(
            f"reader {reader!r} observed residual data on page hpa={page.hpa:#x} "
            f"(left by {page.content_tag!r})"
        )
        self.page = page
        self.reader = reader


class DmaTranslationFault(HardwareError):
    """The IOMMU had no mapping for an IOVA used in a DMA operation.

    Unlike CPU page faults, IOMMU translation faults are not recoverable
    in this generation of hardware (§3.2.3): DMA-mapped memory must be
    fully populated up front.
    """

    def __init__(self, domain_name, iova):
        super().__init__(f"IOMMU domain {domain_name!r}: no mapping for IOVA {iova:#x}")
        self.domain_name = domain_name
        self.iova = iova
