"""IOMMU: per-guest I/O page tables and DMA address translation.

The IOMMU translates the I/O Virtual Addresses (IOVAs) a device uses in
DMA operations to Host Physical Addresses (HPAs), via an I/O page table
maintained per guest (§2.2).  Two properties matter for the paper:

* Translation entries are installed by the VFIO driver during *DMA
  memory mapping* — logically one entry per mapped page, so mapping
  cost scales with page count.  The table itself stores contiguous
  mappings as intervals (one per retrieval batch for a bulk
  :meth:`IOMMUDomain.map_region`), so installing and tearing down a
  multi-gigabyte region costs O(batches), while ``entry_count`` still
  reports page-granular entries.
* The IOMMU cannot handle page faults: a DMA access to an unmapped IOVA
  is a hard :class:`~repro.hw.errors.DmaTranslationFault`, which is why
  all guest memory must be allocated (and, without FastIOV, zeroed) up
  front.
"""

import bisect

from repro.hw.errors import DmaTranslationFault, HardwareError


class IOMMUDomain:
    """One guest's I/O page table (IOVA -> physical page).

    Mappings are sorted disjoint intervals ``[start, end, page_size,
    source, base_index]`` where ``source`` is either a single
    :class:`~repro.hw.memory.Page` (per-page :meth:`map_page`) or an
    :class:`~repro.hw.memory.AllocatedRegion` with ``base_index`` naming
    the region page index mapped at ``start``.
    """

    def __init__(self, name):
        self.name = name
        self._starts = []
        self._items = []  # [start, end, page_size, source, base_index]
        self.mapped_bytes = 0
        self._page_count = 0

    @property
    def entry_count(self):
        """Page-granular translation entry count."""
        return self._page_count

    # ------------------------------------------------------------------
    # install
    # ------------------------------------------------------------------
    def _check_window(self, start, end):
        i = bisect.bisect_right(self._starts, start) - 1
        if i >= 0 and self._items[i][1] > start:
            raise HardwareError(
                f"domain {self.name!r}: IOVA {start:#x} already mapped"
            )
        if i + 1 < len(self._items) and self._items[i + 1][0] < end:
            raise HardwareError(
                f"domain {self.name!r}: IOVA window [{start:#x}, {end:#x}) "
                f"overlaps an existing mapping"
            )
        return i + 1

    def map_page(self, iova, page):
        """Install a translation for one page.

        ``iova`` must be aligned to the page's size.  Per §2.2 the IOVA
        is typically chosen equal to the GPA, but the domain does not
        assume that.
        """
        if iova % page.size != 0:
            raise HardwareError(
                f"domain {self.name!r}: IOVA {iova:#x} not aligned to {page.size}"
            )
        if not page.pinned:
            raise HardwareError(
                f"domain {self.name!r}: mapping unpinned page {page.hpa:#x}; "
                f"DMA to swappable memory is unsafe"
            )
        i = self._check_window(iova, iova + page.size)
        self._starts.insert(i, iova)
        self._items.insert(i, [iova, iova + page.size, page.size, page, None])
        self.mapped_bytes += page.size
        self._page_count += 1

    def map_region(self, iova_base, region):
        """Install translations for a whole region in O(batches).

        IOVAs are assigned densely from ``iova_base`` in region page
        order, matching a per-page loop over ``region.pages``.
        """
        page_size = region.page_size
        if iova_base % page_size != 0:
            raise HardwareError(
                f"domain {self.name!r}: IOVA {iova_base:#x} not aligned "
                f"to {page_size}"
            )
        if not region.all_pinned():
            raise HardwareError(
                f"domain {self.name!r}: mapping region {region.label!r} "
                f"with unpinned pages; DMA to swappable memory is unsafe"
            )
        base = 0
        for start, end in region._batch_spans:
            count = (end - start) // page_size
            iova = iova_base + base * page_size
            span_bytes = count * page_size
            i = self._check_window(iova, iova + span_bytes)
            self._starts.insert(i, iova)
            self._items.insert(
                i, [iova, iova + span_bytes, page_size, region, base]
            )
            self.mapped_bytes += span_bytes
            self._page_count += count
            base += count

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def unmap_page(self, iova):
        """Remove one page translation, splitting its interval if bulk."""
        i = bisect.bisect_right(self._starts, iova) - 1
        if i < 0 or self._items[i][1] <= iova:
            raise HardwareError(
                f"domain {self.name!r}: unmapping unmapped IOVA {iova:#x}"
            )
        item = self._items[i]
        start, end, page_size, source, base_index = item
        if (iova - start) % page_size != 0:
            raise HardwareError(
                f"domain {self.name!r}: unmapping unmapped IOVA {iova:#x}"
            )
        page = self._resolve(item, iova)
        tail_start = iova + page_size
        if start == iova:
            if tail_start == end:
                del self._starts[i]
                del self._items[i]
            else:
                item[0] = tail_start
                self._starts[i] = tail_start
                if base_index is not None:
                    item[4] = base_index + 1
        elif tail_start == end:
            item[1] = iova
        else:
            tail_base = (
                base_index + (tail_start - start) // page_size
                if base_index is not None else None
            )
            self._starts.insert(i + 1, tail_start)
            self._items.insert(
                i + 1, [tail_start, end, page_size, source, tail_base]
            )
            item[1] = iova
        self.mapped_bytes -= page_size
        self._page_count -= 1
        return page

    def unmap_range(self, iova_base, nbytes):
        """Remove every mapping inside [iova_base, +nbytes) in O(intervals).

        The window must cover whole intervals (the inverse of
        :meth:`map_region` / a series of :meth:`map_page` calls).
        """
        end = iova_base + nbytes
        i = bisect.bisect_left(self._starts, iova_base)
        if i > 0 and self._items[i - 1][1] > iova_base:
            raise HardwareError(
                f"domain {self.name!r}: unmap window [{iova_base:#x}, {end:#x}) "
                f"splits a mapping"
            )
        removed = 0
        while i < len(self._items) and self._items[i][0] < end:
            item = self._items[i]
            if item[1] > end:
                raise HardwareError(
                    f"domain {self.name!r}: unmap window [{iova_base:#x}, "
                    f"{end:#x}) splits a mapping"
                )
            span_bytes = item[1] - item[0]
            self.mapped_bytes -= span_bytes
            self._page_count -= span_bytes // item[2]
            removed += span_bytes // item[2]
            del self._starts[i]
            del self._items[i]
        return removed

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------
    def _resolve(self, item, iova):
        start, _end, page_size, source, base_index = item
        if base_index is None:
            return source
        return source.page_at_index(base_index + (iova - start) // page_size)

    def translate(self, iova):
        """Translate an IOVA to (page, offset); hard fault if unmapped."""
        i = bisect.bisect_right(self._starts, iova) - 1
        if i >= 0:
            item = self._items[i]
            if iova < item[1]:
                page_size = item[2]
                aligned = item[0] + ((iova - item[0]) // page_size) * page_size
                return self._resolve(item, aligned), iova - aligned
        raise DmaTranslationFault(self.name, iova)

    def is_mapped(self, iova):
        try:
            self.translate(iova)
            return True
        except DmaTranslationFault:
            return False

    def pages(self):
        """All mapped (iova, page) pairs (for unmap-all teardown)."""
        result = []
        for item in self._items:
            start, end, page_size = item[0], item[1], item[2]
            for iova in range(start, end, page_size):
                result.append((iova, self._resolve(item, iova)))
        return result

    def __repr__(self):
        return (
            f"<IOMMUDomain {self.name!r} entries={self.entry_count} "
            f"mapped={self.mapped_bytes >> 20} MiB>"
        )


class IOMMU:
    """The host IOMMU: a collection of per-guest domains."""

    def __init__(self):
        self._domains = {}

    def create_domain(self, name):
        if name in self._domains:
            raise HardwareError(f"IOMMU domain {name!r} already exists")
        domain = IOMMUDomain(name)
        self._domains[name] = domain
        return domain

    def destroy_domain(self, name):
        try:
            domain = self._domains.pop(name)
        except KeyError:
            raise HardwareError(f"no IOMMU domain {name!r}") from None
        if domain.entry_count:
            raise HardwareError(
                f"destroying IOMMU domain {name!r} with "
                f"{domain.entry_count} live mappings"
            )

    @property
    def domain_count(self):
        return len(self._domains)

    def __repr__(self):
        return f"<IOMMU domains={self.domain_count}>"
