"""IOMMU: per-guest I/O page tables and DMA address translation.

The IOMMU translates the I/O Virtual Addresses (IOVAs) a device uses in
DMA operations to Host Physical Addresses (HPAs), via an I/O page table
maintained per guest (§2.2).  Two properties matter for the paper:

* Translation entries are installed by the VFIO driver during *DMA
  memory mapping* — one entry per mapped page, so mapping cost scales
  with page count.
* The IOMMU cannot handle page faults: a DMA access to an unmapped IOVA
  is a hard :class:`~repro.hw.errors.DmaTranslationFault`, which is why
  all guest memory must be allocated (and, without FastIOV, zeroed) up
  front.
"""

from repro.hw.errors import DmaTranslationFault, HardwareError


class IOMMUDomain:
    """One guest's I/O page table (IOVA -> physical page)."""

    def __init__(self, name):
        self.name = name
        self._entries = {}  # iova (page-aligned) -> Page
        self.mapped_bytes = 0

    @property
    def entry_count(self):
        return len(self._entries)

    def map_page(self, iova, page):
        """Install a translation for one page.

        ``iova`` must be aligned to the page's size.  Per §2.2 the IOVA
        is typically chosen equal to the GPA, but the domain does not
        assume that.
        """
        if iova % page.size != 0:
            raise HardwareError(
                f"domain {self.name!r}: IOVA {iova:#x} not aligned to {page.size}"
            )
        if iova in self._entries:
            raise HardwareError(f"domain {self.name!r}: IOVA {iova:#x} already mapped")
        if not page.pinned:
            raise HardwareError(
                f"domain {self.name!r}: mapping unpinned page {page.hpa:#x}; "
                f"DMA to swappable memory is unsafe"
            )
        self._entries[iova] = page
        self.mapped_bytes += page.size

    def unmap_page(self, iova):
        try:
            page = self._entries.pop(iova)
        except KeyError:
            raise HardwareError(
                f"domain {self.name!r}: unmapping unmapped IOVA {iova:#x}"
            ) from None
        self.mapped_bytes -= page.size
        return page

    def translate(self, iova):
        """Translate an IOVA to (page, offset); hard fault if unmapped."""
        for base, page in self._lookup_candidates(iova):
            if base <= iova < base + page.size:
                return page, iova - base
        raise DmaTranslationFault(self.name, iova)

    def _lookup_candidates(self, iova):
        # Entries are keyed by their aligned base; page sizes are
        # uniform per region, but mixed sizes are tolerated by checking
        # both common alignments.
        seen = set()
        for size in {page.size for page in self._entries.values()}:
            base = (iova // size) * size
            if base not in seen and base in self._entries:
                seen.add(base)
                yield base, self._entries[base]

    def is_mapped(self, iova):
        try:
            self.translate(iova)
            return True
        except DmaTranslationFault:
            return False

    def pages(self):
        """All mapped pages (for unmap-all teardown)."""
        return list(self._entries.items())

    def __repr__(self):
        return (
            f"<IOMMUDomain {self.name!r} entries={self.entry_count} "
            f"mapped={self.mapped_bytes >> 20} MiB>"
        )


class IOMMU:
    """The host IOMMU: a collection of per-guest domains."""

    def __init__(self):
        self._domains = {}

    def create_domain(self, name):
        if name in self._domains:
            raise HardwareError(f"IOMMU domain {name!r} already exists")
        domain = IOMMUDomain(name)
        self._domains[name] = domain
        return domain

    def destroy_domain(self, name):
        try:
            domain = self._domains.pop(name)
        except KeyError:
            raise HardwareError(f"no IOMMU domain {name!r}") from None
        if domain.entry_count:
            raise HardwareError(
                f"destroying IOMMU domain {name!r} with "
                f"{domain.entry_count} live mappings"
            )

    @property
    def domain_count(self):
        return len(self._domains)

    def __repr__(self):
        return f"<IOMMU domains={self.domain_count}>"
