"""Physical memory: page frames, allocation, and security-relevant state.

The allocator hands out page frames in *contiguous batches*, because
batch count is what drives the VFIO driver's page-retrieval cost (P2 in
Fig. 6 of the paper): fragmented free memory means many small batches
and high retrieval overhead, while 2 MiB hugepages mean few batches.

Each :class:`Page` carries the state the paper's zeroing analysis needs:

* ``content`` — :data:`PageContent.RESIDUAL` (stale data from a prior
  tenant), :data:`PageContent.ZERO`, or :data:`PageContent.DATA` with a
  ``content_tag`` naming the writer.
* ``pin_count`` — DMA pinning reference count (§2.2 step "pinning").

Reads are checked: a read on a residual page raises
:class:`~repro.hw.errors.ResidualDataLeak`, which is how the test suite
proves both that vanilla eager zeroing is safe and that FastIOV's lazy
zeroing (with its instant-zeroing list and proactive EPT faults) is
safe, while deliberately broken variants are not.
"""

import enum

from repro.hw.errors import HardwareError, OutOfMemory, ResidualDataLeak

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Base page size of the simulated host (x86-64).
BASE_PAGE_SIZE = 4 * KIB
#: Hugepage size used throughout the paper's testbed (§3.1).
HUGE_PAGE_SIZE = 2 * MIB


class PageContent(enum.Enum):
    """What a physical page currently holds, for leak checking."""

    RESIDUAL = "residual"
    ZERO = "zero"
    DATA = "data"


class Page:
    """One physical page frame.

    Attributes:
        hpa: Host physical address of the frame (aligned to ``size``).
        size: Frame size in bytes (4 KiB or 2 MiB in practice).
        content: Current :class:`PageContent` classification.
        content_tag: Writer identity for DATA pages, previous owner for
            RESIDUAL pages, None for ZERO pages.
        pin_count: DMA pin reference count; pinned pages cannot be
            freed or migrated.
        owner: Identifier of the region owner (e.g. a microVM id).
    """

    __slots__ = ("hpa", "size", "content", "content_tag", "pin_count", "owner")

    def __init__(self, hpa, size, content=PageContent.RESIDUAL, content_tag=None):
        self.hpa = hpa
        self.size = size
        self.content = content
        self.content_tag = content_tag
        self.pin_count = 0
        self.owner = None

    @property
    def is_residual(self):
        return self.content is PageContent.RESIDUAL

    @property
    def is_zeroed(self):
        return self.content is PageContent.ZERO

    @property
    def pinned(self):
        return self.pin_count > 0

    def zero(self):
        """Fill the frame with zeros (clears any residual data)."""
        self.content = PageContent.ZERO
        self.content_tag = None

    def write(self, tag):
        """Overwrite the frame with data attributed to ``tag``."""
        self.content = PageContent.DATA
        self.content_tag = tag

    def read(self, reader):
        """Read the frame, enforcing the residual-data security check.

        Returns the content tag (None for a zeroed page).  Raises
        :class:`ResidualDataLeak` if the frame still holds a previous
        tenant's data — the exact condition eager/lazy zeroing exists to
        prevent.
        """
        if self.is_residual:
            raise ResidualDataLeak(self, reader)
        return self.content_tag

    def pin(self):
        self.pin_count += 1

    def unpin(self):
        if self.pin_count <= 0:
            raise HardwareError(f"page {self.hpa:#x} unpinned while not pinned")
        self.pin_count -= 1

    def __repr__(self):
        return (
            f"<Page hpa={self.hpa:#x} size={self.size} "
            f"content={self.content.value} pins={self.pin_count}>"
        )


class AllocatedRegion:
    """A set of page frames backing one memory region.

    Attributes:
        region_id: Unique id within the owning :class:`PhysicalMemory`.
        owner: Owner identifier (microVM id, hypervisor, ...).
        label: Human-readable purpose ("ram", "image", "bios-kernel").
        pages: All frames, in address order.
        batches: Contiguous runs as lists of pages; ``len(batches)`` is
            the number of retrieval operations the allocator performed.
    """

    def __init__(self, region_id, owner, label, batches):
        self.region_id = region_id
        self.owner = owner
        self.label = label
        self.batches = batches
        self.pages = [page for batch in batches for page in batch]
        for page in self.pages:
            page.owner = owner

    @property
    def size_bytes(self):
        return sum(page.size for page in self.pages)

    @property
    def page_count(self):
        return len(self.pages)

    @property
    def batch_count(self):
        return len(self.batches)

    def __repr__(self):
        return (
            f"<AllocatedRegion {self.label!r} owner={self.owner!r} "
            f"{self.size_bytes >> 20} MiB in {self.batch_count} batches>"
        )


class _FreeExtent:
    """A run of free frames: [start_hpa, start_hpa + length_bytes)."""

    __slots__ = ("start", "length")

    def __init__(self, start, length):
        self.start = start
        self.length = length

    @property
    def end(self):
        return self.start + self.length


class PhysicalMemory:
    """Page-frame allocator over a flat host physical address space.

    Frames are handed out in address order, largest-contiguous-first
    within the request, grouped into batches per contiguous free extent.
    Freed extents are coalesced with neighbours, and freed frames are
    marked RESIDUAL with the dead owner's tag — recycled memory is dirty
    until someone zeroes it, exactly the hazard §3.2.3 describes.

    Args:
        total_bytes: Size of the physical address space.
        page_size: Frame granularity.  The paper's testbed runs with
            2 MiB hugepages (§3.1); tests may use 4 KiB with smaller
            totals.
    """

    def __init__(self, total_bytes, page_size=HUGE_PAGE_SIZE):
        if total_bytes <= 0 or total_bytes % page_size != 0:
            raise ValueError(
                f"total_bytes ({total_bytes}) must be a positive multiple of "
                f"page_size ({page_size})"
            )
        self.total_bytes = total_bytes
        self.page_size = page_size
        self._free = [_FreeExtent(0, total_bytes)]
        self._regions = {}
        self._pages = {}  # hpa -> Page, for currently-allocated frames
        self._residual_tags = {}  # hpa -> tag left by the previous owner
        self._clean_frames = set()  # hpas freed in the zeroed state
        self._next_region_id = 0
        self.allocated_bytes = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def free_bytes(self):
        return self.total_bytes - self.allocated_bytes

    @property
    def free_extent_count(self):
        return len(self._free)

    def page_at(self, hpa):
        """Return the allocated :class:`Page` containing ``hpa``."""
        frame_start = (hpa // self.page_size) * self.page_size
        try:
            return self._pages[frame_start]
        except KeyError:
            raise HardwareError(f"hpa {hpa:#x} is not an allocated frame") from None

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, nbytes, owner, label="anon"):
        """Allocate ``nbytes`` (rounded up to whole frames).

        Returns an :class:`AllocatedRegion` whose ``batches`` reflect
        the contiguity of the free extents consumed.  Frames come back
        in whatever content state they were freed with — RESIDUAL if a
        previous tenant used them.
        """
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive, got {nbytes}")
        remaining = -(-nbytes // self.page_size) * self.page_size
        if remaining > self.free_bytes:
            raise OutOfMemory(
                f"requested {remaining} bytes for {owner!r}/{label!r}, "
                f"only {self.free_bytes} free"
            )
        batches = []
        consumed = 0
        new_free = []
        for extent in self._free:
            if remaining <= 0:
                new_free.append(extent)
                continue
            take = min(extent.length, remaining)
            batches.append(self._materialize(extent.start, take))
            remaining -= take
            consumed += take
            if take < extent.length:
                new_free.append(_FreeExtent(extent.start + take, extent.length - take))
        if remaining > 0:  # pragma: no cover - guarded by free_bytes check
            raise OutOfMemory("free list inconsistent with accounting")
        self._free = new_free
        self.allocated_bytes += consumed
        region = AllocatedRegion(self._next_region_id, owner, label, batches)
        self._next_region_id += 1
        self._regions[region.region_id] = region
        return region

    def _materialize(self, start, length):
        batch = []
        for hpa in range(start, start + length, self.page_size):
            if hpa in self._clean_frames:
                self._clean_frames.discard(hpa)
                page = Page(hpa, self.page_size, PageContent.ZERO)
            else:
                # Pristine boot-time frames are conservatively residual
                # (content unknown); recycled dirty frames carry the
                # previous tenant's tag.
                tag = self._residual_tags.pop(hpa, None)
                page = Page(hpa, self.page_size, PageContent.RESIDUAL, tag)
            self._pages[hpa] = page
            batch.append(page)
        return batch

    def free(self, region):
        """Return a region's frames to the free pool.

        Pinned frames cannot be freed (DMA could still target them);
        attempting to do so is a modeling error and raises.
        Freed frames are recorded as residual-with-tag so the next
        tenant's allocator sees dirty memory.
        """
        if region.region_id not in self._regions:
            raise HardwareError(f"double free of region {region.region_id}")
        for page in region.pages:
            if page.pinned:
                raise HardwareError(
                    f"freeing pinned page {page.hpa:#x} (owner {region.owner!r})"
                )
        del self._regions[region.region_id]
        for page in region.pages:
            del self._pages[page.hpa]
            if page.content is PageContent.ZERO:
                self._residual_tags.pop(page.hpa, None)
                self._clean_frames.add(page.hpa)
            else:
                self._clean_frames.discard(page.hpa)
                self._residual_tags[page.hpa] = (
                    page.content_tag if page.content_tag is not None else region.owner
                )
            self._insert_free(_FreeExtent(page.hpa, page.size))
        self.allocated_bytes -= region.size_bytes

    def _insert_free(self, extent):
        """Insert and coalesce with adjacent free extents."""
        free = self._free
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid].start < extent.start:
                lo = mid + 1
            else:
                hi = mid
        free.insert(lo, extent)
        # Coalesce with successor first, then predecessor.
        if lo + 1 < len(free) and free[lo].end == free[lo + 1].start:
            free[lo].length += free[lo + 1].length
            del free[lo + 1]
        if lo > 0 and free[lo - 1].end == free[lo].start:
            free[lo - 1].length += free[lo].length
            del free[lo]

    # ------------------------------------------------------------------
    # fragmentation injection (for the P2 retrieval-cost ablation)
    # ------------------------------------------------------------------
    def fragment(self, max_run_bytes, jitter=None):
        """Artificially split free extents into runs <= ``max_run_bytes``.

        Models a long-running host whose free memory is fragmented, to
        reproduce the paper's P2 sub-bottleneck (high retrieval cost
        from many small batches).  With ``jitter`` the run lengths vary
        uniformly in [page_size, max_run_bytes].
        """
        if max_run_bytes < self.page_size or max_run_bytes % self.page_size != 0:
            raise ValueError(
                f"max_run_bytes must be a multiple of page_size >= {self.page_size}"
            )
        fragmented = []
        for extent in self._free:
            offset = extent.start
            remaining = extent.length
            while remaining > 0:
                if jitter is None:
                    run = max_run_bytes
                else:
                    pages = jitter.randint(1, max_run_bytes // self.page_size)
                    run = pages * self.page_size
                run = min(run, remaining)
                fragmented.append(_FreeExtent(offset, run))
                offset += run
                remaining -= run
        self._free = fragmented

    def __repr__(self):
        return (
            f"<PhysicalMemory {self.total_bytes >> 30} GiB page={self.page_size} "
            f"allocated={self.allocated_bytes >> 20} MiB "
            f"extents={len(self._free)}>"
        )
