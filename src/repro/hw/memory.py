"""Physical memory: page frames, allocation, and security-relevant state.

The allocator hands out page frames in *contiguous batches*, because
batch count is what drives the VFIO driver's page-retrieval cost (P2 in
Fig. 6 of the paper): fragmented free memory means many small batches
and high retrieval overhead, while 2 MiB hugepages mean few batches.

State is tracked in *run-length* form: a :class:`PageRun` is a span of
frames that share one uniform (content, tag, pin, owner) state, so
allocating, zeroing, pinning, or freeing a region costs O(runs) rather
than O(pages) — ≈131k frames for a fully-loaded 256 GiB host collapse
into a handful of spans.  Per-page state mutations split a run at the
page boundary ("split-on-write") and re-coalesce equal-state neighbours
afterwards, so the representation stays compact under page-granular
traffic (EPT faults, ROM loads).

The per-page view — :class:`Page` — is preserved as the unit the rest
of the kernel model speaks: a small identity-stable handle that resolves
its state through the owning region's run list.  Every security check
still happens at page granularity:

* ``content`` — :data:`PageContent.RESIDUAL` (stale data from a prior
  tenant), :data:`PageContent.ZERO`, or :data:`PageContent.DATA` with a
  ``content_tag`` naming the writer.
* ``pin_count`` — DMA pinning reference count (§2.2 step "pinning").

Reads are checked: a read on a residual page raises
:class:`~repro.hw.errors.ResidualDataLeak`, which is how the test suite
proves both that vanilla eager zeroing is safe and that FastIOV's lazy
zeroing (with its instant-zeroing list and proactive EPT faults) is
safe, while deliberately broken variants are not.
"""

import bisect
import enum

from repro.hw.errors import HardwareError, OutOfMemory, ResidualDataLeak

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Base page size of the simulated host (x86-64).
BASE_PAGE_SIZE = 4 * KIB
#: Hugepage size used throughout the paper's testbed (§3.1).
HUGE_PAGE_SIZE = 2 * MIB


class PageContent(enum.Enum):
    """What a physical page currently holds, for leak checking."""

    RESIDUAL = "residual"
    ZERO = "zero"
    DATA = "data"


class PageRun:
    """A contiguous span of frames sharing one uniform state.

    Attributes:
        hpa: Host physical address of the first frame.
        nbytes: Span length in bytes (multiple of ``page_size``).
        page_size: Frame granularity within the span.
        content: :class:`PageContent` of every frame in the span.
        content_tag: Writer identity for DATA, previous owner for
            RESIDUAL, None for ZERO.
        pin_count: DMA pin reference count of every frame in the span.
        owner: Identifier of the region owner (e.g. a microVM id).
    """

    __slots__ = (
        "hpa", "nbytes", "page_size", "content", "content_tag",
        "pin_count", "owner",
    )

    def __init__(self, hpa, nbytes, page_size, content=PageContent.RESIDUAL,
                 content_tag=None, pin_count=0, owner=None):
        self.hpa = hpa
        self.nbytes = nbytes
        self.page_size = page_size
        self.content = content
        self.content_tag = content_tag
        self.pin_count = pin_count
        self.owner = owner

    @property
    def end(self):
        return self.hpa + self.nbytes

    @property
    def page_count(self):
        return self.nbytes // self.page_size

    @property
    def is_residual(self):
        return self.content is PageContent.RESIDUAL

    @property
    def is_zeroed(self):
        return self.content is PageContent.ZERO

    @property
    def pinned(self):
        return self.pin_count > 0

    def state_equals(self, other):
        """Same uniform state — the condition for coalescing."""
        return (
            self.content is other.content
            and self.content_tag == other.content_tag
            and self.pin_count == other.pin_count
            and self.owner == other.owner
        )

    def clone(self, hpa, nbytes):
        return PageRun(
            hpa, nbytes, self.page_size, self.content, self.content_tag,
            self.pin_count, self.owner,
        )

    # -- store protocol for a standalone single-page view ----------------
    def _run_at(self, hpa):
        return self

    def _set_content(self, hpa, content, tag):
        self.content = content
        self.content_tag = tag

    def _adjust_pin(self, hpa, delta):
        self.pin_count += delta

    def _set_owner(self, hpa, owner):
        self.owner = owner

    def __repr__(self):
        return (
            f"<PageRun hpa={self.hpa:#x} +{self.nbytes} "
            f"content={self.content.value} pins={self.pin_count}>"
        )


class Page:
    """One physical page frame, as a view into run-length state.

    A ``Page`` is an identity-stable handle (``region.pages[i] is
    region.pages[i]`` always holds, as does ``memory.page_at(hpa)``
    identity) whose state lives in the owning store's :class:`PageRun`
    list.  A page constructed standalone carries its own private
    single-page run.

    Attributes:
        hpa: Host physical address of the frame (aligned to ``size``).
        size: Frame size in bytes (4 KiB or 2 MiB in practice).
    """

    __slots__ = ("hpa", "size", "_store")

    def __init__(self, hpa, size, content=PageContent.RESIDUAL,
                 content_tag=None, _store=None):
        self.hpa = hpa
        self.size = size
        if _store is None:
            _store = PageRun(hpa, size, size, content, content_tag)
        self._store = _store

    # -- state reads -----------------------------------------------------
    @property
    def content(self):
        return self._store._run_at(self.hpa).content

    @property
    def content_tag(self):
        return self._store._run_at(self.hpa).content_tag

    @property
    def pin_count(self):
        return self._store._run_at(self.hpa).pin_count

    @property
    def owner(self):
        return self._store._run_at(self.hpa).owner

    @owner.setter
    def owner(self, value):
        self._store._set_owner(self.hpa, value)

    @property
    def is_residual(self):
        return self.content is PageContent.RESIDUAL

    @property
    def is_zeroed(self):
        return self.content is PageContent.ZERO

    @property
    def pinned(self):
        return self.pin_count > 0

    # -- state writes (split-on-write through the store) -----------------
    def zero(self):
        """Fill the frame with zeros (clears any residual data)."""
        self._store._set_content(self.hpa, PageContent.ZERO, None)

    def write(self, tag):
        """Overwrite the frame with data attributed to ``tag``."""
        self._store._set_content(self.hpa, PageContent.DATA, tag)

    def read(self, reader):
        """Read the frame, enforcing the residual-data security check.

        Returns the content tag (None for a zeroed page).  Raises
        :class:`ResidualDataLeak` if the frame still holds a previous
        tenant's data — the exact condition eager/lazy zeroing exists to
        prevent.
        """
        run = self._store._run_at(self.hpa)
        if run.content is PageContent.RESIDUAL:
            raise ResidualDataLeak(self, reader)
        return run.content_tag

    def pin(self):
        self._store._adjust_pin(self.hpa, 1)

    def unpin(self):
        if self.pin_count <= 0:
            raise HardwareError(f"page {self.hpa:#x} unpinned while not pinned")
        self._store._adjust_pin(self.hpa, -1)

    def __repr__(self):
        return (
            f"<Page hpa={self.hpa:#x} size={self.size} "
            f"content={self.content.value} pins={self.pin_count}>"
        )


class AllocatedRegion:
    """A set of page frames backing one memory region.

    Frame state is held as a sorted list of :class:`PageRun` spans;
    :class:`Page` views are materialized lazily (and cached, so view
    identity is stable) only for consumers that need per-page handles.
    Bulk mutators (:meth:`write_index_span`, :meth:`zero_hpa_span`,
    :meth:`pin_all`, ...) operate on whole runs.

    Attributes:
        region_id: Unique id within the owning :class:`PhysicalMemory`.
        owner: Owner identifier (microVM id, hypervisor, ...).
        label: Human-readable purpose ("ram", "image", "bios-kernel").
        size_bytes: Total bytes (cached; this sits on the KVM slot-lookup
            hot path).
    """

    def __init__(self, region_id, owner, label, batches):
        self.region_id = region_id
        self.owner = owner
        self.label = label
        runs = [run for batch in batches for run in batch]
        if not runs:
            raise HardwareError(f"region {label!r} materialized empty")
        for run in runs:
            run.owner = owner
        self.page_size = runs[0].page_size
        self.size_bytes = sum(run.nbytes for run in runs)
        self._runs = runs
        self._starts = [run.hpa for run in runs]
        #: (start_hpa, end_hpa) per retrieval batch, in address order.
        self._batch_spans = [(batch[0].hpa, batch[-1].end) for batch in batches]
        #: Cumulative page count at the start of each batch, for
        #: page-index -> hpa resolution across discontiguous batches.
        self._batch_index_base = []
        base = 0
        for start, end in self._batch_spans:
            self._batch_index_base.append(base)
            base += (end - start) // self.page_size
        self._views = {}
        self._pages_cache = None

    # ------------------------------------------------------------------
    # shape queries
    # ------------------------------------------------------------------
    @property
    def page_count(self):
        return self.size_bytes // self.page_size

    @property
    def batch_count(self):
        return len(self._batch_spans)

    @property
    def runs(self):
        """The live run list (read-only use; address-ordered)."""
        return self._runs

    @property
    def pages(self):
        """All frames as :class:`Page` views, in address order."""
        if self._pages_cache is None or len(self._pages_cache) != self.page_count:
            self._pages_cache = [
                self.page_at_index(i) for i in range(self.page_count)
            ]
        return self._pages_cache

    @property
    def batches(self):
        """Views grouped by retrieval batch (contiguous within each)."""
        result = []
        for (start, end), base in zip(self._batch_spans, self._batch_index_base):
            count = (end - start) // self.page_size
            result.append([self.page_at_index(base + i) for i in range(count)])
        return result

    def page_at_index(self, index):
        """The ``index``-th frame (address order) as a view — O(log batches)."""
        return self.page_view(self._hpa_of_index(index))

    def page_view(self, hpa):
        view = self._views.get(hpa)
        if view is None:
            view = Page(hpa, self.page_size, _store=self)
            self._views[hpa] = view
        return view

    def _hpa_of_index(self, index):
        if not 0 <= index < self.page_count:
            raise HardwareError(
                f"region {self.label!r}: page index {index} out of range"
            )
        b = bisect.bisect_right(self._batch_index_base, index) - 1
        start, _end = self._batch_spans[b]
        return start + (index - self._batch_index_base[b]) * self.page_size

    def index_spans(self, first, count):
        """Contiguous (start_hpa, end_hpa) spans covering a page-index range."""
        spans = []
        remaining = count
        index = first
        while remaining > 0:
            b = bisect.bisect_right(self._batch_index_base, index) - 1
            start, end = self._batch_spans[b]
            hpa = start + (index - self._batch_index_base[b]) * self.page_size
            take = min(remaining, (end - hpa) // self.page_size)
            spans.append((hpa, hpa + take * self.page_size))
            index += take
            remaining -= take
        return spans

    # ------------------------------------------------------------------
    # run resolution / split / merge
    # ------------------------------------------------------------------
    def _index_at(self, hpa):
        i = bisect.bisect_right(self._starts, hpa) - 1
        if i < 0 or not (self._runs[i].hpa <= hpa < self._runs[i].end):
            raise HardwareError(
                f"region {self.label!r}: hpa {hpa:#x} not in region"
            )
        return i

    def _split_at(self, i, hpa):
        """Ensure a run boundary at ``hpa`` inside run ``i``; return the
        index of the run now starting at ``hpa``."""
        run = self._runs[i]
        if run.hpa == hpa:
            return i
        tail = run.clone(hpa, run.end - hpa)
        run.nbytes = hpa - run.hpa
        self._runs.insert(i + 1, tail)
        self._starts.insert(i + 1, hpa)
        return i + 1

    def _isolate_span(self, start, end):
        """Split so runs[lo:hi] exactly covers [start, end); return (lo, hi).

        The span must lie within one contiguous stretch of the region.
        """
        lo = self._split_at(self._index_at(start), start)
        hi = lo
        while self._runs[hi].end < end:
            hi += 1
        if self._runs[hi].end > end:
            self._split_at(hi, end)
        return lo, hi + 1

    def _merge_around(self, lo, hi):
        """Coalesce equal-state adjacent runs in runs[lo-1 : hi+1]."""
        i = max(lo - 1, 0)
        stop = min(hi + 1, len(self._runs))
        while i < stop - 1:
            a, b = self._runs[i], self._runs[i + 1]
            if a.end == b.hpa and a.state_equals(b):
                a.nbytes += b.nbytes
                del self._runs[i + 1]
                del self._starts[i + 1]
                stop -= 1
            else:
                i += 1

    # -- store protocol (single-page mutations from Page views) ----------
    def _run_at(self, hpa):
        return self._runs[self._index_at(hpa)]

    def _set_content(self, hpa, content, tag):
        i = self._index_at(hpa)
        run = self._runs[i]
        if run.content is content and run.content_tag == tag:
            return
        lo, hi = self._isolate_span(hpa, hpa + self.page_size)
        target = self._runs[lo]
        target.content = content
        target.content_tag = tag
        self._merge_around(lo, hi)

    def _adjust_pin(self, hpa, delta):
        lo, hi = self._isolate_span(hpa, hpa + self.page_size)
        self._runs[lo].pin_count += delta
        self._merge_around(lo, hi)

    def _set_owner(self, hpa, owner):
        lo, hi = self._isolate_span(hpa, hpa + self.page_size)
        self._runs[lo].owner = owner
        self._merge_around(lo, hi)

    # ------------------------------------------------------------------
    # bulk state operations (O(runs), not O(pages))
    # ------------------------------------------------------------------
    def write_index_span(self, first, count, tag):
        """DATA-fill ``count`` pages starting at page index ``first``."""
        for start, end in self.index_spans(first, count):
            lo, hi = self._isolate_span(start, end)
            for run in self._runs[lo:hi]:
                run.content = PageContent.DATA
                run.content_tag = tag
            self._merge_around(lo, hi)

    def read_index_span(self, first, count, reader):
        """Per-page content tags for an index range, leak-checked.

        Raises :class:`ResidualDataLeak` naming the first residual frame,
        exactly as a page-by-page read loop would.
        """
        tags = []
        for start, end in self.index_spans(first, count):
            i = self._index_at(start)
            hpa = start
            while hpa < end:
                run = self._runs[i]
                if run.content is PageContent.RESIDUAL:
                    raise ResidualDataLeak(self.page_view(hpa), reader)
                limit = min(run.end, end)
                tags.extend([run.content_tag] * ((limit - hpa) // self.page_size))
                hpa = limit
                i += 1
        return tags

    def zero_hpa_span(self, start, end):
        """ZERO-fill the frames in [start, end) (one contiguous stretch)."""
        lo, hi = self._isolate_span(start, end)
        for run in self._runs[lo:hi]:
            run.content = PageContent.ZERO
            run.content_tag = None
        self._merge_around(lo, hi)

    def zeroed_page_count(self):
        return sum(run.page_count for run in self._runs if run.is_zeroed)

    def dirty_spans(self):
        """(start_hpa, end_hpa) of every non-zeroed run, address order."""
        return [
            (run.hpa, run.end) for run in self._runs if not run.is_zeroed
        ]

    def zero_first_dirty(self, count):
        """Zero the first ``count`` non-zeroed pages in address order."""
        remaining = count
        i = 0
        while remaining > 0 and i < len(self._runs):
            run = self._runs[i]
            if not run.is_zeroed:
                take = min(remaining, run.page_count)
                if take < run.page_count:
                    self._split_at(i, run.hpa + take * self.page_size)
                run = self._runs[i]
                run.content = PageContent.ZERO
                run.content_tag = None
                remaining -= take
            i += 1
        self._merge_around(0, len(self._runs))

    def zero_all_dirty(self):
        for run in self._runs:
            if not run.is_zeroed:
                run.content = PageContent.ZERO
                run.content_tag = None
        self._merge_around(0, len(self._runs))

    def pin_all(self):
        """Pin every frame (uniform bump: no splits needed)."""
        for run in self._runs:
            run.pin_count += 1

    def unpin_all(self):
        for run in self._runs:
            if run.pin_count <= 0:
                raise HardwareError(
                    f"region {self.label!r}: run {run.hpa:#x} unpinned "
                    f"while not pinned"
                )
            run.pin_count -= 1
        self._merge_around(0, len(self._runs))

    def all_pinned(self):
        return all(run.pin_count > 0 for run in self._runs)

    def __repr__(self):
        return (
            f"<AllocatedRegion {self.label!r} owner={self.owner!r} "
            f"{self.size_bytes >> 20} MiB in {self.batch_count} batches "
            f"({len(self._runs)} runs)>"
        )


class _FreeExtent:
    """A run of free frames: [start_hpa, start_hpa + length_bytes)."""

    __slots__ = ("start", "length")

    def __init__(self, start, length):
        self.start = start
        self.length = length

    @property
    def end(self):
        return self.start + self.length


class _FreeStateMap:
    """Content state of *free* frames, as sorted disjoint intervals.

    Each interval is ``[start, end, kind, tag]`` with ``kind`` either
    ``"zero"`` (freed in the scrubbed state) or ``"residual"`` (dirty,
    ``tag`` names the previous tenant).  Frames absent from the map are
    pristine boot-time frames: conservatively residual with no tag.
    This replaces a per-frame dict/set pair, so recording a freed region
    costs O(runs).
    """

    __slots__ = ("_starts", "_items")

    def __init__(self):
        self._starts = []
        self._items = []  # [start, end, kind, tag]

    def insert(self, start, end, kind, tag):
        """Record state for [start, end); the range must be absent."""
        i = bisect.bisect_left(self._starts, start)
        if i > 0:
            left = self._items[i - 1]
            if left[1] == start and left[2] == kind and left[3] == tag:
                start = left[0]
                i -= 1
                del self._starts[i]
                del self._items[i]
        if i < len(self._items):
            right = self._items[i]
            if right[0] == end and right[2] == kind and right[3] == tag:
                end = right[1]
                del self._starts[i]
                del self._items[i]
        self._starts.insert(i, start)
        self._items.insert(i, [start, end, kind, tag])

    def take(self, start, end):
        """Remove and return the state pieces covering [start, end).

        Gaps (never-freed frames) come back as ``("residual", None)``.
        Adjacent equal-state pieces are pre-merged, so the result is the
        minimal run decomposition of the range.
        """
        pieces = []
        i = bisect.bisect_right(self._starts, start) - 1
        if i < 0:
            i = 0
        pos = start
        while pos < end:
            if i >= len(self._items):
                pieces.append((pos, end, "residual", None))
                break
            item = self._items[i]
            if item[1] <= pos:
                i += 1
                continue
            if item[0] > pos:
                gap_end = min(item[0], end)
                pieces.append((pos, gap_end, "residual", None))
                pos = gap_end
                continue
            take_end = min(item[1], end)
            pieces.append((pos, take_end, item[2], item[3]))
            if item[0] < pos and item[1] > take_end:
                self._starts.insert(i + 1, take_end)
                self._items.insert(i + 1, [take_end, item[1], item[2], item[3]])
                item[1] = pos
                i += 1
            elif item[0] < pos:
                item[1] = pos
                i += 1
            elif item[1] > take_end:
                item[0] = take_end
                self._starts[i] = take_end
            else:
                del self._starts[i]
                del self._items[i]
            pos = take_end
        merged = []
        for piece in pieces:
            if (merged and merged[-1][1] == piece[0]
                    and merged[-1][2] == piece[2] and merged[-1][3] == piece[3]):
                merged[-1] = (merged[-1][0], piece[1], piece[2], piece[3])
            else:
                merged.append(piece)
        return merged


class PhysicalMemory:
    """Page-frame allocator over a flat host physical address space.

    Frames are handed out in address order, largest-contiguous-first
    within the request, grouped into batches per contiguous free extent.
    Freed extents are coalesced with neighbours, and freed frames are
    marked RESIDUAL with the dead owner's tag — recycled memory is dirty
    until someone zeroes it, exactly the hazard §3.2.3 describes.

    Args:
        total_bytes: Size of the physical address space.
        page_size: Frame granularity.  The paper's testbed runs with
            2 MiB hugepages (§3.1); tests may use 4 KiB with smaller
            totals.
    """

    def __init__(self, total_bytes, page_size=HUGE_PAGE_SIZE):
        if total_bytes <= 0 or total_bytes % page_size != 0:
            raise ValueError(
                f"total_bytes ({total_bytes}) must be a positive multiple of "
                f"page_size ({page_size})"
            )
        self.total_bytes = total_bytes
        self.page_size = page_size
        self._free = [_FreeExtent(0, total_bytes)]
        self._regions = {}
        #: Sorted batch-span index for page_at: parallel (start, end, region).
        self._span_starts = []
        self._span_items = []  # (end, region)
        self._free_state = _FreeStateMap()
        self._next_region_id = 0
        self.allocated_bytes = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def free_bytes(self):
        return self.total_bytes - self.allocated_bytes

    @property
    def free_extent_count(self):
        return len(self._free)

    def page_at(self, hpa):
        """Return the allocated :class:`Page` containing ``hpa``."""
        i = bisect.bisect_right(self._span_starts, hpa) - 1
        if i >= 0:
            end, region = self._span_items[i]
            if hpa < end:
                frame_start = (hpa // self.page_size) * self.page_size
                return region.page_view(frame_start)
        raise HardwareError(f"hpa {hpa:#x} is not an allocated frame")

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, nbytes, owner, label="anon"):
        """Allocate ``nbytes`` (rounded up to whole frames).

        Returns an :class:`AllocatedRegion` whose ``batches`` reflect
        the contiguity of the free extents consumed.  Frames come back
        in whatever content state they were freed with — RESIDUAL if a
        previous tenant used them.
        """
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive, got {nbytes}")
        remaining = -(-nbytes // self.page_size) * self.page_size
        if remaining > self.free_bytes:
            raise OutOfMemory(
                f"requested {remaining} bytes for {owner!r}/{label!r}, "
                f"only {self.free_bytes} free"
            )
        batches = []
        consumed = 0
        new_free = []
        for extent in self._free:
            if remaining <= 0:
                new_free.append(extent)
                continue
            take = min(extent.length, remaining)
            batches.append(self._materialize(extent.start, take))
            remaining -= take
            consumed += take
            if take < extent.length:
                new_free.append(_FreeExtent(extent.start + take, extent.length - take))
        if remaining > 0:  # pragma: no cover - guarded by free_bytes check
            raise OutOfMemory("free list inconsistent with accounting")
        self._free = new_free
        self.allocated_bytes += consumed
        region = AllocatedRegion(self._next_region_id, owner, label, batches)
        self._next_region_id += 1
        self._regions[region.region_id] = region
        for start, end in region._batch_spans:
            i = bisect.bisect_left(self._span_starts, start)
            self._span_starts.insert(i, start)
            self._span_items.insert(i, (end, region))
        return region

    def _materialize(self, start, length):
        """One retrieval batch: the minimal runs covering [start, +length).

        Recycled frames come back with whatever state they were freed in
        (clean if zeroed-then-freed, residual-with-tag if dirty);
        pristine boot-time frames are conservatively residual with no
        tag (content unknown).
        """
        batch = []
        for s, e, kind, tag in self._free_state.take(start, start + length):
            content = PageContent.ZERO if kind == "zero" else PageContent.RESIDUAL
            batch.append(PageRun(s, e - s, self.page_size, content, tag))
        return batch

    def free(self, region):
        """Return a region's frames to the free pool.

        Pinned frames cannot be freed (DMA could still target them);
        attempting to do so is a modeling error and raises.
        Freed frames are recorded as residual-with-tag so the next
        tenant's allocator sees dirty memory.
        """
        if region.region_id not in self._regions:
            raise HardwareError(f"double free of region {region.region_id}")
        for run in region._runs:
            if run.pin_count > 0:
                raise HardwareError(
                    f"freeing pinned page {run.hpa:#x} (owner {region.owner!r})"
                )
        del self._regions[region.region_id]
        for run in region._runs:
            if run.content is PageContent.ZERO:
                self._free_state.insert(run.hpa, run.end, "zero", None)
            else:
                tag = (
                    run.content_tag if run.content_tag is not None
                    else region.owner
                )
                self._free_state.insert(run.hpa, run.end, "residual", tag)
        for start, end in region._batch_spans:
            i = bisect.bisect_left(self._span_starts, start)
            del self._span_starts[i]
            del self._span_items[i]
            self._insert_free(_FreeExtent(start, end - start))
        self.allocated_bytes -= region.size_bytes

    def _insert_free(self, extent):
        """Insert and coalesce with adjacent free extents."""
        free = self._free
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid].start < extent.start:
                lo = mid + 1
            else:
                hi = mid
        free.insert(lo, extent)
        # Coalesce with successor first, then predecessor.
        if lo + 1 < len(free) and free[lo].end == free[lo + 1].start:
            free[lo].length += free[lo + 1].length
            del free[lo + 1]
        if lo > 0 and free[lo - 1].end == free[lo].start:
            free[lo - 1].length += free[lo].length
            del free[lo]

    # ------------------------------------------------------------------
    # fragmentation injection (for the P2 retrieval-cost ablation)
    # ------------------------------------------------------------------
    def fragment(self, max_run_bytes, jitter=None):
        """Artificially split free extents into runs <= ``max_run_bytes``.

        Models a long-running host whose free memory is fragmented, to
        reproduce the paper's P2 sub-bottleneck (high retrieval cost
        from many small batches).  With ``jitter`` the run lengths vary
        uniformly in [page_size, max_run_bytes].
        """
        if max_run_bytes < self.page_size or max_run_bytes % self.page_size != 0:
            raise ValueError(
                f"max_run_bytes must be a multiple of page_size >= {self.page_size}"
            )
        fragmented = []
        for extent in self._free:
            offset = extent.start
            remaining = extent.length
            while remaining > 0:
                if jitter is None:
                    run = max_run_bytes
                else:
                    pages = jitter.randint(1, max_run_bytes // self.page_size)
                    run = pages * self.page_size
                run = min(run, remaining)
                fragmented.append(_FreeExtent(offset, run))
                offset += run
                remaining -= run
        self._free = fragmented

    def __repr__(self):
        return (
            f"<PhysicalMemory {self.total_bytes >> 30} GiB page={self.page_size} "
            f"allocated={self.allocated_bytes >> 20} MiB "
            f"extents={len(self._free)}>"
        )
