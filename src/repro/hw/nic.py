"""SR-IOV NIC: physical function, virtual functions, and the DMA engine.

Models the paper's Intel E810-class adapter (§3.1): one Physical
Function that owns the hardware resources and can carve out up to
``max_vfs`` Virtual Functions, each a PCI function on the same bus with
*bus-level* reset only (the E810 does not support slot-level VF reset,
which is what forces all VFs into one VFIO devset — §3.2.2).

The :class:`DmaEngine` performs device-side memory accesses through an
IOMMU domain, page by page, marking written frames with the writer's
tag.  It is how serverless download traffic lands in guest RX buffers
in the Fig. 15/16 experiments, and how DMA-vs-zeroing correctness is
exercised in tests.
"""

from repro.hw.errors import HardwareError
from repro.hw.pci import PciDevice, ResetScope


class VirtualFunction(PciDevice):
    """One SR-IOV VF.

    Attributes:
        index: VF index within its PF.
        pf: Owning :class:`PhysicalFunction`.
        mac: Assigned MAC address (set by the CNI via the PF driver).
        vlan: Assigned VLAN id, or None.
        assigned_to: Name of the microVM currently using the VF, or None.
    """

    def __init__(self, pf, index, bdf, reset_scope=ResetScope.BUS):
        super().__init__(bdf, f"{pf.nic.model}-vf{index}", reset_scope)
        self.pf = pf
        self.index = index
        self.mac = None
        self.vlan = None
        self.assigned_to = None
        self.netdev_name = None

    @property
    def is_assigned(self):
        return self.assigned_to is not None

    def __repr__(self):
        return (
            f"<VF {self.bdf} idx={self.index} driver={self.driver!r} "
            f"assigned_to={self.assigned_to!r}>"
        )


class PhysicalFunction(PciDevice):
    """The PF: owns NIC hardware resources and manages VF lifecycle."""

    def __init__(self, nic, bdf):
        super().__init__(bdf, f"{nic.model}-pf", ResetScope.BUS)
        self.nic = nic
        self.vfs = []

    def create_vfs(self, count, topology, bus_number):
        """Pre-create ``count`` VFs on the given bus (Kubelet boot-time
        task in Fig. 4; its cost is excluded from startup per §2.3)."""
        if self.vfs:
            raise HardwareError(f"PF {self.bdf}: VFs already created")
        if count > self.nic.max_vfs:
            raise HardwareError(
                f"PF {self.bdf}: {count} VFs exceeds hardware limit "
                f"{self.nic.max_vfs}"
            )
        bus, dev_fn = self.bdf.split(":")
        base_dev = int(dev_fn.split(".")[0], 16)
        for index in range(count):
            dev = base_dev + 1 + index // 8
            fn = index % 8
            vf = VirtualFunction(self, index, f"{bus}:{dev:02x}.{fn}")
            topology.attach(bus_number, vf)
            self.vfs.append(vf)
        return list(self.vfs)

    def configure_vf(self, vf, mac=None, vlan=None):
        """Set VF parameters through the PF driver (CNI ``t_config``)."""
        if vf.pf is not self:
            raise HardwareError(f"VF {vf.bdf} does not belong to PF {self.bdf}")
        if mac is not None:
            vf.mac = mac
        if vlan is not None:
            vf.vlan = vlan

    def __repr__(self):
        return f"<PF {self.bdf} vfs={len(self.vfs)}>"


class SriovNic:
    """A whole SR-IOV adapter: PF + VFs + DMA engine."""

    def __init__(self, model, max_vfs, bandwidth_gbps, topology, bus_number, pf_bdf):
        self.model = model
        self.max_vfs = max_vfs
        self.bandwidth_gbps = bandwidth_gbps
        self.pf = PhysicalFunction(self, pf_bdf)
        topology.attach(bus_number, self.pf)
        self.dma = DmaEngine(self)

    def __repr__(self):
        return f"<SriovNic {self.model} vfs={len(self.pf.vfs)}/{self.max_vfs}>"


class DmaEngine:
    """Device-side DMA: translated reads/writes through an IOMMU domain.

    All accesses are decomposed into page-granular operations, because
    each page's translation is an independent IOMMU lookup and each
    written frame must be individually marked (for leak checking).
    """

    def __init__(self, nic):
        self.nic = nic
        self.bytes_written = 0
        self.bytes_read = 0

    def write(self, domain, iova, nbytes, writer_tag):
        """DMA-write ``nbytes`` starting at ``iova``.

        Raises :class:`~repro.hw.errors.DmaTranslationFault` if any page
        in the range is unmapped — DMA cannot page-fault (§3.2.3).
        Returns the list of physical pages written.
        """
        pages = []
        for page, _offset in self._walk(domain, iova, nbytes):
            page.write(writer_tag)
            pages.append(page)
        self.bytes_written += nbytes
        return pages

    def read(self, domain, iova, nbytes, reader_tag):
        """DMA-read ``nbytes`` (e.g. TX); enforces the residual check."""
        tags = []
        for page, _offset in self._walk(domain, iova, nbytes):
            tags.append(page.read(reader_tag))
        self.bytes_read += nbytes
        return tags

    def _walk(self, domain, iova, nbytes):
        if nbytes <= 0:
            raise ValueError(f"DMA length must be positive, got {nbytes}")
        offset = 0
        while offset < nbytes:
            page, in_page = domain.translate(iova + offset)
            step = min(page.size - in_page, nbytes - offset)
            yield page, in_page
            offset += step

    def __repr__(self):
        return (
            f"<DmaEngine {self.nic.model} written={self.bytes_written} "
            f"read={self.bytes_read}>"
        )
