"""PCI topology: buses, devices, and reset-scope semantics.

The VFIO devset bottleneck (§3.2.2) is rooted in PCI reset semantics:
devices that support *slot-level* reset form singleton devsets, while
devices that only support *bus-level* reset — including the paper's
Intel E810 and IPU E2100 VFs — share one devset per bus, and therefore
one coarse lock in the vanilla VFIO driver.  This module models just
enough of PCI to reproduce that: buses with attached devices, per-device
reset scope, and bus scans whose cost (charged by the VFIO driver model)
is proportional to the number of devices on the bus.
"""

import enum

from repro.hw.errors import HardwareError


class ResetScope(enum.Enum):
    """How a device can be function-level reset."""

    #: The device can be reset alone; it forms a devset by itself.
    SLOT = "slot"
    #: Reset affects every device on the bus; the whole bus shares a devset.
    BUS = "bus"


class PciDevice:
    """One PCI(e) function.

    Attributes:
        bdf: "bus:device.function" address string, unique per topology.
        name: Human-readable model name.
        bus: Owning :class:`PciBus` (set when attached).
        reset_scope: :class:`ResetScope` capability.
        driver: Name of the currently bound host driver, or None.
    """

    def __init__(self, bdf, name, reset_scope=ResetScope.BUS):
        self.bdf = bdf
        self.name = name
        self.reset_scope = reset_scope
        self.bus = None
        self.driver = None

    @property
    def is_bound(self):
        return self.driver is not None

    def __repr__(self):
        return f"<PciDevice {self.bdf} {self.name!r} driver={self.driver!r}>"


class PciBus:
    """A PCI bus holding devices that share bus-level reset fate."""

    def __init__(self, number):
        self.number = number
        self.devices = []

    def attach(self, device):
        if device.bus is not None:
            raise HardwareError(f"device {device.bdf} already on bus {device.bus.number}")
        device.bus = self
        self.devices.append(device)

    @property
    def device_count(self):
        return len(self.devices)

    def __repr__(self):
        return f"<PciBus {self.number:#04x} devices={self.device_count}>"


class PciTopology:
    """All buses and devices of one host."""

    def __init__(self):
        self.buses = {}
        self._by_bdf = {}

    def add_bus(self, number):
        if number in self.buses:
            raise HardwareError(f"bus {number:#04x} already exists")
        bus = PciBus(number)
        self.buses[number] = bus
        return bus

    def attach(self, bus_number, device):
        if device.bdf in self._by_bdf:
            raise HardwareError(f"duplicate BDF {device.bdf}")
        self.buses[bus_number].attach(device)
        self._by_bdf[device.bdf] = device

    def find(self, bdf):
        try:
            return self._by_bdf[bdf]
        except KeyError:
            raise HardwareError(f"no device at {bdf}") from None

    @property
    def device_count(self):
        return len(self._by_bdf)

    def __repr__(self):
        return f"<PciTopology buses={len(self.buses)} devices={self.device_count}>"
