"""Measurement infrastructure: step timelines, statistics, reporting.

Mirrors the paper's methodology (§3.1): an asynchronous logging layer
integrated into every component records fine-grained per-container step
spans, which experiments aggregate into the breakdowns of Fig. 5/Tab. 1
and the distributions of Fig. 12/13/15/16.
"""

from repro.metrics.reporting import format_series, format_table
from repro.metrics.stats import Distribution, cdf_points, mean, percentile
from repro.metrics.timeline import (
    STEP_CGROUP,
    STEP_DMA_IMAGE,
    STEP_DMA_RAM,
    STEP_VF_DRIVER,
    STEP_VFIO_DEV,
    STEP_VIRTIOFS,
    PAPER_STEPS,
    VF_RELATED_STEPS,
    StartupRecord,
    StepTimer,
)

__all__ = [
    "Distribution",
    "PAPER_STEPS",
    "STEP_CGROUP",
    "STEP_DMA_IMAGE",
    "STEP_DMA_RAM",
    "STEP_VF_DRIVER",
    "STEP_VFIO_DEV",
    "STEP_VIRTIOFS",
    "StartupRecord",
    "StepTimer",
    "VF_RELATED_STEPS",
    "cdf_points",
    "format_series",
    "format_table",
    "mean",
    "percentile",
]
