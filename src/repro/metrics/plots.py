"""ASCII rendering of the paper's figure types.

Terminal-friendly stand-ins for the paper's plots, used by the
experiment harness so that ``python -m repro run fig12`` shows an
actual CDF and ``fig5`` an actual per-container timeline (Gantt), not
just tables.
"""


def ascii_cdf(series, width=64, height=16, x_label="seconds"):
    """Render CDF curves for ``{label: sorted_values}``.

    Each series is drawn with its own marker; the y axis is cumulative
    fraction 0..1, the x axis spans the pooled value range.
    """
    if not series:
        raise ValueError("no series to plot")
    markers = "*o+x#@%&"
    all_values = [v for values in series.values() for v in values]
    lo, hi = min(all_values), max(all_values)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]

    for index, (label, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        n = len(values)
        for rank, value in enumerate(sorted(values)):
            x = int((value - lo) / span * (width - 1))
            y = int((rank + 1) / n * (height - 1))
            grid[height - 1 - y][x] = marker

    lines = []
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        lines.append(f"{fraction:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    left = f"{lo:.2f}"
    right = f"{hi:.2f}"
    pad = width - len(left) - len(right)
    lines.append("      " + left + " " * max(pad, 1) + right)
    lines.append(f"      ({x_label})")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={label}"
        for i, label in enumerate(series)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def ascii_gantt(timelines, step_order, width=72, max_rows=20):
    """Render per-container step timelines (the Fig. 5 visual).

    ``timelines`` is ``[(container_id, [(step, start, end), ...]), ...]``;
    each step is drawn with the digit prefix of its name (e.g. '4' for
    '4-vfio-dev').
    """
    if not timelines:
        raise ValueError("no timelines to plot")
    t_end = max(
        end for _cid, spans in timelines for _s, _start, end in spans
    )
    t_end = t_end or 1.0
    lines = [f"time 0 {'-' * (width - 12)} {t_end:.1f}s"]
    for cid, spans in timelines[:max_rows]:
        row = [" "] * width
        for step, start, end in spans:
            if step not in step_order:
                continue
            mark = step[0]
            x0 = int(start / t_end * (width - 1))
            x1 = max(x0 + 1, int(end / t_end * (width - 1)))
            for x in range(x0, min(x1, width)):
                row[x] = mark
        lines.append(f"{cid:>6s} |" + "".join(row))
    legend = "  ".join(f"{step[0]}={step}" for step in step_order)
    lines.append("legend: " + legend)
    return "\n".join(lines)


def ascii_bars(values, width=48, unit="s"):
    """Render a horizontal bar chart for ``{label: value}`` (Fig. 11)."""
    if not values:
        raise ValueError("no bars to plot")
    peak = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        bar = "#" * max(1, int(value / peak * width))
        lines.append(f"{label:>{label_width}s} |{bar} {value:.2f}{unit}")
    return "\n".join(lines)
