"""Plain-text rendering of experiment results (tables and series).

Benchmarks print these alongside the paper's reported values so that
paper-vs-measured comparisons appear directly in ``pytest benchmarks/``
output and in EXPERIMENTS.md.
"""


def format_table(headers, rows, title=None):
    """Render an aligned ASCII table.

    Floats are shown with 3 decimals; everything else via ``str``.
    """
    def fmt(cell):
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in str_rows)) if str_rows
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name, xs, ys, x_label="x", y_label="y"):
    """Render one figure series as aligned columns."""
    rows = [(x, y) for x, y in zip(xs, ys)]
    return format_table([x_label, y_label], rows, title=name)


def format_comparison(title, rows):
    """Render paper-vs-measured rows: (label, paper, measured, note)."""
    return format_table(
        ["metric", "paper", "measured", "note"], rows, title=title
    )
