"""Statistics helpers for experiment reporting (means, tails, CDFs)."""

import math


def mean(values):
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values, q):
    """Linear-interpolation percentile, ``q`` in [0, 100].

    Matches numpy's default ("linear") method so results are stable if
    a consumer cross-checks with numpy.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def cdf_points(values):
    """[(value, cumulative_fraction), ...] for distribution plots."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ValueError("cdf of empty sequence")
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


class Distribution:
    """Summary of one metric across containers."""

    def __init__(self, values, label=""):
        self.values = sorted(values)
        self.label = label
        if not self.values:
            raise ValueError(f"distribution {label!r} is empty")

    @property
    def count(self):
        return len(self.values)

    @property
    def mean(self):
        return mean(self.values)

    @property
    def minimum(self):
        return self.values[0]

    @property
    def maximum(self):
        return self.values[-1]

    def percentile(self, q):
        return percentile(self.values, q)

    @property
    def p50(self):
        return self.percentile(50)

    @property
    def p99(self):
        return self.percentile(99)

    def cdf(self):
        return cdf_points(self.values)

    def reduction_vs(self, baseline, metric="mean"):
        """Fractional reduction of this distribution vs a baseline.

        ``metric`` is "mean" or a percentile like "p99".  Positive means
        this distribution is smaller (faster).
        """
        ours = getattr(self, metric) if metric in ("mean",) else self.percentile(
            float(metric.lstrip("p"))
        )
        theirs = (
            baseline.mean
            if metric == "mean"
            else baseline.percentile(float(metric.lstrip("p")))
        )
        if theirs == 0:
            raise ValueError("baseline metric is zero")
        return 1.0 - ours / theirs

    def summary(self):
        return {
            "label": self.label,
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __repr__(self):
        return (
            f"<Distribution {self.label!r} n={self.count} "
            f"mean={self.mean:.3f} p99={self.p99:.3f}>"
        )
