"""Per-container startup timelines with the paper's step names.

Fig. 5 breaks concurrent startup into six named steps; experiments here
use exactly the same identifiers so tables read like the paper's:

========  =====================================================
step      meaning
========  =====================================================
0-cgroup  cgroup creation for the container
1-dma-ram DMA memory mapping of the microVM RAM region
2-virtiofs shared-filesystem (virtiofsd) setup
3-dma-image DMA memory mapping of the microVM image region
4-vfio-dev opening/registering the VF from its VFIO devset
5-vf-driver VF driver initialization inside the microVM
========  =====================================================

Steps outside the six (VM creation, ROM/image load, guest boot, agent,
app phases) are recorded under their own names and aggregated as
"others", as in Fig. 11's stacking.
"""

STEP_CGROUP = "0-cgroup"
STEP_DMA_RAM = "1-dma-ram"
STEP_VIRTIOFS = "2-virtiofs"
STEP_DMA_IMAGE = "3-dma-image"
STEP_VFIO_DEV = "4-vfio-dev"
STEP_VF_DRIVER = "5-vf-driver"

#: The six steps of Fig. 5 / Tab. 1, in pipeline order.
PAPER_STEPS = (
    STEP_CGROUP,
    STEP_DMA_RAM,
    STEP_VIRTIOFS,
    STEP_DMA_IMAGE,
    STEP_VFIO_DEV,
    STEP_VF_DRIVER,
)

#: The VF-related subset (rows 1, 3, 4, 5 of Tab. 1).
VF_RELATED_STEPS = (STEP_DMA_RAM, STEP_DMA_IMAGE, STEP_VFIO_DEV, STEP_VF_DRIVER)


class _Span:
    __slots__ = ("start", "end")

    def __init__(self, start):
        self.start = start
        self.end = None

    @property
    def duration(self):
        if self.end is None:
            raise ValueError("span still open")
        return self.end - self.start


class _StepContext:
    """Context manager produced by :meth:`StepTimer.step`.

    Safe to use around ``yield`` statements inside process generators —
    ``with`` is lexical, so the span brackets exactly the simulated time
    the enclosed commands consumed.
    """

    def __init__(self, timer, name):
        self._timer = timer
        self._name = name
        self._span = None
        self._track = None

    def __enter__(self):
        self._span = _Span(self._timer._sim.now)
        self._timer._record._spans.setdefault(self._name, []).append(self._span)
        trace = self._timer._trace
        if trace is not None:
            self._track = trace.current_track()
            trace.begin(self._track, self._name)
        return self

    def __exit__(self, exc_type, exc, tb):
        self._span.end = self._timer._sim.now
        if self._track is not None:
            trace = self._timer._trace
            trace.end(self._track)
            # Step boundaries are the host's deterministic sampling
            # instants for its pull probes (CPU runnable, EPT faults,
            # bytes zeroed): a host's own steps land at identical
            # virtual times regardless of how the cluster is sharded.
            trace.sample_probes(self._timer._probe_owner)
        return False


class StartupRecord:
    """Everything measured about one container's startup."""

    def __init__(self, container_id):
        self.container_id = container_id
        self.t_start = None
        self.t_ready = None       # startup complete (VM + network usable)
        self.t_app_done = None    # task completion (§6.6), if an app ran
        self._spans = {}          # step name -> [Span, ...]
        self.failed = None

    # ------------------------------------------------------------------
    # durations
    # ------------------------------------------------------------------
    @property
    def startup_time(self):
        if self.t_start is None or self.t_ready is None:
            raise ValueError(f"container {self.container_id}: startup incomplete")
        return self.t_ready - self.t_start

    @property
    def task_completion_time(self):
        if self.t_app_done is None:
            raise ValueError(f"container {self.container_id}: no app ran")
        return self.t_app_done - self.t_start

    def step_time(self, name):
        """Total duration attributed to a step (0 if never entered).

        Spans still open when the measurement window closed (e.g. an
        asynchronous VF init that outlived startup) contribute nothing:
        they are exactly the overlapped work FastIOV masks.
        """
        return sum(
            span.duration
            for span in self._spans.get(name, [])
            if span.end is not None
        )

    def step_names(self):
        return sorted(self._spans)

    def vf_related_time(self):
        return sum(self.step_time(name) for name in VF_RELATED_STEPS)

    def others_time(self):
        """Startup time not attributed to the four VF-related steps."""
        return self.startup_time - self.vf_related_time()

    def timeline(self):
        """[(step, start, end), ...] sorted by start, for Fig. 5 plots."""
        events = [
            (name, span.start, span.end)
            for name, spans in self._spans.items()
            for span in spans
            if span.end is not None
        ]
        return sorted(events, key=lambda item: item[1])

    def __repr__(self):
        state = "ok" if self.failed is None else f"FAILED({self.failed})"
        return f"<StartupRecord {self.container_id} {state}>"


class StepTimer:
    """Records step spans into one container's :class:`StartupRecord`.

    Passed down the whole startup pipeline (engine -> CNI -> runtime ->
    hypervisor -> guest), mirroring the paper's logging tool that was
    integrated into Kata-QEMU and the kernel (§3.1).
    """

    def __init__(self, sim, record, trace=None, probe_owner=None):
        self._sim = sim
        self._record = record
        #: Optional flight recorder; step spans and lifecycle marks are
        #: mirrored onto the executing process's trace track, and the
        #: owning host's pull probes are sampled at every step end.
        self._trace = trace
        self._probe_owner = probe_owner

    @property
    def record(self):
        return self._record

    def step(self, name):
        """Bracket a pipeline stage: ``with timer.step("1-dma-ram"):``."""
        return _StepContext(self, name)

    def mark_start(self):
        self._record.t_start = self._sim.now
        if self._trace is not None:
            self._trace.instant(self._trace.current_track(), "start")

    def mark_ready(self):
        self._record.t_ready = self._sim.now
        if self._trace is not None:
            self._trace.instant(self._trace.current_track(), "ready")

    def mark_app_done(self):
        self._record.t_app_done = self._sim.now
        if self._trace is not None:
            self._trace.instant(self._trace.current_track(), "app-done")


class NullTimer:
    """A timer that records nothing (for untimed warm-up containers)."""

    class _Noop:
        def __enter__(self):
            return self

        def __exit__(self, *args):
            return False

    _NOOP = _Noop()

    def step(self, name):
        return self._NOOP

    def mark_start(self):
        pass

    def mark_ready(self):
        pass

    def mark_app_done(self):
        pass
