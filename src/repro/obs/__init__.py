"""Flight recorder: simulated-time tracing and metrics for the stack.

The paper's argument is a latency *breakdown* (Fig. 5 / Tab. 1 / the
Fig. 11 stacking); this package makes the simulated pipeline observable
at the same granularity.  A :class:`~repro.obs.recorder.TraceRecorder`
collects begin/end spans, instants and counter samples in *virtual*
time, attributed to per-process tracks (one per container lifecycle,
one per background daemon), and a
:class:`~repro.obs.metrics.MetricsRegistry` accumulates counters,
gauges and log-bucketed histograms.  Exporters render the recording as
Chrome trace-event JSON (loadable in Perfetto / chrome://tracing), a
flat metrics JSON, and a terminal span-tree summary.

Design constraints (see DESIGN.md):

* **Disabled path is free.**  Every call site in the simulator, sync
  primitives, kernel models and cluster layers is guarded by a single
  ``if trace is not None`` on a ``__slots__`` attribute; with tracing
  off (the default) no recorder exists and all experiment output is
  byte-identical to an uninstrumented build.
* **Shard-merge determinism.**  Every event is attributed to a
  host-unique track (container names are cluster-unique, daemon tracks
  are host-prefixed), so merging per-shard recordings is a disjoint
  union and the exported trace of a sharded run is byte-identical to
  the single-process run for round-robin and burst-arrival cells.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import TraceRecorder

__all__ = ["MetricsRegistry", "TraceRecorder"]
