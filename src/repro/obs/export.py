"""Exporters for flight-recorder bundles.

Three views of the same ``{"tracks", "metrics"}`` bundle (see
``repro.obs.recorder``):

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — Chrome
  trace-event JSON, loadable in Perfetto (https://ui.perfetto.dev) and
  chrome://tracing.  Tracks become threads of one synthetic process;
  timestamps are virtual microseconds.
* :func:`flat_metrics` / :func:`write_metrics` — the metrics registry
  as flat JSON (histogram buckets get human-readable labels).
* :func:`span_summary` / :func:`render_span_summary` — a terminal
  aggregate: per span name, how many times it ran and how much
  simulated time it covered.

Determinism: output depends only on the bundle contents.  Tracks are
ordered by name, events keep their per-track order, and JSON is dumped
with sorted keys — so a merged sharded recording serializes
byte-identically to the single-process one whenever the per-track
event streams match (round-robin and burst-arrival cells).
"""

import json


def to_chrome_trace(bundle):
    """Render a recorder bundle as a Chrome trace-event object."""
    events = [{
        "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
        "args": {"name": "repro-sim (virtual time)"},
    }]
    tracks = bundle["tracks"]
    for tid, track in enumerate(sorted(tracks)):
        events.append({
            "ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
            "args": {"name": track},
        })
        for event in tracks[track]:
            kind = event[0]
            ts = event[1] * 1e6  # virtual seconds -> microseconds
            if kind == "B":
                events.append({"ph": "B", "ts": ts, "pid": 0, "tid": tid,
                               "name": event[2], "cat": "span"})
            elif kind == "E":
                events.append({"ph": "E", "ts": ts, "pid": 0, "tid": tid})
            elif kind == "I":
                events.append({"ph": "i", "ts": ts, "pid": 0, "tid": tid,
                               "name": event[2], "s": "t"})
            else:  # "C"
                events.append({"ph": "C", "ts": ts, "pid": 0, "tid": tid,
                               "name": f"{track}:{event[2]}",
                               "args": {"value": event[3]}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(bundle, path):
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(bundle), handle, sort_keys=True,
                  separators=(",", ":"))
        handle.write("\n")


def _bucket_name(histogram, index):
    """Histogram-aware bucket label.

    Duration histograms recorded via ``observe`` use base-2
    microsecond buckets; the sharded runner's ``*_hist`` series
    (rollback depth in virtual seconds, replay distance in events) use
    plain power-of-two value buckets, so their labels carry no unit.
    """
    from repro.obs.metrics import bucket_label

    if histogram.endswith("_hist"):
        return "le_1" if index == 0 else f"le_{2 ** index}"
    return bucket_label(index)


def flat_metrics(bundle):
    """The metrics snapshot with labeled histogram buckets."""
    metrics = bundle["metrics"]
    return {
        "counters": dict(metrics.get("counters", {})),
        "gauges": dict(metrics.get("gauges", {})),
        "histograms": {
            name: {
                _bucket_name(name, int(index)): count
                for index, count in sorted(
                    buckets.items(), key=lambda item: int(item[0])
                )
            }
            for name, buckets in metrics.get("histograms", {}).items()
        },
    }


def write_metrics(bundle, path):
    with open(path, "w") as handle:
        json.dump(flat_metrics(bundle), handle, sort_keys=True, indent=2)
        handle.write("\n")


def span_summary(bundle):
    """Aggregate spans by name: {name: (count, total_s, max_s)}.

    Computed by replaying each track's B/E stream (tracks visited in
    sorted order, so the floating-point accumulation order — and hence
    the rendered numbers — is shard-invariant).
    """
    summary = {}
    tracks = bundle["tracks"]
    for track in sorted(tracks):
        stack = []
        for event in tracks[track]:
            kind = event[0]
            if kind == "B":
                stack.append((event[2], event[1]))
            elif kind == "E" and stack:
                name, started = stack.pop()
                duration = event[1] - started
                count, total, peak = summary.get(name, (0, 0.0, 0.0))
                summary[name] = (
                    count + 1, total + duration, max(peak, duration)
                )
    return summary


def render_span_summary(bundle, limit=30):
    """The terminal span-tree summary, widest spans first."""
    summary = span_summary(bundle)
    rows = sorted(summary.items(), key=lambda item: (-item[1][1], item[0]))
    width = max([len(name) for name, _ in rows[:limit]] + [4])
    lines = [f"{'span':{width}s}  {'count':>7s}  {'total_s':>10s}  "
             f"{'max_s':>9s}"]
    for name, (count, total, peak) in rows[:limit]:
        lines.append(
            f"{name:{width}s}  {count:7d}  {total:10.3f}  {peak:9.4f}"
        )
    if len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more span names")
    return "\n".join(lines)
