"""Exporters for flight-recorder bundles.

Three views of the same ``{"tracks", "metrics"}`` bundle (see
``repro.obs.recorder``):

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — Chrome
  trace-event JSON, loadable in Perfetto (https://ui.perfetto.dev) and
  chrome://tracing.  Tracks become threads of one synthetic process;
  timestamps are virtual microseconds.
* :func:`flat_metrics` / :func:`write_metrics` — the metrics registry
  as flat JSON (histogram buckets get human-readable labels).
* :func:`span_summary` / :func:`render_span_summary` — a terminal
  aggregate: per span name, how many times it ran and how much
  simulated time it covered.

Determinism: output depends only on the bundle contents.  Tracks are
ordered by name, events keep their per-track order, and JSON is dumped
with sorted keys — so a merged sharded recording serializes
byte-identically to the single-process one whenever the per-track
event streams match (round-robin and burst-arrival cells).

Dual-clock export
-----------------

:func:`to_dual_clock_trace` / :func:`write_dual_clock_trace` merge the
virtual-time bundle with a wall-clock telemetry snapshot
(``repro.obs.runtime``) into one Perfetto file — the runtime
counterpart to the byte-stable virtual trace, and deliberately a
*separate* file: wall-clock numbers differ run to run, and the default
bundle must stay byte-identical across shard counts.

Track naming (documented contract; the exporter shape tests pin it):

* One process group per probed process, named by its identity —
  ``coordinator`` is always pid 0, then relays and workers in the
  aggregator's display order.
* Every process carries one ``[wall] phases`` thread (tid 0) with its
  runtime phase spans (complete ``X`` events) and its
  rollback/checkpoint instants.  Worker processes whose records carry
  a ``hosts`` range additionally adopt the *virtual* tracks of the
  hosts they simulate, as ``[virt] <track>`` threads — virtual and
  wall timelines of the same worker sit side by side in one group
  (host-less tracks fall to the coordinator's group).
* Wall timestamps are seconds since the earliest probe birth
  (``origin``), aligned across processes through each probe's
  ``(time.time(), perf_counter())`` birth pair; virtual timestamps are
  virtual seconds — both rendered as microseconds, so the two clocks
  are visually comparable but never mixed on one thread.
"""

import json
import re


def to_chrome_trace(bundle):
    """Render a recorder bundle as a Chrome trace-event object."""
    events = [{
        "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
        "args": {"name": "repro-sim (virtual time)"},
    }]
    tracks = bundle["tracks"]
    for tid, track in enumerate(sorted(tracks)):
        events.append({
            "ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
            "args": {"name": track},
        })
        for event in tracks[track]:
            kind = event[0]
            ts = event[1] * 1e6  # virtual seconds -> microseconds
            if kind == "B":
                events.append({"ph": "B", "ts": ts, "pid": 0, "tid": tid,
                               "name": event[2], "cat": "span"})
            elif kind == "E":
                events.append({"ph": "E", "ts": ts, "pid": 0, "tid": tid})
            elif kind == "I":
                events.append({"ph": "i", "ts": ts, "pid": 0, "tid": tid,
                               "name": event[2], "s": "t"})
            else:  # "C"
                events.append({"ph": "C", "ts": ts, "pid": 0, "tid": tid,
                               "name": f"{track}:{event[2]}",
                               "args": {"value": event[3]}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(bundle, path):
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(bundle), handle, sort_keys=True,
                  separators=(",", ":"))
        handle.write("\n")


#: Virtual track names carry the host index they belong to
#: (``host3/vfio``, ``lock/host3/rtnl``, ``host3-fastiovd-scanner``);
#: the dual-clock export uses it to place each virtual track inside
#: the process group of the worker that simulates that host.
_HOST_RE = re.compile(r"host(\d+)")


def _track_host(track):
    match = _HOST_RE.search(track)
    return int(match.group(1)) if match else None


def _virtual_track_events(track, events, pid, tid):
    """One virtual track -> trace events, pid/tid-addressed.

    The same B/E/I/C mapping as :func:`to_chrome_trace`; factored out
    so the dual-clock export renders virtual tracks identically to the
    virtual-only file, just grouped under the owning worker's process.
    """
    out = []
    for event in events:
        kind = event[0]
        ts = event[1] * 1e6  # virtual seconds -> microseconds
        if kind == "B":
            out.append({"ph": "B", "ts": ts, "pid": pid, "tid": tid,
                        "name": event[2], "cat": "span"})
        elif kind == "E":
            out.append({"ph": "E", "ts": ts, "pid": pid, "tid": tid})
        elif kind == "I":
            out.append({"ph": "i", "ts": ts, "pid": pid, "tid": tid,
                        "name": event[2], "s": "t"})
        else:  # "C"
            out.append({"ph": "C", "ts": ts, "pid": pid, "tid": tid,
                        "name": f"{track}:{event[2]}",
                        "args": {"value": event[3]}})
    return out


def to_dual_clock_trace(telemetry, bundle=None):
    """Merge a telemetry snapshot (+ optional virtual bundle) into one
    Perfetto trace-event object — the dual-clock view.

    One process group per probed process (coordinator pid 0, then the
    aggregator's display order).  Each group carries a ``[wall]
    phases`` thread (tid 0) with the probe's phase spans as complete
    (``X``) events and its rollback/checkpoint instants; wall
    timestamps are microseconds since the earliest probe birth,
    aligned across processes via each probe's wall/perf birth pair.
    With a ``bundle``, every virtual track joins the process group of
    the worker whose host range contains its host index (coordinator's
    group when no range claims it) as a ``[virt] <track>`` thread —
    so a worker's simulated activity and its runtime cost sit side by
    side.  ``X`` events tolerate nesting (a ``wait`` span containing
    the ``ipc_send`` it paid for), which B/E stacks would reject.
    """
    origin = telemetry.get("origin", 0.0)
    processes = telemetry.get("processes", {})
    idents = [i for i in processes if i != "coordinator"]
    if "coordinator" in processes:
        idents.insert(0, "coordinator")
    events = []
    host_ranges = []
    next_tid = {}
    for pid, ident in enumerate(idents):
        record = processes[ident]
        for span in record.get("hosts") or []:
            host_ranges.append((span[0], span[1], pid))
        events.append({"ph": "M", "name": "process_name",
                       "pid": pid, "tid": 0, "args": {"name": ident}})
        events.append({"ph": "M", "name": "process_sort_index",
                       "pid": pid, "tid": 0,
                       "args": {"sort_index": pid}})
        events.append({"ph": "M", "name": "thread_name",
                       "pid": pid, "tid": 0,
                       "args": {"name": "[wall] phases"}})
        base = (record["wall0"] - origin) * 1e6
        thread = [
            {"ph": "X", "ts": base + began * 1e6,
             "dur": max(0.0, (ended - began) * 1e6),
             "pid": pid, "tid": 0, "name": phase, "cat": "wall"}
            for phase, began, ended in record.get("spans", [])
        ]
        thread.extend(
            {"ph": "i", "ts": base + rel * 1e6, "pid": pid, "tid": 0,
             "name": name, "s": "t", "cat": "wall"}
            for rel, name in record.get("instants", [])
        )
        thread.sort(key=lambda event: event["ts"])
        events.extend(thread)
        next_tid[pid] = 1

    def owner(track):
        host = _track_host(track)
        if host is not None:
            for start, stop, pid in host_ranges:
                if start <= host < stop:
                    return pid
        return 0

    if bundle:
        if not idents:
            events.append({"ph": "M", "name": "process_name",
                           "pid": 0, "tid": 0,
                           "args": {"name": "repro-sim"}})
            next_tid[0] = 1
        tracks = bundle["tracks"]
        for track in sorted(tracks):
            pid = owner(track)
            tid = next_tid.get(pid, 1)
            next_tid[pid] = tid + 1
            events.append({"ph": "M", "name": "thread_name",
                           "pid": pid, "tid": tid,
                           "args": {"name": f"[virt] {track}"}})
            events.extend(
                _virtual_track_events(track, tracks[track], pid, tid)
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_dual_clock_trace(telemetry, path, bundle=None):
    with open(path, "w") as handle:
        json.dump(to_dual_clock_trace(telemetry, bundle), handle,
                  sort_keys=True, separators=(",", ":"))
        handle.write("\n")


def _bucket_name(histogram, index):
    """Histogram-aware bucket label.

    Duration histograms recorded via ``observe`` use base-2
    microsecond buckets; the sharded runner's ``*_hist`` series
    (rollback depth in virtual seconds, replay distance in events) use
    plain power-of-two value buckets, so their labels carry no unit.
    """
    from repro.obs.metrics import bucket_label

    if histogram.endswith("_hist"):
        return "le_1" if index == 0 else f"le_{2 ** index}"
    return bucket_label(index)


def flat_metrics(bundle):
    """The metrics snapshot with labeled histogram buckets."""
    metrics = bundle["metrics"]
    return {
        "counters": dict(metrics.get("counters", {})),
        "gauges": dict(metrics.get("gauges", {})),
        "histograms": {
            name: {
                _bucket_name(name, int(index)): count
                for index, count in sorted(
                    buckets.items(), key=lambda item: int(item[0])
                )
            }
            for name, buckets in metrics.get("histograms", {}).items()
        },
    }


def write_metrics(bundle, path):
    with open(path, "w") as handle:
        json.dump(flat_metrics(bundle), handle, sort_keys=True, indent=2)
        handle.write("\n")


def span_summary(bundle):
    """Aggregate spans by name: {name: (count, total_s, max_s)}.

    Computed by replaying each track's B/E stream (tracks visited in
    sorted order, so the floating-point accumulation order — and hence
    the rendered numbers — is shard-invariant).
    """
    summary = {}
    tracks = bundle["tracks"]
    for track in sorted(tracks):
        stack = []
        for event in tracks[track]:
            kind = event[0]
            if kind == "B":
                stack.append((event[2], event[1]))
            elif kind == "E" and stack:
                name, started = stack.pop()
                duration = event[1] - started
                count, total, peak = summary.get(name, (0, 0.0, 0.0))
                summary[name] = (
                    count + 1, total + duration, max(peak, duration)
                )
    return summary


def render_span_summary(bundle, limit=30):
    """The terminal span-tree summary, widest spans first."""
    summary = span_summary(bundle)
    rows = sorted(summary.items(), key=lambda item: (-item[1][1], item[0]))
    width = max([len(name) for name, _ in rows[:limit]] + [4])
    lines = [f"{'span':{width}s}  {'count':>7s}  {'total_s':>10s}  "
             f"{'max_s':>9s}"]
    for name, (count, total, peak) in rows[:limit]:
        lines.append(
            f"{name:{width}s}  {count:7d}  {total:10.3f}  {peak:9.4f}"
        )
    if len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more span names")
    return "\n".join(lines)
