"""``repro top`` — live terminal view of a running cluster engine.

A :class:`LiveView` is a daemon thread that polls the process-local
:class:`~repro.obs.runtime.TelemetryAggregator` (registered by
``run_sharded_cluster`` via :func:`repro.obs.runtime.set_aggregator`)
and repaints a compact dashboard a few times per second:

* the coordinator's placement progress (containers placed, frontier
  epoch, ETA from the trailing placement rate);
* one row per process — coordinator, relays, workers — with its commit
  rate (epochs/s), wire throughput (bytes/s), rollback rate, and the
  share of its wall-clock in each runtime phase;
* cumulative wire traffic by frame type, pickle fallbacks surfaced.

Everything rendered here is read-only telemetry: the view thread
never touches simulation state, so a run behaves byte-identically
with the dashboard on or off (the same invariance contract as the
probes themselves — see ``repro.obs.runtime``).

:func:`render` is the pure part — aggregator snapshot in, string out —
so tests exercise the layout without a terminal or a thread.
"""

import sys
import threading
import time

from repro.obs import runtime

#: Phases worth a column of their own in the per-process table; the
#: rest (checkpoint fork/resume) fold into "other".
_TOP_PHASES = ("compute", "speculate", "barrier_wait", "rollback_replay",
               "ipc_send", "ipc_recv")


def _fmt_bytes(count):
    for unit in ("B", "KB", "MB", "GB"):
        if abs(count) < 1024.0:
            return f"{count:,.0f}{unit}" if unit == "B" \
                else f"{count:.1f}{unit}"
        count /= 1024.0
    return f"{count:.1f}TB"


def _fmt_eta(seconds):
    if seconds is None:
        return "--:--"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    return f"{seconds // 60}:{seconds % 60:02d}"


def _phase_cells(record):
    """Per-phase share of a process's uptime, as compact percents."""
    up = record.get("up_s") or 0.0
    phases = record.get("phases", {})
    cells = []
    accounted = 0.0
    for name in _TOP_PHASES:
        total = phases.get(name, (0.0, 0))[0]
        accounted += total
        cells.append(f"{100.0 * total / up:5.1f}" if up > 0 else "    -")
    other = sum(entry[0] for entry in phases.values()) - accounted
    cells.append(f"{100.0 * other / up:5.1f}" if up > 0 else "    -")
    return cells


def render(aggregator, now=None, eta_s=None, width=100):
    """The dashboard as a plain string (no ANSI), newest data first.

    Args:
        aggregator: a :class:`~repro.obs.runtime.TelemetryAggregator`.
        now: wall-clock "now" (defaults to ``time.time()``; injectable
            so tests render deterministically).
        eta_s: precomputed ETA seconds (the view thread tracks the
            placement rate across polls; a one-shot render passes None).
    """
    if now is None:
        now = time.time()
    lines = []
    elapsed = now - aggregator.started
    progress = aggregator.progress
    if progress is not None:
        placed, total, frontier = progress
        pct = 100.0 * placed / total if total else 100.0
        lines.append(
            f"repro top — {elapsed:6.1f}s elapsed | placed "
            f"{placed:,}/{total:,} ({pct:.1f}%) | frontier epoch "
            f"{frontier} | ETA {_fmt_eta(eta_s)}"
        )
        bar = int(pct / 100.0 * 40)
        lines.append("[" + "#" * bar + "-" * (40 - bar) + "]")
    else:
        lines.append(f"repro top — {elapsed:6.1f}s elapsed | waiting "
                     "for telemetry...")
    lines.append("")
    header = (f"{'process':22s} {'epoch/s':>8s} {'bytes/s':>10s} "
              f"{'rb/s':>6s} ")
    header += " ".join(f"{name[:5]:>5s}" for name in _TOP_PHASES)
    header += f" {'other':>5s}"
    lines.append(header)
    lines.append("-" * max(len(header), 60))
    total_rollbacks = 0
    for ident in aggregator.idents():
        record = aggregator.latest[ident]
        epoch_rate, byte_rate, rollback_rate = aggregator.rates(ident)
        total_rollbacks += record["counters"].get("rollbacks", 0)
        row = (f"{ident:22s} {epoch_rate:8.1f} "
               f"{_fmt_bytes(byte_rate):>10s} {rollback_rate:6.1f} ")
        row += " ".join(_phase_cells(record))
        lines.append(row)
    lines.append("")
    wire_totals = {}
    fallbacks = 0
    for record in aggregator.latest.values():
        for direction in ("tx", "rx"):
            for tag, (frames, nbytes) in record["wire"][direction].items():
                entry = wire_totals.setdefault(tag, [0, 0])
                entry[0] += frames
                entry[1] += nbytes
                if tag == "P":
                    fallbacks += frames
    if wire_totals:
        parts = [
            f"{tag}:{entry[0]:,}f/{_fmt_bytes(entry[1])}"
            for tag, entry in sorted(wire_totals.items())
        ]
        lines.append("wire  " + "  ".join(parts))
        if fallbacks:
            lines.append(f"      pickle fallbacks: {fallbacks:,} frames")
    if total_rollbacks:
        lines.append(f"rollbacks total: {total_rollbacks:,}")
    return "\n".join(line[:width] for line in lines)


class LiveView:
    """Background repaint loop for :func:`render`.

    ``start`` spawns a daemon thread; ``stop`` joins it and clears the
    painted region.  The thread finds the aggregator on every poll
    (``runtime.current_aggregator()``), so it can be started *before*
    ``run_sharded_cluster`` registers one — the dashboard appears as
    soon as telemetry exists.
    """

    def __init__(self, interval_s=0.5, stream=None):
        self.interval_s = interval_s
        self.stream = stream if stream is not None else sys.stderr
        self._stop = threading.Event()
        self._thread = None
        self._painted_lines = 0
        #: (time, placed) samples for the ETA slope.
        self._progress_samples = []

    # ------------------------------------------------------------------
    def start(self):
        self._thread = threading.Thread(
            target=self._loop, name="repro-top", daemon=True
        )
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._clear()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    # ------------------------------------------------------------------
    def _eta(self, aggregator, now):
        progress = aggregator.progress
        if progress is None:
            return None
        placed, total, _frontier = progress
        samples = self._progress_samples
        if not samples or samples[-1][1] != placed:
            samples.append((now, placed))
            del samples[:-32]
        if len(samples) < 2:
            return None
        dt = samples[-1][0] - samples[0][0]
        dn = samples[-1][1] - samples[0][1]
        if dt <= 0 or dn <= 0:
            return None
        return (total - placed) / (dn / dt)

    def _clear(self):
        if self._painted_lines:
            self.stream.write(
                f"\x1b[{self._painted_lines}F\x1b[J"
            )
            self.stream.flush()
            self._painted_lines = 0

    def _paint(self, text):
        self._clear()
        self.stream.write(text + "\n")
        self.stream.flush()
        self._painted_lines = text.count("\n") + 1

    def _loop(self):
        while not self._stop.wait(self.interval_s):
            aggregator = runtime.current_aggregator()
            if aggregator is None:
                continue
            now = time.time()
            try:
                text = render(aggregator, now=now,
                              eta_s=self._eta(aggregator, now))
            except Exception:  # pragma: no cover - render must not kill
                continue  # the run; a torn snapshot just skips a frame
            self._paint(text)
