"""Sim-time metrics: counters, gauges, log-bucketed histograms.

Unifies the ad-hoc statistics the simulator already keeps —
:class:`~repro.sim.sync.LockStats` on every primitive, the engine's
timing-wheel counters — under one registry with a plain-data snapshot
shape that pickles over shard pipes and merges deterministically.

Histograms store *integer bucket counts only*: floating-point sums
would accumulate in shard-dependent order and break the byte-identity
contract, while bucket counts add exactly.  Buckets are base-2 in
microseconds: an observation of ``v`` seconds lands in bucket
``int(v * 1e6).bit_length()`` (bucket *k* covers ``[2**(k-1), 2**k)``
microseconds; bucket 0 is "under a microsecond").
"""


def bucket_index(seconds):
    """The base-2 microsecond bucket an observation falls into."""
    us = int(seconds * 1e6)
    if us <= 0:
        return 0
    return us.bit_length()


def bucket_label(index):
    """Human-readable upper bound of a bucket ("le_512us", ...)."""
    if index == 0:
        return "le_1us"
    return f"le_{2 ** index}us"


class MetricsRegistry:
    """Named counters, gauges, and log-bucketed duration histograms."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------
    def inc(self, name, amount=1):
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name, value):
        self.gauges[name] = value

    def observe(self, name, seconds):
        """Record one duration into the named histogram."""
        buckets = self.histograms.get(name)
        if buckets is None:
            buckets = self.histograms[name] = {}
        index = bucket_index(seconds)
        buckets[index] = buckets.get(index, 0) + 1

    # ------------------------------------------------------------------
    # ingestion of the pre-existing ad-hoc statistics
    # ------------------------------------------------------------------
    def ingest_lock_stats(self, scope, stats):
        """Fold one primitive's :class:`LockStats` into flat counters."""
        for key, value in stats.as_dict().items():
            self.counters[f"lock/{scope}/{key}"] = value

    #: Wheel statistics that are monotone event counts; everything else
    #: the wheel reports (configuration, peaks, end-of-run levels, the
    #: engine-name string) merges as a gauge, where "max across shards"
    #: is the honest reading and summing would be nonsense.
    _WHEEL_COUNTERS = frozenset({
        "events_dispatched", "spill_rebuckets", "compactions",
        "timers_cancelled",
    })

    def ingest_wheel_stats(self, stats, scope="engine"):
        """Fold a simulator's timing-wheel statistics into the registry."""
        for key, value in stats.items():
            name = f"{scope}/{key}"
            if key in self._WHEEL_COUNTERS:
                self.inc(name, value)
            else:
                self.set_gauge(name, value)

    #: DaemonTicker statistics that are monotone event counts (the rest
    #: — interval, peaks, current levels — merge as gauges).
    _TICKER_COUNTERS = frozenset({
        "ticks_fired", "member_wakes", "member_skips",
    })

    def ingest_ticker_stats(self, stats, scope="ticker"):
        """Fold a :class:`repro.sim.ticker.DaemonTicker`'s counters in."""
        for key, value in stats.items():
            name = f"{scope}/{key}"
            if key in self._TICKER_COUNTERS:
                self.inc(name, value)
            else:
                self.set_gauge(name, value)

    #: Sharded-sync protocol statistics that are monotone counts; the
    #: rest (mode string, barrier-wait and coordinator-occupancy
    #: seconds — wall-clock readings, so nondeterministic by nature —
    #: and the checkpoint-age high-water mark) merge as gauges.  Keys
    #: ending in ``_hist`` are already bucket dicts (the runner's
    #: power-of-two rollback-depth and replay-distance histograms) and
    #: fold straight into the histogram store.
    _SYNC_COUNTERS = frozenset({
        "epochs", "rollbacks", "speculated_events", "replayed_events",
        "speculation_commits", "throttled_shards", "checkpoints",
        "checkpoint_resumes", "full_replays", "placement_heap_ops",
    })

    def ingest_sync_stats(self, stats, scope="sync"):
        """Fold the sharded runner's protocol counters in (epochs,
        barrier wait, the optimistic rollback/speculation tallies, and
        the checkpoint counters/histograms from
        :mod:`repro.cluster.sharded`)."""
        for key, value in stats.items():
            name = f"{scope}/{key}"
            if key.endswith("_hist"):
                buckets = self.histograms.setdefault(name, {})
                for index, count in value.items():
                    buckets[index] = buckets.get(index, 0) + count
            elif key in self._SYNC_COUNTERS:
                self.inc(name, value)
            else:
                self.set_gauge(name, value)

    # ------------------------------------------------------------------
    # snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self):
        """Plain-data view: safe to pickle, JSON-dump, and merge."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: dict(buckets)
                for name, buckets in self.histograms.items()
            },
        }


def merge_metrics(snapshots):
    """Combine registry snapshots from several shards.

    Counters and histogram buckets add; gauges (levels, utilizations)
    keep the maximum, which reads as "peak across shards".
    """
    counters = {}
    gauges = {}
    histograms = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            if name not in gauges or value > gauges[name]:
                gauges[name] = value
        for name, buckets in snap.get("histograms", {}).items():
            merged = histograms.setdefault(name, {})
            for index, count in buckets.items():
                merged[index] = merged.get(index, 0) + count
    return {"counters": counters, "gauges": gauges, "histograms": histograms}
