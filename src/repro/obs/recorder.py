"""The flight recorder: spans, instants and counters in virtual time.

One :class:`TraceRecorder` serves one simulator (a standalone host, a
single-process cluster, or one shard of a sharded cluster).  Model code
never imports this module on its hot paths: every instrumented layer
keeps a ``trace`` attribute that is ``None`` by default and calls the
recorder only behind an ``if trace is not None`` guard, so a disabled
recorder costs one slot read per guarded site.

Tracks
------
Events live on named *tracks*.  Spans emitted from inside a simulated
process attach to that process's track (``churn-w17``,
``launch-c3-fastiov``, ``host0-fastiovd-scanner``...); since a process
executes sequentially, its spans nest properly even when container
startups interleave on the shared timeline.  Counter samples attach to
explicitly named per-host tracks (``host0/vfio``, ``host0/cpu``...).
Track names are globally unique across a cluster — container names are
unique by construction and daemon/counter tracks are host-prefixed —
which is what makes the shard merge a disjoint union.

Event encoding (plain tuples, cheap to append and to pickle):

* ``("B", ts, name)`` — span begin
* ``("E", ts)`` — span end (closes the innermost open span)
* ``("I", ts, name)`` — instant
* ``("C", ts, series, value)`` — counter sample
"""

from repro.obs.metrics import MetricsRegistry


class TraceRecorder:
    """Collects one simulator's timeline; exported via ``repro.obs.export``."""

    __slots__ = (
        "tracks",
        "_stacks",
        "_sim",
        "_last_counter",
        "_wait_tracks",
        "_probes",
        "registry",
    )

    def __init__(self):
        self.tracks = {}
        self._stacks = {}
        self._sim = None
        self._last_counter = {}
        self._wait_tracks = {}
        self._probes = {}
        self.registry = MetricsRegistry()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind(self, sim):
        """Attach to a simulator (idempotent; a cluster binds once per host)."""
        self._sim = sim
        sim.trace = self

    def add_probe(self, owner, track, series, fn):
        """Register a pull-based counter: ``fn()`` is sampled whenever
        ``sample_probes(owner)`` fires and emitted (change-detected) as
        a ``C`` event.

        Pull probes are how high-frequency state (CPU runnable jobs,
        EPT faults serviced, bytes zeroed) gets a counter track with
        zero cost on the instrumented hot path.  Probes are keyed by
        *owner* (the host name) and sampled only from that host's own
        instrumented sites — never from another host's activity — so a
        host's counter samples land at the same virtual instants whether
        it shares a simulator with 47 peers or sits alone in a shard.
        """
        self._probes.setdefault(owner, []).append((track, series, fn))

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def _events(self, track):
        events = self.tracks.get(track)
        if events is None:
            events = self.tracks[track] = []
            self._stacks[track] = []
        return events

    def current_track(self):
        """The track of the currently executing process ("engine" if none)."""
        process = self._sim._current
        return process.name if process is not None else "engine"

    def begin(self, track, name):
        now = self._sim.now
        self._events(track).append(("B", now, name))
        self._stacks[track].append((name, now))

    def end(self, track):
        stack = self._stacks.get(track)
        if not stack:
            return  # unmatched end: drop rather than corrupt nesting
        now = self._sim.now
        name, started = stack.pop()
        self.tracks[track].append(("E", now))
        self.registry.observe(f"span/{name}", now - started)

    def instant(self, track, name):
        self._events(track).append(("I", self._sim.now, name))

    def counter(self, track, series, value):
        key = (track, series)
        if self._last_counter.get(key) == value:
            return
        self._last_counter[key] = value
        self._events(track).append(("C", self._sim.now, series, value))

    def sample_probes(self, owner):
        """Sample one host's pull probes (change-detected)."""
        probes = self._probes.get(owner)
        if not probes:
            return
        now = self._sim.now
        last = self._last_counter
        for track, series, fn in probes:
            value = fn()
            key = (track, series)
            if last.get(key) != value:
                last[key] = value
                self._events(track).append(("C", now, series, value))

    # ------------------------------------------------------------------
    # simulator hooks (core.py)
    # ------------------------------------------------------------------
    def process_spawned(self, process):
        self.instant(process.name, "spawn")

    def process_finished(self, process):
        """Close any spans the process left open (async VF init that
        outlived its container's startup window, abandoned waits)."""
        track = process.name
        stack = self._stacks.get(track)
        if stack:
            now = self._sim.now
            events = self.tracks[track]
            while stack:
                name, started = stack.pop()
                events.append(("E", now))
                self.registry.observe(f"span/{name}", now - started)
        self.instant(track, "exit")

    def timer_wrap(self, callback, when):
        """Count an armed cancellable timer; returns a fire-counting
        wrapper for its callback."""
        registry = self.registry
        registry.inc("engine/timers_armed")

        def fired(*args):
            registry.inc("engine/timers_fired")
            return callback(*args)

        return fired

    def timer_cancelled(self):
        self.registry.inc("engine/timers_cancelled")

    # ------------------------------------------------------------------
    # sync-primitive hooks (sync.py)
    # ------------------------------------------------------------------
    @staticmethod
    def scoped_name(primitive):
        scope = primitive.trace_scope
        name = primitive.name
        return scope + name if scope else name

    def lock_wait_begin(self, primitive, request):
        track = request.process.name
        self.begin(track, f"wait {self.scoped_name(primitive)}")
        self._wait_tracks[id(request)] = track

    def lock_granted(self, primitive, request):
        track = self._wait_tracks.pop(id(request), None)
        if track is not None:
            self.end(track)
        hold = getattr(primitive, "trace_hold", None)
        if hold:
            self.begin(request.process.name,
                       f"hold {self.scoped_name(primitive)}")
        self.lock_depth(primitive)

    def lock_expired(self, primitive, request):
        track = self._wait_tracks.pop(id(request), None)
        if track is not None:
            self.end(track)
            self.instant(track, f"timeout {self.scoped_name(primitive)}")

    def lock_released(self, primitive):
        """End the releasing process's hold span (top-of-stack match only:
        holds are lexically scoped in this codebase, so a mismatch means
        the span was already closed defensively)."""
        process = self._sim._current
        if process is None:
            return
        stack = self._stacks.get(process.name)
        if stack and stack[-1][0] == f"hold {self.scoped_name(primitive)}":
            self.end(process.name)

    def lock_depth(self, primitive):
        self.counter(f"lock/{self.scoped_name(primitive)}", "waiters",
                     len(primitive._waiters))

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def close_open_spans(self):
        """Synthetically end every span still open (end of simulation)."""
        now = self._sim.now if self._sim is not None else 0.0
        for track, stack in self._stacks.items():
            events = self.tracks[track]
            while stack:
                name, started = stack.pop()
                events.append(("E", now))
                self.registry.observe(f"span/{name}", now - started)

    def dump(self):
        """Plain-data bundle: ``{"tracks", "metrics"}`` — picklable over
        shard pipes and consumable by ``repro.obs.export``."""
        self.close_open_spans()
        return {
            "tracks": {name: list(events)
                       for name, events in self.tracks.items()},
            "metrics": self.registry.snapshot(),
        }


def merge_dumps(dumps):
    """Disjoint-union merge of per-shard recorder dumps.

    Tracks must be globally unique (they are, by the host-prefixing
    convention); a collision means two shards claimed the same process
    name and the merged timeline would interleave nondeterministically,
    so it is an error rather than a silent concat.
    """
    from repro.obs.metrics import merge_metrics

    tracks = {}
    for dump in dumps:
        for name, events in dump["tracks"].items():
            if name in tracks:
                raise RuntimeError(
                    f"trace merge: track {name!r} appears in two shards"
                )
            tracks[name] = events
    return {
        "tracks": tracks,
        "metrics": merge_metrics([dump["metrics"] for dump in dumps]),
    }
