"""Wall-clock telemetry plane: runtime probes and their aggregation.

The flight recorder (``repro.obs.recorder``) sees only *virtual* time —
by design, so its output is byte-identical across shard counts.  What
it cannot see is the actual runtime: forked shard workers, the
hierarchical relay tree, checkpoint forks, rollback replays, and the
pipe IPC that dominates the 1M-host smoke.  This module is the other
clock: every worker (and relay, and the coordinator) carries a
:class:`RuntimeProbe` that samples monotonic-clock spans around the
epoch loop's phases and counts wire frames by type, and a
:class:`TelemetryAggregator` in the coordinator process assembles the
per-process records into one cross-process wall-clock timeline.

Phase vocabulary (every wall-second of a worker's life is attributed
to exactly one of these; the ``Decomposing Docker Container Startup
Performance`` methodology, applied to the simulator's own runtime):

==================  ====================================================
phase               meaning
==================  ====================================================
``compute``         committed simulation work (``step``/``run_until``)
``barrier_wait``    blocked on the protocol pipe
``speculate``       free-running past the committed frontier
``rollback_replay`` rebuilding state after a mis-speculation
``checkpoint_fork`` forking a CoW checkpoint image
``checkpoint_resume`` replaying the journal suffix in a resumed child
``ipc_send``        encoding + writing protocol frames
``ipc_recv``        decoding received frames (blocked time is wait)
==================  ====================================================

Invariance contract — the reason this file can exist at all: probes
only ever *read* clocks and count bytes.  No probe call feeds back
into simulation state, placement, speculation pacing, or message
content (telemetry piggybacks on replies inside a ``T`` envelope that
:func:`repro.cluster.wire.decode` strips before the protocol sees the
message).  Every result byte is therefore identical with probes on or
off — enforced by the telemetry-invariance CI gate.

Cross-process clock alignment: each probe records one
``(time.time(), time.perf_counter())`` pair at birth and stores spans
as perf-counter offsets from it.  The aggregator places each process
on the shared timeline via ``wall0 - origin + offset`` — immune to
perf-counter epoch differences across processes, good to wall-clock
sync (sub-millisecond on one machine, which is all the dual-clock
trace needs).
"""

import os
import time
from collections import deque

#: Canonical phase order (drives table layouts in ``repro top`` and
#: the dual-clock export's track ordering).
PHASES = (
    "compute",
    "barrier_wait",
    "speculate",
    "rollback_replay",
    "checkpoint_fork",
    "checkpoint_resume",
    "ipc_send",
    "ipc_recv",
)

#: Span-buffer cap between flushes.  Totals are always exact; only the
#: *drawable* span list is bounded, so a pathological flush interval
#: cannot grow a worker's telemetry buffer without bound.  Dropped
#: spans are counted and reported.
MAX_PENDING_SPANS = 8192
MAX_PENDING_INSTANTS = 2048


def probes_enabled():
    """Whether runtime probes are on (``REPRO_RUNTIME_PROBES=1``).

    Environment-based so forked/spawned shard workers inherit the
    decision without a protocol change; the CLI sets it for
    ``repro top`` and ``repro trace --wallclock``.
    """
    return os.environ.get("REPRO_RUNTIME_PROBES", "") not in ("", "0")


class WireStats:
    """Per-frame-type wire accounting: frames and bytes by tag.

    One instance per direction pair lives on each probe; updated by
    :func:`repro.cluster.wire.send`/``recv`` when a probe is
    installed.  The pickle-fallback count is simply the ``P`` row —
    the wire module's cold path — surfaced separately in records
    because a hot path regressing to pickle is exactly the kind of
    drift this plane exists to catch.
    """

    __slots__ = ("tx", "rx")

    def __init__(self):
        self.tx = {}
        self.rx = {}

    def note_tx(self, tag, nbytes):
        entry = self.tx.get(tag)
        if entry is None:
            self.tx[tag] = [1, nbytes]
        else:
            entry[0] += 1
            entry[1] += nbytes

    def note_rx(self, tag, nbytes):
        entry = self.rx.get(tag)
        if entry is None:
            self.rx[tag] = [1, nbytes]
        else:
            entry[0] += 1
            entry[1] += nbytes

    def snapshot(self):
        return {
            "tx": {tag: list(entry) for tag, entry in self.tx.items()},
            "rx": {tag: list(entry) for tag, entry in self.rx.items()},
        }


class RuntimeProbe:
    """Monotonic-clock phase sampling for one process.

    The hot API is ``t0 = probe.begin()`` ... ``probe.lap(phase, t0)``
    — two ``perf_counter`` reads and a couple of dict/list operations
    per span, cheap enough to wrap every epoch-loop phase.  ``flush``
    packages the cumulative totals plus the spans/instants recorded
    *since the last flush* into a compact picklable record, so
    piggybacked telemetry frames stay O(new activity), not O(uptime).
    """

    __slots__ = (
        "ident", "pid", "wall0", "perf0", "phase_s", "phase_n",
        "counters", "gauges", "wire", "hosts",
        "_spans", "_instants", "_dropped_spans",
    )

    def __init__(self, ident, hosts=None):
        self.ident = ident
        self.pid = os.getpid()
        self.wall0 = time.time()
        self.perf0 = time.perf_counter()
        self.phase_s = {}
        self.phase_n = {}
        self.counters = {}
        self.gauges = {}
        self.wire = WireStats()
        self.hosts = hosts
        self._spans = []
        self._instants = []
        self._dropped_spans = 0

    def begin(self):
        """Start a span: returns the raw ``perf_counter`` timestamp."""
        return time.perf_counter()

    def lap(self, phase, began, now=None):
        """Account ``phase`` from ``began`` to now; returns now (so
        back-to-back phases chain without an extra clock read).  A
        caller that already read the clock passes it as ``now``."""
        if now is None:
            now = time.perf_counter()
        self.phase_s[phase] = (
            self.phase_s.get(phase, 0.0) + now - began
        )
        self.phase_n[phase] = self.phase_n.get(phase, 0) + 1
        if len(self._spans) < MAX_PENDING_SPANS:
            self._spans.append(
                (phase, began - self.perf0, now - self.perf0)
            )
        else:
            self._dropped_spans += 1
        return now

    def instant(self, name):
        """Mark a point event (rollback, checkpoint fork/resume)."""
        if len(self._instants) < MAX_PENDING_INSTANTS:
            self._instants.append(
                (time.perf_counter() - self.perf0, name)
            )

    def count(self, key, value=1):
        self.counters[key] = self.counters.get(key, 0) + value

    def gauge(self, key, value):
        self.gauges[key] = value

    def rebirth(self, ident=None):
        """Re-stamp identity inside a resumed checkpoint child.

        The CoW image inherits the probe object; pid changes, the
        clock pair does not (CLOCK_MONOTONIC is system-wide, and the
        record format only ever ships offsets against the inherited
        pair, so spans stay aligned across the process swap).
        """
        self.pid = os.getpid()
        if ident is not None:
            self.ident = ident

    def pack(self):
        """Cumulative state for the checkpoint handover.

        The dying image's not-yet-flushed spans/instants die with it
        (counted as dropped); cumulative totals and wire accounting
        carry over, so the resumed child's records stay monotonic and
        the aggregator's rate rings never see totals go backwards.
        """
        return {
            "phase_s": dict(self.phase_s),
            "phase_n": dict(self.phase_n),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "wire_tx": {
                tag: list(entry) for tag, entry in self.wire.tx.items()
            },
            "wire_rx": {
                tag: list(entry) for tag, entry in self.wire.rx.items()
            },
            "dropped": self._dropped_spans + len(self._spans),
        }

    def adopt(self, packed):
        """Resume cumulative accounting inside a checkpoint child."""
        self.phase_s = dict(packed["phase_s"])
        self.phase_n = dict(packed["phase_n"])
        self.counters = dict(packed["counters"])
        self.gauges = dict(packed["gauges"])
        self.wire.tx = {
            tag: list(entry)
            for tag, entry in packed["wire_tx"].items()
        }
        self.wire.rx = {
            tag: list(entry)
            for tag, entry in packed["wire_rx"].items()
        }
        self._dropped_spans = packed["dropped"]
        self._spans = []
        self._instants = []
        self.rebirth()

    def flush(self):
        """The telemetry record: cumulative scalars + incremental spans."""
        record = {
            "ident": self.ident,
            "pid": self.pid,
            "wall0": self.wall0,
            "up_s": time.perf_counter() - self.perf0,
            "phases": {
                name: [self.phase_s[name], self.phase_n[name]]
                for name in self.phase_s
            },
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "wire": self.wire.snapshot(),
            "spans": self._spans,
            "instants": self._instants,
            "dropped_spans": self._dropped_spans,
        }
        if self.hosts is not None:
            record["hosts"] = list(self.hosts)
        self._spans = []
        self._instants = []
        return record


class RecordBuffer:
    """A relay's telemetry sink: hold children's records for the next
    upward reply (the relay contributes its own probe record when the
    buffer is drained, so the tree reduction costs no extra frames)."""

    __slots__ = ("_records",)

    def __init__(self):
        self._records = []

    def __call__(self, records):
        self._records.extend(records)

    def drain(self):
        records, self._records = self._records, []
        return records


class TelemetryAggregator:
    """Coordinator-side assembly of probe records into one timeline.

    ``ingest`` is the coordinator's ``wire.TELEMETRY_SINK``: called
    with every batch of records a ``T`` envelope carried.  The latest
    cumulative scalars are kept per process identity, spans/instants
    accumulate (they arrive incrementally), and a short rate history
    ring per identity feeds the live view's bytes/s and commit-rate
    columns.  ``snapshot`` renders the whole thing as a plain
    JSON-able dict — the telemetry artifact CI uploads.
    """

    #: Rate-history ring depth per identity (at one record per epoch
    #: reply, 128 samples cover the window any live refresh needs).
    HISTORY = 128

    def __init__(self):
        self.latest = {}
        self.spans = {}
        self.instants = {}
        self.history = {}
        self.progress = None
        self.started = time.time()
        self._locals = []

    def attach_local(self, probe):
        """Poll ``probe`` at snapshot time (single-process runs have
        no wire to piggyback on — the probe lives right here)."""
        self._locals.append(probe)

    def ingest(self, records):
        for record in records:
            self._ingest_one(record)

    def _ingest_one(self, record):
        ident = record["ident"]
        self.latest[ident] = {
            key: record[key]
            for key in ("ident", "pid", "wall0", "up_s", "phases",
                        "counters", "gauges", "wire", "dropped_spans")
        }
        if "hosts" in record:
            self.latest[ident]["hosts"] = record["hosts"]
        if record["spans"]:
            self.spans.setdefault(ident, []).extend(record["spans"])
        if record["instants"]:
            self.instants.setdefault(ident, []).extend(
                record["instants"]
            )
        ring = self.history.get(ident)
        if ring is None:
            ring = self.history[ident] = deque(maxlen=self.HISTORY)
        total_rx = sum(
            entry[1] for entry in record["wire"]["rx"].values()
        )
        total_tx = sum(
            entry[1] for entry in record["wire"]["tx"].values()
        )
        ring.append((
            time.time(),
            record["counters"].get("epochs", 0),
            total_tx + total_rx,
            record["counters"].get("rollbacks", 0),
        ))

    def note_progress(self, placed, total, frontier_epoch):
        self.progress = (placed, total, frontier_epoch)

    def wall_origin(self):
        """Earliest probe birth on the shared wall clock."""
        origins = [rec["wall0"] for rec in self.latest.values()]
        return min(origins) if origins else self.started

    def idents(self):
        """Stable display order: coordinator, relays, workers, rest."""
        def rank(ident):
            if ident == "coordinator":
                return (0, 0, ident)
            for prefix, tier in (("relay", 1), ("worker", 2)):
                if ident.startswith(prefix):
                    tail = ident[len(prefix):].lstrip("-")
                    try:
                        return (tier, int(tail), ident)
                    except ValueError:
                        return (tier, 0, ident)
            return (3, 0, ident)
        return sorted(self.latest, key=rank)

    def rates(self, ident, window_s=5.0):
        """(epochs/s, bytes/s, rollbacks/s) over the trailing window."""
        ring = self.history.get(ident)
        if not ring or len(ring) < 2:
            return (0.0, 0.0, 0.0)
        newest = ring[-1]
        oldest = newest
        for sample in reversed(ring):
            oldest = sample
            if newest[0] - sample[0] >= window_s:
                break
        dt = newest[0] - oldest[0]
        if dt <= 0:
            return (0.0, 0.0, 0.0)
        return (
            (newest[1] - oldest[1]) / dt,
            (newest[2] - oldest[2]) / dt,
            (newest[3] - oldest[3]) / dt,
        )

    def snapshot(self):
        """The full telemetry bundle as a plain JSON-able dict."""
        for probe in self._locals:
            self._ingest_one(probe.flush())
        return {
            "origin": self.wall_origin(),
            "progress": list(self.progress) if self.progress else None,
            "processes": {
                ident: {
                    **self.latest[ident],
                    "spans": [
                        list(span)
                        for span in self.spans.get(ident, [])
                    ],
                    "instants": [
                        list(mark)
                        for mark in self.instants.get(ident, [])
                    ],
                }
                for ident in self.idents()
            },
        }


#: This process's probe (None = telemetry off).  A module global, not
#: a parameter: probe lookups happen inside the epoch loop's hot
#: phases, where threading one more argument through every layer would
#: couple the protocol signatures to an observability concern.  Fork
#: children inherit the parent's probe and overwrite it first thing in
#: their main (``_shard_worker_main`` / ``_relay_main``).
_PROBE = None


def set_probe(probe):
    """Install this process's runtime probe (None disables)."""
    global _PROBE
    _PROBE = probe


def get_probe():
    """This process's probe, or None when telemetry is off."""
    return _PROBE


#: Module-global aggregator hook: the coordinator registers its
#: aggregator here so the CLI's live view (which starts before
#: ``run_sharded_cluster`` is entered) can find it, and the placement
#: loops can publish progress without threading the object through
#: every call.  Telemetry-only — never consulted by simulation code.
_AGGREGATOR = None


def set_aggregator(aggregator):
    global _AGGREGATOR
    _AGGREGATOR = aggregator


def current_aggregator():
    return _AGGREGATOR


def note_progress(placed, total, frontier_epoch):
    """Publish coordinator progress to the registered aggregator."""
    if _AGGREGATOR is not None:
        _AGGREGATOR.note_progress(placed, total, frontier_epoch)
