"""Host-kernel substrate: VFIO, KVM, MMU, cgroups, binding, fastiovd.

These modules are the simulated equivalents of the kernel components
the paper measures and modifies.  Unlike :mod:`repro.hw` (pure state),
everything here runs as simulated *processes*: methods are generators
that yield :mod:`repro.sim` commands, charging lock waits, latencies,
and CPU work on the shared :class:`~repro.sim.cpu.FairShareCPU`.

Layout:

* :mod:`~repro.oskernel.locks` — the coarse devset lock and FastIOV's
  hierarchical parent-child decomposition (§4.2.1, Fig. 8).
* :mod:`~repro.oskernel.vfio` — devset management and the DMA memory
  mapping pipeline (retrieve, zero, pin, map; Fig. 6).
* :mod:`~repro.oskernel.kvm` — memory slots and EPT-fault servicing,
  including the fastiovd lazy-zeroing hook (Fig. 9).
* :mod:`~repro.oskernel.mmu` — host anonymous memory with demand
  faulting (the non-passthrough path where lazy zeroing is free).
* :mod:`~repro.oskernel.fastiovd` — the portable kernel module: two-tier
  hash table, instant-zeroing list, background scanner (§5).
* :mod:`~repro.oskernel.cgroup` — globally locked cgroup creation.
* :mod:`~repro.oskernel.binding` — driver bind/unbind with the §5
  rebinding flaw's costs.
* :mod:`~repro.oskernel.hostnet` — RTNL-locked host network stack.
"""

from repro.oskernel.binding import DriverRegistry
from repro.oskernel.cgroup import CgroupManager
from repro.oskernel.errors import GuestCrash, KernelError, VfioError
from repro.oskernel.fastiovd import Fastiovd
from repro.oskernel.hostnet import HostNetworkStack, NetDevice
from repro.oskernel.kvm import KVM, KvmVM
from repro.oskernel.locks import CoarseLockPolicy, HierarchicalLockPolicy
from repro.oskernel.mmu import AnonMapping, HostMMU
from repro.oskernel.vfio import VfioDevset, VfioDriver

__all__ = [
    "AnonMapping",
    "CgroupManager",
    "CoarseLockPolicy",
    "DriverRegistry",
    "Fastiovd",
    "GuestCrash",
    "HierarchicalLockPolicy",
    "HostMMU",
    "HostNetworkStack",
    "NetDevice",
    "KVM",
    "KernelError",
    "KvmVM",
    "VfioDevset",
    "VfioDriver",
    "VfioError",
]
