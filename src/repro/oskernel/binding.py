"""Driver binding: the bind/unbind machinery behind the §5 flaw.

The vanilla SR-IOV CNI binds each VF to the host network driver at
every container launch (to get a Linux netdev) and the Kata runtime
then unbinds it and rebinds vfio-pci.  The host netdev probe is
expensive — PF mailbox negotiation plus netdev registration — and
serializes on the PF's administrative mailbox, which is why the
original CNI takes *minutes* to start 200 secure containers (§5).

FastIOV's CNI (and the "fixed vanilla" used throughout the paper's
evaluation) binds each VF to vfio-pci exactly once after boot and
creates a cheap dummy netdev instead.
"""

from repro.oskernel.errors import KernelError
from repro.oskernel.vfio import VFIO_DRIVER_NAME
from repro.sim.core import Timeout
from repro.sim.sync import Mutex

HOST_NETDEV_DRIVER = "iavf"


class DriverRegistry:
    """Tracks device-driver bindings and charges probe/unbind costs."""

    def __init__(self, sim, spec, jitter, vfio_driver=None):
        self._sim = sim
        self._spec = spec
        self._jitter = jitter.fork("binding")
        self._vfio = vfio_driver
        #: PF admin mailbox: host netdev probes serialize here.
        self._pf_mailbox = Mutex(sim, name="pf-mailbox")
        self.bind_count = 0
        self.unbind_count = 0

    @property
    def pf_mailbox(self):
        """The PF admin mailbox (shared with guest VF driver init)."""
        return self._pf_mailbox

    @property
    def mailbox_stats(self):
        return self._pf_mailbox.stats

    def attach_vfio(self, vfio_driver):
        self._vfio = vfio_driver

    def bind(self, device, driver_name):
        """Bind ``device`` to a driver, charging the probe cost.

        Binding to vfio-pci also registers the device in its devset.
        """
        if device.driver is not None:
            raise KernelError(
                f"{device.bdf}: bind({driver_name}) while bound to {device.driver}"
            )
        sigma = self._spec.jitter_sigma
        if driver_name == HOST_NETDEV_DRIVER:
            # PF mailbox negotiation serializes VF bring-up.
            yield self._pf_mailbox.acquire()
            try:
                yield Timeout(
                    self._spec.host_netdev_probe_s * self._jitter.factor(sigma)
                )
                device.driver = driver_name
                device.netdev_name = f"eth-{device.bdf.replace(':', '-')}"
            finally:
                self._pf_mailbox.release()
        elif driver_name == VFIO_DRIVER_NAME:
            yield Timeout(self._spec.vfio_probe_s * self._jitter.factor(sigma))
            device.driver = driver_name
            if self._vfio is None:
                raise KernelError("vfio-pci bound but no VfioDriver attached")
            self._vfio.register_device(device)
        else:
            raise KernelError(f"unknown driver {driver_name!r}")
        self.bind_count += 1

    def unbind(self, device):
        """Unbind the current driver (teardown cost)."""
        if device.driver is None:
            raise KernelError(f"{device.bdf}: unbind while unbound")
        yield Timeout(self._spec.driver_unbind_s * self._jitter.factor(self._spec.jitter_sigma))
        if device.driver == HOST_NETDEV_DRIVER:
            device.netdev_name = None
        elif device.driver == VFIO_DRIVER_NAME and self._vfio is not None:
            self._vfio.unregister_device(device)
        device.driver = None
        self.unbind_count += 1

    def __repr__(self):
        return f"<DriverRegistry binds={self.bind_count} unbinds={self.unbind_count}>"
