"""cgroup subsystem: globally serialized control-group creation.

The `0-cgroup` step of Fig. 5.  Kernel cgroup creation runs under
global locks (cgroup_mutex and friends), so concurrent container
startups queue here.  Software CNIs pay extra (net_cls/net_prio
attachment), which is part of why §6.4 finds cgroup a major IPvtap
bottleneck while it stays small for SR-IOV CNIs.
"""

from repro.sim.core import Timeout
from repro.sim.sync import Mutex


class CgroupManager:
    """Host-wide cgroup hierarchy with its global mutex."""

    def __init__(self, sim, spec, jitter, cpu=None):
        self._sim = sim
        self._spec = spec
        self._jitter = jitter.fork("cgroup")
        self._cpu = cpu
        self._mutex = Mutex(sim, name="cgroup-mutex")
        self._groups = set()
        self.created = 0

    def _hold(self, duration):
        """The critical section does real work: charge it as CPU time
        while holding, so CPU pressure stretches the serialized drain
        (the amplification [42] observes at high concurrency)."""
        if self._cpu is not None:
            return self._cpu.work(duration)
        from repro.sim.core import Timeout as _Timeout

        return _Timeout(duration)

    @property
    def lock_stats(self):
        return self._mutex.stats

    def create(self, name, softcni=False):
        """Create the container's cgroup (charged under the global lock).

        ``softcni=True`` adds the extra network-controller operations a
        software CNI performs (§6.4).
        """
        if name in self._groups:
            raise ValueError(f"cgroup {name!r} already exists")
        yield Timeout(self._spec.cgroup_base_s)
        hold = self._spec.cgroup_lock_hold_s
        if softcni:
            hold *= self._spec.cgroup_softcni_factor
        yield self._mutex.acquire()
        try:
            yield self._hold(hold * self._jitter.factor(self._spec.jitter_sigma))
            self._groups.add(name)
            self.created += 1
        finally:
            self._mutex.release()

    def destroy(self, name):
        """Remove a cgroup (teardown; also lock-serialized)."""
        yield self._mutex.acquire()
        try:
            yield self._hold(self._spec.cgroup_lock_hold_s * 0.5)
            self._groups.discard(name)
        finally:
            self._mutex.release()

    def __repr__(self):
        return f"<CgroupManager groups={len(self._groups)}>"
