"""Errors raised by the kernel substrate."""


class KernelError(Exception):
    """Base class for kernel-model errors."""


class VfioError(KernelError):
    """Invalid VFIO operation (unbound device, bad devset state...)."""


class GuestCrash(KernelError):
    """The guest observed corrupted memory and crashed.

    Raised when lazy zeroing clobbers data the guest legitimately
    expected — e.g. kernel code loaded by the hypervisor (missing
    instant-zeroing-list entry) or file data written by the virtioFS
    backend (missing proactive EPT fault).  §4.3.2 describes both
    scenarios; the failure-injection tests reproduce them.
    """

    def __init__(self, vm_name, gpa, expected, found):
        super().__init__(
            f"guest {vm_name!r} crashed: GPA {gpa:#x} expected "
            f"{expected!r} but found {found!r}"
        )
        self.vm_name = vm_name
        self.gpa = gpa
        self.expected = expected
        self.found = found
