"""fastiovd: the portable FastIOV kernel module (§5).

Holds the machinery for decoupled (lazy) page zeroing:

* A **two-tier table** — first tier keyed by the microVM's PID, second
  tier an address-sorted list of *spans* of pages whose zeroing was
  deferred at DMA-map time.  Registration and teardown cost O(spans)
  (one span per contiguous run the VFIO driver retrieved), not
  O(pages); per-page operations (EPT-fault claims) split spans.
* The **instant-zeroing list**: pages the hypervisor will write before
  guest boot (BIOS/kernel ROM).  They are zeroed at allocation and never
  enter the lazy table, so an EPT fault cannot clobber them (§4.3.2).
* The **EPT-fault hook** KVM calls before inserting an entry: if the
  faulting page is in the table, zero it now, remove it, and only then
  let the guest proceed.
* A **background scanner** daemon that drains remaining table entries
  during idle/overlappable time, bounded to ``fastiovd_scan_workers``
  cores so it cannot starve foreground startup work.

Concurrency safety: a page is *claimed* (removed from the table and
given an in-flight completion event) before any zeroing starts, so a
simultaneous EPT fault waits on the in-flight event rather than racing
with the scanner — the guest can never observe a page that is neither
residual-protected nor fully zeroed.
"""

import bisect

from repro.sim.core import Timeout
from repro.sim.sync import SimEvent


class _SpanTable:
    """Sorted disjoint ``[start, end)`` byte spans with a payload each.

    The workhorse behind both the lazy table (payload: the backing
    region) and the scanner's in-flight claims (payload: the completion
    event).  All operations are O(log spans) plus the touched spans.
    """

    __slots__ = ("_starts", "_spans")

    def __init__(self):
        self._starts = []
        self._spans = []  # [start, end, payload]

    def __bool__(self):
        return bool(self._spans)

    def __iter__(self):
        return iter(self._spans)

    def insert(self, start, end, payload, coalesce=False):
        i = bisect.bisect_left(self._starts, start)
        if (coalesce and i > 0 and self._spans[i - 1][1] == start
                and self._spans[i - 1][2] is payload):
            self._spans[i - 1][1] = end
            if (i < len(self._spans) and self._spans[i][0] == end
                    and self._spans[i][2] is payload):
                self._spans[i - 1][1] = self._spans[i][1]
                del self._starts[i]
                del self._spans[i]
            return
        if (coalesce and i < len(self._spans) and self._spans[i][0] == end
                and self._spans[i][2] is payload):
            self._spans[i][0] = start
            self._starts[i] = start
            return
        self._starts.insert(i, start)
        self._spans.insert(i, [start, end, payload])

    def find(self, addr):
        """The span containing ``addr``, or None."""
        i = bisect.bisect_right(self._starts, addr) - 1
        if i >= 0 and self._spans[i][0] <= addr < self._spans[i][1]:
            return self._spans[i]
        return None

    def remove_range(self, start, end):
        """Drop [start, end) wherever present; splits partial overlaps.

        Returns the number of bytes actually removed.
        """
        i = bisect.bisect_right(self._starts, start) - 1
        if i < 0:
            i = 0
        removed = 0
        while i < len(self._spans) and self._spans[i][0] < end:
            span = self._spans[i]
            if span[1] <= start:
                i += 1
                continue
            cut_start = max(span[0], start)
            cut_end = min(span[1], end)
            removed += cut_end - cut_start
            if span[0] < cut_start and span[1] > cut_end:
                self._starts.insert(i + 1, cut_end)
                self._spans.insert(i + 1, [cut_end, span[1], span[2]])
                span[1] = cut_start
                i += 2
            elif span[0] < cut_start:
                span[1] = cut_start
                i += 1
            elif span[1] > cut_end:
                span[0] = cut_end
                self._starts[i] = cut_end
            else:
                del self._starts[i]
                del self._spans[i]
        return removed

    def pop_front(self, budget_bytes):
        """Take up to ``budget_bytes`` from the lowest-addressed spans.

        Returns ``[(start, end, payload), ...]``, splitting the last
        span when the budget lands mid-span.
        """
        taken = []
        budget = budget_bytes
        while budget > 0 and self._spans:
            span = self._spans[0]
            length = span[1] - span[0]
            if length <= budget:
                taken.append((span[0], span[1], span[2]))
                budget -= length
                del self._starts[0]
                del self._spans[0]
            else:
                cut = span[0] + budget
                taken.append((span[0], cut, span[2]))
                span[0] = cut
                self._starts[0] = cut
                budget = 0
        return taken

    def total_bytes(self):
        return sum(span[1] - span[0] for span in self._spans)


class FastiovdStats:
    """Counters reported by experiments and asserted by tests."""

    def __init__(self):
        self.registered_pages = 0
        self.instant_pages = 0
        self.fault_zeroed_pages = 0
        self.background_zeroed_pages = 0
        self.fault_wait_events = 0

    @property
    def zeroed_pages(self):
        return self.fault_zeroed_pages + self.background_zeroed_pages

    def __repr__(self):
        return (
            f"FastiovdStats(registered={self.registered_pages}, "
            f"instant={self.instant_pages}, fault={self.fault_zeroed_pages}, "
            f"background={self.background_zeroed_pages})"
        )


class Fastiovd:
    """The fastiovd kernel module."""

    def __init__(self, sim, cpu, spec, start_scanner=True, dram=None,
                 name="fastiovd", ticker=None):
        self._sim = sim
        self._cpu = cpu
        self._dram = dram if dram is not None else cpu
        self._spec = spec
        #: Optional cluster-level :class:`repro.sim.ticker.DaemonTicker`
        #: the scanner parks on instead of arming a private timer every
        #: scan interval (one shared event per cell per tick; idle hosts
        #: are swept with a predicate call instead of a dispatch).
        self._ticker = ticker
        #: Diagnostic name; the host prefixes it ("host3-fastiovd") so
        #: scanner/worker trace tracks stay unique across a cluster.
        self.name = name
        #: Host name whose pull probes we sample at scan-tick ends
        #: (set by Host._wire_trace when tracing is on).
        self.probe_owner = None
        self._pending = {}  # pid -> _SpanTable (payload: AllocatedRegion)
        self._inflight = {}  # (pid, hpa) -> SimEvent (claimed pages)
        self._instant = {}  # pid -> set of hpas on the instant list
        self.stats = FastiovdStats()
        self._scanner_enabled = start_scanner
        if start_scanner:
            sim.spawn(self._scan_loop(), name=f"{name}-scanner", daemon=True)

    # ------------------------------------------------------------------
    # registration (called from the VFIO dma_map path / hypervisor)
    # ------------------------------------------------------------------
    def register_lazy(self, pid, region, spans=None):
        """Defer zeroing for microVM ``pid`` of ``region``'s dirty spans.

        ``spans`` is ``[(start_hpa, end_hpa), ...]`` (defaults to the
        region's current dirty spans).  State change only; the (tiny)
        registration cost is charged by the caller inside the dma_map
        pipeline.  Cost is O(spans), one span per contiguous dirty run.
        """
        if spans is None:
            spans = region.dirty_spans()
        table = self._pending.get(pid)
        if table is None:
            table = self._pending[pid] = _SpanTable()
        pages = 0
        for start, end in spans:
            table.insert(start, end, region, coalesce=True)
            pages += (end - start) // region.page_size
        self.stats.registered_pages += pages

    def register_instant(self, pid, pages):
        """Put pages on the instant-zeroing list and scrub them now.

        Used for hypervisor-written regions (BIOS, kernel).  Returns a
        generator charging the synchronous zeroing cost.

        Ordering is what makes this safe against the background
        scanner: the pages leave the lazy table *first* (so no new claim
        can be taken while we block), then any already-claimed pages
        have their in-flight zeroing waited out, and only then do we
        scrub and hand the pages to the hypervisor.  Any other order
        lets a scanner worker zero a page after the hypervisor's write.
        """
        table = self._pending.get(pid)
        if table is not None:
            # Instant pages are "not managed by FastIOV" (§4.3.2): an
            # EPT fault or scan must never re-zero them after the
            # hypervisor writes.
            for page in pages:
                table.remove_range(page.hpa, page.hpa + page.size)
            if not table:
                self._pending.pop(pid, None)
        for page in pages:
            event = self._inflight_event(pid, page.hpa)
            if event is not None:
                yield event.wait()
        nbytes = sum(page.size for page in pages)
        if nbytes:
            yield self._dram.work(self._spec.zeroing_cpu_seconds(nbytes))
        hpas = self._instant.setdefault(pid, set())
        for page in pages:
            page.zero()
            hpas.add(page.hpa)
        self.stats.instant_pages += len(pages)

    def forget_pages(self, pid, pages):
        """Drop any table/list state for pages being unmapped/freed."""
        table = self._pending.get(pid)
        hpas = self._instant.get(pid)
        for page in pages:
            if table is not None:
                table.remove_range(page.hpa, page.hpa + page.size)
            if hpas is not None:
                hpas.discard(page.hpa)
        if table is not None and not table:
            self._pending.pop(pid, None)
        if hpas is not None and not hpas:
            self._instant.pop(pid, None)

    def forget_region(self, pid, region):
        """Drop table/list state for a whole region in O(spans)."""
        table = self._pending.get(pid)
        hpas = self._instant.get(pid)
        for start, end in region._batch_spans:
            if table is not None:
                table.remove_range(start, end)
            if hpas is not None:
                hpas.difference_update(
                    {hpa for hpa in hpas if start <= hpa < end}
                )
        if table is not None and not table:
            self._pending.pop(pid, None)
        if hpas is not None and not hpas:
            self._instant.pop(pid, None)

    def drop_pid(self, pid):
        """Remove a dead microVM's entire second-tier table."""
        self._pending.pop(pid, None)
        self._instant.pop(pid, None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _inflight_event(self, pid, hpa):
        return self._inflight.get((pid, hpa))

    def manages(self, pid, page):
        table = self._pending.get(pid)
        return bool(table and table.find(page.hpa) is not None)

    def pending_pages(self, pid=None):
        if pid is not None:
            tables = [self._pending[pid]] if pid in self._pending else []
        else:
            tables = self._pending.values()
        return sum(
            (end - start) // region.page_size
            for table in tables
            for start, end, region in table
        )

    def pending_bytes(self):
        return sum(table.total_bytes() for table in self._pending.values())

    # ------------------------------------------------------------------
    # EPT-fault hook (called by KVM, Fig. 9 step between 5 and 6)
    # ------------------------------------------------------------------
    def on_ept_fault(self, pid, page):
        """Zero the page if its zeroing was deferred; always safe to call.

        Charges the hash lookup; if the page is lazily pending, claims
        and zeroes it before returning.  If the scanner already claimed
        it, waits for the scanner to finish instead of double-zeroing.
        """
        yield Timeout(self._spec.fastiovd_lookup_s)
        event = self._inflight_event(pid, page.hpa)
        if event is not None:
            self.stats.fault_wait_events += 1
            yield event.wait()
            return
        table = self._pending.get(pid)
        if not table or table.find(page.hpa) is None:
            return
        table.remove_range(page.hpa, page.hpa + page.size)
        if not table:
            self._pending.pop(pid, None)
        key = (pid, page.hpa)
        event = SimEvent(self._sim, name=f"zeroing-{pid}-{page.hpa:#x}")
        self._inflight[key] = event
        # Fault-path zeroing is cache-adjacent to the guest's first use
        # and much cheaper than a bulk clear — but it still shares the
        # memory controller with the background scanner's bulk work.
        yield self._dram.work(self._spec.fault_zeroing_cpu_seconds(page.size))
        page.zero()
        del self._inflight[key]
        event.trigger()
        self.stats.fault_zeroed_pages += 1

    # ------------------------------------------------------------------
    # background scanner (§5 "background clearing")
    # ------------------------------------------------------------------
    def _has_pending(self):
        """Scanner wake predicate for the aggregated ticker."""
        return bool(self._pending)

    def _scan_loop(self):
        spec = self._spec
        ticker = self._ticker
        park = None
        if ticker is not None and ticker.interval == spec.fastiovd_scan_interval_s:
            # Park on the shared cell-wide tick (the command is
            # immutable, so one instance is re-yielded every cycle).
            # A ticker with a foreign interval falls back to the
            # private timer so scan cadence always follows the spec.
            park = ticker.park(self._has_pending)
        while True:
            if park is not None:
                # Resumes only at a tick where the lazy table is
                # non-empty; idle ticks never step this generator.
                yield park
            else:
                yield Timeout(spec.fastiovd_scan_interval_s)
            claimed = self._claim_chunk(spec.fastiovd_scan_chunk_bytes)
            if not claimed:
                continue
            trace = self._sim.trace
            if trace is not None:
                trace.begin(trace.current_track(), "scan-tick")
            # Split the chunk across the bounded worker pool; each
            # worker is one single-threaded zeroing job on the shared
            # CPU, so interference is capped at scan_workers cores.
            workers = min(spec.fastiovd_scan_workers, len(claimed))
            shares = [claimed[i::workers] for i in range(workers)]
            procs = [
                self._sim.spawn(
                    self._zero_share(share),
                    name=f"{self.name}-worker-{i}",
                    daemon=True,
                )
                for i, share in enumerate(shares)
            ]
            for proc in procs:
                yield proc.join()
            if trace is not None:
                trace.end(trace.current_track())
                trace.sample_probes(self.probe_owner)

    def _claim_chunk(self, budget_bytes):
        """Claim up to a chunk of pending pages, oldest microVM first.

        The pending *table* is span-granular, but the scanner's claims
        are per page (with a per-page in-flight event): a chunk is at
        most ``budget_bytes``, so the expansion is small and bounded,
        and a racing EPT fault waits only for its own page's zeroing.
        """
        claimed = []
        budget = budget_bytes
        for pid in list(self._pending):
            if budget <= 0:
                break
            table = self._pending[pid]
            for start, end, region in table.pop_front(budget):
                budget -= end - start
                for hpa in range(start, end, region.page_size):
                    key = (pid, hpa)
                    event = SimEvent(self._sim, name=f"zeroing-{pid}-{hpa:#x}")
                    self._inflight[key] = event
                    claimed.append((key, region.page_view(hpa), event))
            if not table:
                self._pending.pop(pid, None)
        return claimed

    def _zero_share(self, share):
        trace = self._sim.trace
        if trace is not None:
            trace.begin(trace.current_track(), "zero-share")
        for key, page, event in share:
            yield self._dram.work(self._spec.zeroing_cpu_seconds(page.size))
            page.zero()
            del self._inflight[key]
            event.trigger()
            self.stats.background_zeroed_pages += 1

    def __repr__(self):
        return (
            f"<Fastiovd pending={self.pending_pages()} pages, "
            f"{self.stats!r}>"
        )
