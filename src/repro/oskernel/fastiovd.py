"""fastiovd: the portable FastIOV kernel module (§5).

Holds the machinery for decoupled (lazy) page zeroing:

* A **two-tier hash table** — first tier keyed by the microVM's PID,
  second tier by HPA — of pages whose zeroing was deferred at DMA-map
  time.
* The **instant-zeroing list**: pages the hypervisor will write before
  guest boot (BIOS/kernel ROM).  They are zeroed at allocation and never
  enter the lazy table, so an EPT fault cannot clobber them (§4.3.2).
* The **EPT-fault hook** KVM calls before inserting an entry: if the
  faulting page is in the table, zero it now, remove it, and only then
  let the guest proceed.
* A **background scanner** daemon that drains remaining table entries
  during idle/overlappable time, bounded to ``fastiovd_scan_workers``
  cores so it cannot starve foreground startup work.

Concurrency safety: a page is *claimed* (removed from the table and
given an in-flight completion event) before any zeroing starts, so a
simultaneous EPT fault waits on the in-flight event rather than racing
with the scanner — the guest can never observe a page that is neither
residual-protected nor fully zeroed.
"""

from repro.sim.core import Timeout
from repro.sim.sync import SimEvent


class FastiovdStats:
    """Counters reported by experiments and asserted by tests."""

    def __init__(self):
        self.registered_pages = 0
        self.instant_pages = 0
        self.fault_zeroed_pages = 0
        self.background_zeroed_pages = 0
        self.fault_wait_events = 0

    @property
    def zeroed_pages(self):
        return self.fault_zeroed_pages + self.background_zeroed_pages

    def __repr__(self):
        return (
            f"FastiovdStats(registered={self.registered_pages}, "
            f"instant={self.instant_pages}, fault={self.fault_zeroed_pages}, "
            f"background={self.background_zeroed_pages})"
        )


class Fastiovd:
    """The fastiovd kernel module."""

    def __init__(self, sim, cpu, spec, start_scanner=True, dram=None):
        self._sim = sim
        self._cpu = cpu
        self._dram = dram if dram is not None else cpu
        self._spec = spec
        self._table = {}  # pid -> {hpa: Page}
        self._inflight = {}  # (pid, hpa) -> SimEvent
        self._instant = set()  # (pid, hpa) on the instant-zeroing list
        self.stats = FastiovdStats()
        self._scanner_enabled = start_scanner
        if start_scanner:
            sim.spawn(self._scan_loop(), name="fastiovd-scanner", daemon=True)

    # ------------------------------------------------------------------
    # registration (called from the VFIO dma_map path / hypervisor)
    # ------------------------------------------------------------------
    def register_lazy(self, pid, pages):
        """Defer zeroing of ``pages`` for microVM ``pid``.

        State change only; the (tiny) registration cost is charged by
        the caller inside the dma_map pipeline.
        """
        bucket = self._table.setdefault(pid, {})
        for page in pages:
            bucket[page.hpa] = page
        self.stats.registered_pages += len(pages)

    def register_instant(self, pid, pages):
        """Put pages on the instant-zeroing list and scrub them now.

        Used for hypervisor-written regions (BIOS, kernel).  Returns a
        generator charging the synchronous zeroing cost.

        Ordering is what makes this safe against the background
        scanner: the pages leave the lazy table *first* (so no new claim
        can be taken while we block), then any already-claimed pages
        have their in-flight zeroing waited out, and only then do we
        scrub and hand the pages to the hypervisor.  Any other order
        lets a scanner worker zero a page after the hypervisor's write.
        """
        bucket = self._table.get(pid)
        if bucket is not None:
            # Instant pages are "not managed by FastIOV" (§4.3.2): an
            # EPT fault or scan must never re-zero them after the
            # hypervisor writes.
            for page in pages:
                bucket.pop(page.hpa, None)
            if not bucket:
                self._table.pop(pid, None)
        for page in pages:
            event = self._inflight.get((pid, page.hpa))
            if event is not None:
                yield event.wait()
        nbytes = sum(page.size for page in pages)
        if nbytes:
            yield self._dram.work(self._spec.zeroing_cpu_seconds(nbytes))
        for page in pages:
            page.zero()
            self._instant.add((pid, page.hpa))
        self.stats.instant_pages += len(pages)

    def forget_pages(self, pid, pages):
        """Drop any table/list state for pages being unmapped/freed."""
        bucket = self._table.get(pid)
        for page in pages:
            if bucket is not None:
                bucket.pop(page.hpa, None)
            self._instant.discard((pid, page.hpa))
        if bucket is not None and not bucket:
            self._table.pop(pid, None)

    def drop_pid(self, pid):
        """Remove a dead microVM's entire second-tier table."""
        self._table.pop(pid, None)
        self._instant = {entry for entry in self._instant if entry[0] != pid}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def manages(self, pid, page):
        bucket = self._table.get(pid)
        return bool(bucket and page.hpa in bucket)

    def pending_pages(self, pid=None):
        if pid is not None:
            return len(self._table.get(pid, {}))
        return sum(len(bucket) for bucket in self._table.values())

    def pending_bytes(self):
        return sum(
            page.size
            for bucket in self._table.values()
            for page in bucket.values()
        )

    # ------------------------------------------------------------------
    # EPT-fault hook (called by KVM, Fig. 9 step between 5 and 6)
    # ------------------------------------------------------------------
    def on_ept_fault(self, pid, page):
        """Zero the page if its zeroing was deferred; always safe to call.

        Charges the hash lookup; if the page is lazily pending, claims
        and zeroes it before returning.  If the scanner already claimed
        it, waits for the scanner to finish instead of double-zeroing.
        """
        yield Timeout(self._spec.fastiovd_lookup_s)
        key = (pid, page.hpa)
        event = self._inflight.get(key)
        if event is not None:
            self.stats.fault_wait_events += 1
            yield event.wait()
            return
        bucket = self._table.get(pid)
        if not bucket or page.hpa not in bucket:
            return
        del bucket[page.hpa]
        event = SimEvent(self._sim, name=f"zeroing-{pid}-{page.hpa:#x}")
        self._inflight[key] = event
        # Fault-path zeroing is cache-adjacent to the guest's first use
        # and much cheaper than a bulk clear — but it still shares the
        # memory controller with the background scanner's bulk work.
        yield self._dram.work(self._spec.fault_zeroing_cpu_seconds(page.size))
        page.zero()
        del self._inflight[key]
        event.trigger()
        self.stats.fault_zeroed_pages += 1

    # ------------------------------------------------------------------
    # background scanner (§5 "background clearing")
    # ------------------------------------------------------------------
    def _scan_loop(self):
        spec = self._spec
        while True:
            yield Timeout(spec.fastiovd_scan_interval_s)
            claimed = self._claim_chunk(spec.fastiovd_scan_chunk_bytes)
            if not claimed:
                continue
            # Split the chunk across the bounded worker pool; each
            # worker is one single-threaded zeroing job on the shared
            # CPU, so interference is capped at scan_workers cores.
            workers = min(spec.fastiovd_scan_workers, len(claimed))
            shares = [claimed[i::workers] for i in range(workers)]
            procs = [
                self._sim.spawn(
                    self._zero_share(share),
                    name=f"fastiovd-worker-{i}",
                    daemon=True,
                )
                for i, share in enumerate(shares)
            ]
            for proc in procs:
                yield proc.join()

    def _claim_chunk(self, budget_bytes):
        claimed = []
        taken = 0
        for pid in list(self._table):
            bucket = self._table[pid]
            for hpa in list(bucket):
                if taken >= budget_bytes:
                    break
                page = bucket.pop(hpa)
                key = (pid, hpa)
                event = SimEvent(self._sim, name=f"zeroing-{pid}-{hpa:#x}")
                self._inflight[key] = event
                claimed.append((key, page, event))
                taken += page.size
            if not bucket:
                self._table.pop(pid, None)
            if taken >= budget_bytes:
                break
        return claimed

    def _zero_share(self, share):
        for key, page, event in share:
            yield self._dram.work(self._spec.zeroing_cpu_seconds(page.size))
            page.zero()
            del self._inflight[key]
            event.trigger()
            self.stats.background_zeroed_pages += 1

    def __repr__(self):
        return (
            f"<Fastiovd pending={self.pending_pages()} pages, "
            f"{self.stats!r}>"
        )
