"""Host network stack: RTNL-serialized netdev operations.

Used by two CNIs:

* The FastIOV CNI creates a cheap *dummy* interface per container so
  the Kata runtime can discover the VF and receive IP configuration
  without ever binding the VF to a host network driver (§5).
* The IPvtap software CNI creates an ipvtap device per container; the
  heavy RTNL-lock holds involved are a major part of why software CNIs
  bottleneck on `addCNI` at high concurrency (§6.4).

All mutating operations serialize on the RTNL mutex, as in Linux.
"""

from repro.oskernel.errors import KernelError
from repro.sim.core import Timeout
from repro.sim.sync import Mutex


class NetDevice:
    """A host-visible Linux network interface."""

    def __init__(self, name, kind):
        self.name = name
        self.kind = kind  # "dummy" | "ipvtap" | "vf-netdev"
        self.nns = None  # network namespace holding it (None = host)
        self.ip_address = None
        self.mac = None
        self.up = False

    def __repr__(self):
        return (
            f"<NetDevice {self.name} kind={self.kind} nns={self.nns!r} "
            f"ip={self.ip_address!r}>"
        )


class HostNetworkStack:
    """The host kernel's network configuration surface."""

    _CREATE_COSTS = {
        "dummy": "rtnl_dummy_create_s",
        "ipvtap": "rtnl_ipvtap_create_s",
    }

    def __init__(self, sim, spec, jitter):
        self._sim = sim
        self._spec = spec
        self._jitter = jitter.fork("hostnet")
        self.rtnl = Mutex(sim, name="rtnl")
        self._devices = {}

    @property
    def rtnl_stats(self):
        return self.rtnl.stats

    def device(self, name):
        try:
            return self._devices[name]
        except KeyError:
            raise KernelError(f"no netdev {name!r}") from None

    def create_device(self, name, kind):
        """Create a virtual interface under the RTNL lock."""
        if name in self._devices:
            raise KernelError(f"netdev {name!r} already exists")
        try:
            cost_field = self._CREATE_COSTS[kind]
        except KeyError:
            raise KernelError(f"unknown netdev kind {kind!r}") from None
        hold = getattr(self._spec, cost_field)
        yield self.rtnl.acquire()
        try:
            yield Timeout(hold * self._jitter.factor(self._spec.jitter_sigma))
            device = NetDevice(name, kind)
            self._devices[name] = device
        finally:
            self.rtnl.release()
        return device

    def move_to_nns(self, device, nns):
        """Move an interface into a container's network namespace."""
        yield self.rtnl.acquire()
        try:
            yield Timeout(self._spec.netns_move_s)
            device.nns = nns
        finally:
            self.rtnl.release()

    def configure(self, device, ip_address=None, mac=None, up=None):
        """Set interface parameters (IP/MAC/link state)."""
        yield self.rtnl.acquire()
        try:
            yield Timeout(self._spec.ip_configure_s)
            if ip_address is not None:
                device.ip_address = ip_address
            if mac is not None:
                device.mac = mac
            if up is not None:
                device.up = up
        finally:
            self.rtnl.release()

    def delete_device(self, name):
        """Remove an interface (teardown)."""
        yield self.rtnl.acquire()
        try:
            yield Timeout(self._spec.rtnl_dummy_create_s)
            self._devices.pop(name, None)
        finally:
            self.rtnl.release()

    def __repr__(self):
        return f"<HostNetworkStack devices={len(self._devices)}>"
