"""KVM model: memory slots, EPT-fault servicing, lazy-zeroing hook.

Implements the translation flow of Fig. 9: guest accesses miss the EPT,
KVM resolves GPA -> HVA (memory slot) -> HPA (backing) and inserts the
EPT entry.  FastIOV's modification (§4.3.2/§5) sits on this path: just
before inserting the entry, KVM asks fastiovd whether the page's
zeroing was deferred, and if so the page is scrubbed *before* the guest
can observe it.

Memory slots can be backed two ways, matching the two startup paths:

* :class:`PinnedBacking` — pre-allocated, VFIO-pinned frames from
  :meth:`~repro.oskernel.vfio.VfioDriver.dma_map` (SR-IOV path);
* :class:`AnonBacking` — demand-paged host memory
  (:class:`~repro.oskernel.mmu.AnonMapping`; No-Net/software-CNI path).
"""

from repro.hw.ept import EPT, EptFault
from repro.oskernel.errors import GuestCrash, KernelError
from repro.sim.core import Timeout

#: Sentinel distinguishing "no expectation" from "expect None (zeroed)".
_UNSET = object()


class PinnedBacking:
    """Slot backing by a VFIO-pinned :class:`MappedRegion`.

    Fully resident by construction, so lookups are O(log batches) and
    range accesses can go straight to the region's run-length state
    (:meth:`write_range` / :meth:`read_range`) without materializing a
    per-page list.
    """

    def __init__(self, mapped_region):
        self._region = mapped_region
        self.page_size = mapped_region.allocation.page_size

    @property
    def size_bytes(self):
        return self._region.size_bytes

    def page_at_offset(self, offset):
        return self._region.allocation.page_at_index(offset // self.page_size)
        yield  # pragma: no cover - makes this a generator for API uniformity

    def page_if_resident(self, offset):
        return self._region.allocation.page_at_index(offset // self.page_size)

    def write_range(self, offset, nbytes, tag):
        """Bulk host-side write: O(runs), never blocks (pinned memory)."""
        first = offset // self.page_size
        count = -(-nbytes // self.page_size)
        self._region.allocation.write_index_span(first, count, tag)

    def read_range(self, offset, nbytes, reader):
        """Bulk host-side read; per-page tags, leak-checked."""
        first = offset // self.page_size
        count = -(-nbytes // self.page_size)
        return self._region.allocation.read_index_span(first, count, reader)


class AnonBacking:
    """Slot backing by demand-paged anonymous host memory."""

    def __init__(self, anon_mapping):
        self._mapping = anon_mapping
        self.page_size = anon_mapping.page_size

    @property
    def size_bytes(self):
        return self._mapping.size_bytes

    def page_at_offset(self, offset):
        page = yield from self._mapping.page_at_offset(offset)
        return page

    def page_if_resident(self, offset):
        return self._mapping.page_if_resident(offset)


class FileBacking:
    """Slot backing by a shared page-cache file (read-only regions)."""

    def __init__(self, cached_file):
        self._file = cached_file
        self.page_size = cached_file.page_size

    @property
    def size_bytes(self):
        return self._file.size_bytes

    def page_at_offset(self, offset):
        page = yield from self._file.page_at_offset(offset)
        return page

    def page_if_resident(self, offset):
        return self._file.page_if_resident(offset)


class MemorySlot:
    """One GPA window mapped to host memory (KVM memslot)."""

    def __init__(self, gpa_base, backing, label):
        self.gpa_base = gpa_base
        self.backing = backing
        self.label = label

    @property
    def size_bytes(self):
        return self.backing.size_bytes

    def contains(self, gpa):
        return self.gpa_base <= gpa < self.gpa_base + self.size_bytes

    def __repr__(self):
        return (
            f"<MemorySlot {self.label!r} gpa={self.gpa_base:#x} "
            f"+{self.size_bytes >> 20} MiB>"
        )


class KvmVM:
    """Per-VM KVM state: EPT, memory slots, identity."""

    def __init__(self, name, pid, page_size):
        self.name = name
        self.pid = pid
        self.ept = EPT(name, page_size)
        self.slots = []

    def find_slot(self, gpa):
        for slot in self.slots:
            if slot.contains(gpa):
                return slot, gpa - slot.gpa_base
        raise KernelError(f"VM {self.name!r}: GPA {gpa:#x} hits no memory slot")

    def __repr__(self):
        return f"<KvmVM {self.name} slots={len(self.slots)}>"


class KVM:
    """The KVM module shared by all microVMs on the host."""

    def __init__(self, sim, cpu, spec, fastiovd=None):
        self._sim = sim
        self._cpu = cpu
        self._spec = spec
        self._fastiovd = fastiovd
        self.ept_faults_serviced = 0
        self._vms = {}

    def create_vm(self, name, page_size, pid=None):
        if name in self._vms:
            raise KernelError(f"VM name {name!r} already in use")
        vm = KvmVM(name, pid if pid is not None else name, page_size)
        self._vms[name] = vm
        return vm

    def destroy_vm(self, vm):
        self._vms.pop(vm.name, None)
        if self._fastiovd is not None:
            self._fastiovd.drop_pid(vm.pid)

    def register_slot(self, vm, gpa_base, backing, label):
        """Install one memory slot (charged ioctl cost)."""
        yield Timeout(self._spec.kvm_slot_register_s)
        slot = MemorySlot(gpa_base, backing, label)
        for existing in vm.slots:
            if existing.contains(gpa_base) or slot.contains(existing.gpa_base):
                raise KernelError(
                    f"VM {vm.name!r}: slot {label!r} overlaps {existing.label!r}"
                )
        vm.slots.append(slot)
        return slot

    # ------------------------------------------------------------------
    # EPT fault path (Fig. 9)
    # ------------------------------------------------------------------
    def handle_ept_fault(self, vm, gpa):
        """Service one EPT violation; returns the backing page.

        Order matters for correctness: the page is resolved, *then*
        lazily zeroed if pending, and only then does the EPT entry
        appear — the guest can never translate to a residual frame.
        """
        yield Timeout(self._spec.ept_fault_s)
        slot, offset = vm.find_slot(gpa)
        page = yield from slot.backing.page_at_offset(offset)
        if self._fastiovd is not None:
            yield from self._fastiovd.on_ept_fault(vm.pid, page)
        if not vm.ept.has_entry(gpa):
            vm.ept.insert(gpa, page)
        self.ept_faults_serviced += 1
        return page

    # ------------------------------------------------------------------
    # host-side memory access (hypervisor / para-virt backends)
    # ------------------------------------------------------------------
    def host_write_range(self, vm, gpa_base, nbytes, tag):
        """Write guest memory *from the host*, bypassing the EPT.

        This is how the hypervisor loads the ROM/image and how virtio
        backends deliver data (§4.3.2).  Anonymous backings demand-fault
        host-side (charged); pinned backings resolve directly — which is
        exactly why a deferred-zeroing page written this way is in
        danger of being re-zeroed on the guest's first EPT fault.
        """
        if nbytes <= 0:
            raise ValueError(f"write length must be positive, got {nbytes}")
        page_size = vm.ept.page_size
        gpa = (gpa_base // page_size) * page_size
        end = gpa_base + nbytes
        while gpa < end:
            slot, offset = vm.find_slot(gpa)
            bulk = getattr(slot.backing, "write_range", None)
            if bulk is not None:
                limit = min(end, slot.gpa_base + slot.size_bytes)
                bulk(offset, limit - gpa, tag)
                gpa = limit
                continue
            page = yield from slot.backing.page_at_offset(offset)
            page.write(tag)
            gpa += page_size

    def host_read_range(self, vm, gpa_base, nbytes, reader):
        """Read guest memory from the host (TX paths, introspection).

        Enforces the residual-data check like any other read.
        """
        if nbytes <= 0:
            raise ValueError(f"read length must be positive, got {nbytes}")
        page_size = vm.ept.page_size
        tags = []
        gpa = (gpa_base // page_size) * page_size
        end = gpa_base + nbytes
        while gpa < end:
            slot, offset = vm.find_slot(gpa)
            bulk = getattr(slot.backing, "read_range", None)
            if bulk is not None:
                limit = min(end, slot.gpa_base + slot.size_bytes)
                tags.extend(bulk(offset, limit - gpa, reader))
                gpa = limit
                continue
            page = yield from slot.backing.page_at_offset(offset)
            tags.append(page.read(reader))
            gpa += page_size
        return tags

    # ------------------------------------------------------------------
    # guest memory access helpers (used by the virt layer)
    # ------------------------------------------------------------------
    def guest_access(self, vm, gpa, write=False, tag=None, expect=_UNSET):
        """One guest access to ``gpa`` (page granularity).

        Reads enforce the residual-leak check and, when ``expect`` is
        given, verify the content tag — a mismatch is a
        :class:`GuestCrash` (lazy zeroing clobbered real data).
        """
        try:
            page, _offset = vm.ept.translate(gpa)
        except EptFault:
            page = yield from self.handle_ept_fault(vm, vm.ept.align(gpa))
        if write:
            page.write(tag)
        else:
            found = page.read(vm.name)
            if expect is not _UNSET and found != expect:
                raise GuestCrash(vm.name, gpa, expect, found)
        return page

    def guest_touch_range(self, vm, gpa_base, nbytes, write=False, tag=None,
                          expect=None, verify=False):
        """Touch every page in [gpa_base, gpa_base + nbytes).

        ``verify=True`` makes reads assert the expected content tag.
        """
        if nbytes <= 0:
            raise ValueError(f"touch length must be positive, got {nbytes}")
        page_size = vm.ept.page_size
        gpa = vm.ept.align(gpa_base)
        end = gpa_base + nbytes
        while gpa < end:
            if write:
                yield from self.guest_access(vm, gpa, write=True, tag=tag)
            elif verify:
                yield from self.guest_access(vm, gpa, expect=expect)
            else:
                yield from self.guest_access(vm, gpa)
            gpa += page_size

    def __repr__(self):
        return f"<KVM vms={len(self._vms)} faults={self.ept_faults_serviced}>"
