"""Devset lock policies: the coarse mutex vs FastIOV's decomposition.

§4.2.1 abstracts the VFIO devset as a parent node (global state: total
open count, reset coordination) with child nodes (per-device state).
Four operation classes exist (Fig. 8a):

* *inter-child* — different children; independent, should parallelize;
* *intra-child* — same child; mutually exclusive;
* *intra-parent* — global state; mutually exclusive with everything;
* *parent-child* — global + one child; mutually exclusive.

:class:`CoarseLockPolicy` is the vanilla VFIO design: one mutex for all
four classes, which serializes concurrent VF opens (Bottleneck 1).

:class:`HierarchicalLockPolicy` is FastIOV's: a parent ``rwlock`` plus
one ``mutex`` per child.  Child access takes read(rwlock) + mutex_i, so
inter-child operations run in parallel; parent access takes
write(rwlock), excluding everything (Fig. 8b).

Both expose the same generator-based protocol so the VFIO driver model
is policy-agnostic::

    yield from policy.acquire_child(device)
    ...critical section on device-local state...
    policy.release_child(device)

    yield from policy.acquire_parent()
    ...critical section on devset-global state...
    policy.release_parent()
"""

from repro.sim.sync import Mutex, RWLock


class CoarseLockPolicy:
    """Vanilla VFIO: one global mutex serializes every devset operation."""

    name = "coarse"

    __slots__ = ("_mutex", "trace_scope")

    def __init__(self, sim, devset_name):
        self._mutex = Mutex(sim, name=f"{devset_name}.global-mutex")
        self.trace_scope = None

    def register_child(self, child):
        """No per-child state needed under the coarse policy."""

    def primitives(self):
        """Every sync primitive the policy owns (for trace scoping)."""
        return (self._mutex,)

    def set_trace_scope(self, scope):
        """Host-prefix the lock tracks ("host3/") for cluster traces."""
        self.trace_scope = scope
        for primitive in self.primitives():
            primitive.trace_scope = scope

    def acquire_child(self, child):
        yield self._mutex.acquire()

    def release_child(self, child):
        self._mutex.release()

    def acquire_parent(self):
        yield self._mutex.acquire()

    def release_parent(self):
        self._mutex.release()

    @property
    def contention_stats(self):
        """Aggregate wait statistics for reporting."""
        return {"global-mutex": self._mutex.stats}


class HierarchicalLockPolicy:
    """FastIOV: parent rwlock + per-child mutexes (§4.2.1, Fig. 8b).

    Correctness argument mirrored from the paper:

    * two inter-child ops hold (read, mutex_i) and (read, mutex_j) —
      reads are compatible and the mutexes are distinct, so they run in
      parallel;
    * intra-child ops contend on mutex_i — serialized;
    * intra-parent ops hold write — serialized with each other and with
      every child op (write excludes read);
    * parent-child ops are implemented as parent ops (write), which
      dominates the child's lock requirement.
    """

    name = "hierarchical"

    __slots__ = ("_sim", "_devset_name", "_rwlock", "_child_mutexes",
                 "trace_scope")

    def __init__(self, sim, devset_name):
        self._sim = sim
        self._devset_name = devset_name
        self._rwlock = RWLock(sim, name=f"{devset_name}.parent-rwlock")
        self._child_mutexes = {}
        self.trace_scope = None

    def register_child(self, child):
        if child not in self._child_mutexes:
            mutex = self._child_mutexes[child] = Mutex(
                self._sim, name=f"{self._devset_name}.child-{getattr(child, 'bdf', child)}"
            )
            mutex.trace_scope = self.trace_scope

    def primitives(self):
        """Every sync primitive the policy owns (for trace scoping)."""
        return (self._rwlock, *self._child_mutexes.values())

    def set_trace_scope(self, scope):
        """Host-prefix the lock tracks ("host3/") for cluster traces."""
        self.trace_scope = scope
        for primitive in self.primitives():
            primitive.trace_scope = scope

    def _child_mutex(self, child):
        try:
            return self._child_mutexes[child]
        except KeyError:
            raise KeyError(
                f"child {child!r} not registered with devset "
                f"{self._devset_name!r}"
            ) from None

    def acquire_child(self, child):
        yield self._rwlock.acquire_read()
        yield self._child_mutex(child).acquire()

    def release_child(self, child):
        self._child_mutex(child).release()
        self._rwlock.release_read()

    def acquire_parent(self):
        yield self._rwlock.acquire_write()

    def release_parent(self):
        self._rwlock.release_write()

    @property
    def contention_stats(self):
        stats = {"parent-rwlock": self._rwlock.stats}
        for child, mutex in self._child_mutexes.items():
            stats[f"child-{getattr(child, 'bdf', child)}"] = mutex.stats
        return stats
