"""Host MMU: anonymous memory with demand paging.

This is the memory path secure containers use when SR-IOV is *not*
enabled (No-Net, IPvtap): physical pages are allocated — and zeroed —
only when first touched, which is exactly the "lazy zeroing based on
on-demand page allocation" the paper notes is lost once DMA mapping
forces up-front allocation (§3.2.3).  Modeling it faithfully is what
makes the No-Net baseline's cheap memory setup emerge rather than being
assumed.
"""

from repro.oskernel.errors import KernelError
from repro.sim.core import Timeout


class AnonMapping:
    """A demand-paged anonymous mapping (one guest memory region)."""

    def __init__(self, mmu, owner, label, nbytes):
        if nbytes <= 0:
            raise ValueError(f"mapping size must be positive, got {nbytes}")
        self._mmu = mmu
        self.owner = owner
        self.label = label
        page_size = mmu.page_size
        self.size_bytes = -(-nbytes // page_size) * page_size
        self._pages = {}  # page index -> Page
        self._allocations = {}  # page index -> AllocatedRegion (one page each)
        self._faulting = {}  # page index -> SimEvent, for concurrent faults

    @property
    def page_size(self):
        return self._mmu.page_size

    @property
    def resident_pages(self):
        return len(self._pages)

    @property
    def resident_bytes(self):
        return self.resident_pages * self.page_size

    def page_if_resident(self, offset):
        """Return the backing page if already faulted in, else None."""
        return self._pages.get(offset // self.page_size)

    def page_at_offset(self, offset):
        """Get the page backing ``offset``, demand-faulting if needed.

        Generator: on a fault it charges the host page-fault cost plus
        the kernel's zero-on-anon-fault scrub of the new frame.
        """
        if not 0 <= offset < self.size_bytes:
            raise KernelError(
                f"mapping {self.owner}/{self.label}: offset {offset:#x} out of "
                f"range {self.size_bytes:#x}"
            )
        index = offset // self.page_size
        page = self._pages.get(index)
        if page is None:
            page = yield from self._mmu._demand_fault(self, index)
        return page

    def _install(self, index, allocation):
        page = allocation.page_at_index(0)
        self._pages[index] = page
        self._allocations[index] = allocation
        return page

    def free_all(self):
        """Release every resident frame (VM teardown)."""
        for allocation in self._allocations.values():
            self._mmu._memory.free(allocation)
        self._pages.clear()
        self._allocations.clear()

    def __repr__(self):
        return (
            f"<AnonMapping {self.owner}/{self.label} "
            f"{self.resident_bytes >> 20}/{self.size_bytes >> 20} MiB resident>"
        )


class PageCacheFile:
    """A read-only file resident in the host page cache.

    Backs the microVM system image when it is *not* DMA-mapped (the
    non-SR-IOV path, and FastIOV's skipped image region, §4.3.1): one
    shared copy of each page serves every microVM, no per-VM allocation
    or zeroing.  Pages materialize on first access host-wide, with the
    file's content tag (no residual data: the page is filled from disk).
    """

    def __init__(self, mmu, name, nbytes, content_tag=None):
        if nbytes <= 0:
            raise ValueError(f"file size must be positive, got {nbytes}")
        self._mmu = mmu
        self.name = name
        self.content_tag = content_tag if content_tag is not None else f"file:{name}"
        page_size = mmu.page_size
        self.size_bytes = -(-nbytes // page_size) * page_size
        self._pages = {}
        self._allocations = []

    @property
    def page_size(self):
        return self._mmu.page_size

    @property
    def resident_pages(self):
        return len(self._pages)

    def page_at_offset(self, offset):
        """Get the shared cache page for ``offset`` (read-in on miss)."""
        if not 0 <= offset < self.size_bytes:
            raise KernelError(
                f"file {self.name!r}: offset {offset:#x} out of range"
            )
        index = offset // self.page_size
        page = self._pages.get(index)
        if page is None:
            yield Timeout(self._mmu._spec.host_page_fault_s)
            allocation = self._mmu._memory.allocate(
                self.page_size, owner=f"pagecache:{self.name}", label="pagecache"
            )
            self._allocations.append(allocation)
            page = allocation.page_at_index(0)
            page.write(self.content_tag)  # filled from disk, never residual
            self._pages[index] = page
        return page

    def page_if_resident(self, offset):
        return self._pages.get(offset // self.page_size)

    def evict_all(self):
        """Drop the cached pages (host page-cache eviction)."""
        for allocation in self._allocations:
            self._mmu._memory.free(allocation)
        self._pages.clear()
        self._allocations = []

    def __repr__(self):
        return (
            f"<PageCacheFile {self.name!r} "
            f"{self.resident_pages * self.page_size >> 20}/"
            f"{self.size_bytes >> 20} MiB resident>"
        )


class HostMMU:
    """Host virtual-memory manager for anonymous guest backing."""

    def __init__(self, sim, cpu, memory, spec, dram=None):
        self._sim = sim
        self._cpu = cpu
        self._dram = dram if dram is not None else cpu
        self._memory = memory
        self._spec = spec
        self.page_size = memory.page_size
        self.fault_count = 0
        self._file_cache = {}

    def create_mapping(self, owner, label, nbytes):
        """mmap(MAP_ANONYMOUS)-equivalent: no frames until touched."""
        return AnonMapping(self, owner, label, nbytes)

    def open_cached_file(self, name, nbytes, content_tag=None):
        """Get (or create) the page-cache object for a host file.

        Repeated opens of the same name share one cache entry — this is
        what makes the skipped image region cheap across 200 microVMs.
        """
        cache = self._file_cache.get(name)
        if cache is None:
            cache = PageCacheFile(self, name, nbytes, content_tag)
            self._file_cache[name] = cache
        elif cache.size_bytes < nbytes:
            raise KernelError(
                f"file {name!r} reopened with larger size "
                f"{nbytes} > {cache.size_bytes}"
            )
        return cache

    def _demand_fault(self, mapping, index):
        """Allocate + zero one frame on first touch (charged here).

        Concurrent faults on the same page (e.g. guest touch racing a
        para-virt backend write) are collapsed: the second fault waits
        for the first to install the frame.
        """
        from repro.sim.sync import SimEvent

        pending = mapping._faulting.get(index)
        if pending is not None:
            yield pending.wait()
            return mapping._pages[index]
        event = SimEvent(self._sim, name=f"fault-{mapping.owner}-{index}")
        mapping._faulting[index] = event
        self.fault_count += 1
        yield Timeout(self._spec.host_page_fault_s)
        allocation = self._memory.allocate(
            self.page_size, owner=mapping.owner, label=f"{mapping.label}#anon"
        )
        # Fault-time zeroing still moves through the memory controller:
        # it shares DRAM write bandwidth with any bulk zeroing running.
        yield self._dram.work(self._spec.fault_zeroing_cpu_seconds(self.page_size))
        allocation.page_at_index(0).zero()
        page = mapping._install(index, allocation)
        del mapping._faulting[index]
        event.trigger()
        return page

    def __repr__(self):
        return f"<HostMMU faults={self.fault_count}>"
