"""VFIO driver model: devset management and DMA memory mapping.

Two of the paper's three bottlenecks live here:

* **Devset management (§3.2.2).**  VFs without slot-level reset share
  one devset per PCI bus.  Opening a device verifies devset/reset state
  with a bus scan (cost ∝ devices on the bus) and updates open counts.
  Which operations serialize is decided by the devset's *lock policy*
  (:mod:`repro.oskernel.locks`): the vanilla coarse mutex serializes
  concurrent opens of different VFs; FastIOV's hierarchical policy runs
  them in parallel.

* **DMA memory mapping (§3.2.3, Fig. 6).**  :meth:`VfioDriver.dma_map`
  executes the four-step pipeline — page retrieving (batched, so
  fragmentation raises cost: P2), page zeroing (CPU-bound, the dominant
  cost: P3), page pinning, and IOMMU mapping.  The
  :class:`ZeroingPolicy` selects eager zeroing (vanilla), pre-zeroed
  fractions (the HawkEye-style baseline of §6.1), or decoupled lazy
  zeroing via fastiovd (FastIOV, §4.3.2).
"""

import dataclasses
import enum

from repro.hw.pci import ResetScope
from repro.oskernel.errors import VfioError
from repro.sim.core import Timeout

VFIO_DRIVER_NAME = "vfio-pci"


class ZeroingMode(enum.Enum):
    """When retrieved pages are scrubbed."""

    #: Zero at mapping time, before pinning (vanilla kernel behaviour).
    EAGER = "eager"
    #: Register dirty pages with fastiovd; zero lazily on first EPT
    #: fault or via the background scanner (FastIOV).
    DECOUPLED = "decoupled"


@dataclasses.dataclass(frozen=True)
class ZeroingPolicy:
    """How dma_map handles the zeroing step.

    Attributes:
        mode: Eager or decoupled (lazy).
        prezeroed_fraction: Fraction of retrieved pages assumed already
            scrubbed during memory idle time (the Pre10/50/100 baselines
            of §6.1).  Applies to the eager mode; zeroed pages cost
            nothing at map time.
    """

    mode: ZeroingMode = ZeroingMode.EAGER
    prezeroed_fraction: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.prezeroed_fraction <= 1.0:
            raise ValueError(
                f"prezeroed_fraction must be in [0, 1], "
                f"got {self.prezeroed_fraction}"
            )


EAGER_ZEROING = ZeroingPolicy()
DECOUPLED_ZEROING = ZeroingPolicy(mode=ZeroingMode.DECOUPLED)


class VfioDevset:
    """A group of VFIO devices sharing reset fate (one per PCI bus for
    bus-level-reset devices, singleton for slot-level devices)."""

    def __init__(self, name, lock_policy):
        self.name = name
        self.lock = lock_policy
        self.devices = set()
        self.open_counts = {}

    def add(self, device):
        self.devices.add(device)
        self.open_counts.setdefault(device, 0)
        self.lock.register_child(device)

    @property
    def total_open_count(self):
        """Devset-global state; reading it consistently is what the
        coarse lock protects (and what reset must check)."""
        return sum(self.open_counts.values())

    def __repr__(self):
        return (
            f"<VfioDevset {self.name} devices={len(self.devices)} "
            f"opens={self.total_open_count} policy={self.lock.name}>"
        )


class VfioDeviceHandle:
    """The fd-equivalent the hypervisor gets from opening a device."""

    def __init__(self, device, devset, opener):
        self.device = device
        self.devset = devset
        self.opener = opener
        self.closed = False

    def __repr__(self):
        return f"<VfioDeviceHandle {self.device.bdf} opener={self.opener!r}>"


class MappedRegion:
    """Result of dma_map: allocated frames plus their IOVA window."""

    def __init__(self, allocation, gpa_base, domain, lazy_spans):
        self.allocation = allocation
        self.gpa_base = gpa_base
        self.domain = domain
        #: (start_hpa, end_hpa) spans registered with fastiovd instead of
        #: eagerly zeroed (held as spans, not run objects: runs split and
        #: coalesce as state changes).
        self.lazy_spans = lazy_spans
        self.lazy_page_count = sum(
            (end - start) // allocation.page_size for start, end in lazy_spans
        )

    @property
    def size_bytes(self):
        return self.allocation.size_bytes

    @property
    def pages(self):
        return self.allocation.pages

    @property
    def lazy_pages(self):
        """Per-page views of the lazily-registered spans."""
        page_size = self.allocation.page_size
        return [
            self.allocation.page_view(hpa)
            for start, end in self.lazy_spans
            for hpa in range(start, end, page_size)
        ]

    @property
    def page_count(self):
        return self.allocation.page_count

    def __repr__(self):
        return (
            f"<MappedRegion {self.allocation.label!r} gpa={self.gpa_base:#x} "
            f"{self.size_bytes >> 20} MiB lazy={self.lazy_page_count}>"
        )


class VfioDriver:
    """The VFIO kernel driver: device opens, resets, and DMA mapping."""

    def __init__(
        self,
        sim,
        cpu,
        memory,
        iommu,
        spec,
        lock_policy_factory,
        jitter,
        fastiovd=None,
        dram=None,
    ):
        """Args:
        sim: The simulator.
        cpu: Shared :class:`FairShareCPU` for CPU-bound steps.
        memory: Host :class:`PhysicalMemory`.
        iommu: Host :class:`IOMMU`.
        spec: :class:`HostSpec` cost constants.
        lock_policy_factory: ``(sim, devset_name) -> policy``; selects
            coarse (vanilla) or hierarchical (FastIOV) locking.
        jitter: Per-host :class:`Jitter` stream.
        fastiovd: Optional :class:`Fastiovd` module for decoupled
            zeroing; required if a DECOUPLED policy is ever used.
        dram: Memory-bandwidth pool (a :class:`FairShareCPU` of
            ``spec.dram_channels`` streams) that bulk zeroing runs on;
            defaults to the CPU, which is fine for unit-scale tests.
        """
        self._sim = sim
        self._cpu = cpu
        self._dram = dram if dram is not None else cpu
        self._memory = memory
        self._iommu = iommu
        self._spec = spec
        self._lock_policy_factory = lock_policy_factory
        self._jitter = jitter.fork("vfio")
        self._fastiovd = fastiovd
        self._devsets = {}
        self.open_elapsed_total = 0.0
        #: Bytes eagerly zeroed on the dma_map path (always maintained;
        #: the flight recorder samples it as a counter track).
        self.bytes_zeroed_total = 0
        #: Host name whose pull probes we sample after bulk zeroing
        #: (set by Host._wire_trace when tracing is on).
        self.probe_owner = None

    # ------------------------------------------------------------------
    # devset membership
    # ------------------------------------------------------------------
    def register_device(self, device):
        """Place a vfio-bound device into its devset.

        Called when the device is bound to vfio-pci.  Slot-reset-capable
        devices form singleton devsets; bus-reset devices share the
        per-bus devset (§3.2.2).
        """
        if device.driver != VFIO_DRIVER_NAME:
            raise VfioError(f"{device.bdf} is not bound to {VFIO_DRIVER_NAME}")
        key = self._devset_key(device)
        devset = self._devsets.get(key)
        if devset is None:
            devset = VfioDevset(key, self._lock_policy_factory(self._sim, key))
            self._devsets[key] = devset
        devset.add(device)
        return devset

    def _devset_key(self, device):
        if device.reset_scope is ResetScope.SLOT:
            return f"slot:{device.bdf}"
        return f"bus:{device.bus.number:#04x}"

    def unregister_device(self, device):
        """Remove a device from its devset (on unbind from vfio-pci).

        Refused while the device is open — mirrors the kernel refusing
        to release a device with live users.
        """
        devset = self.devset_of(device)
        if devset.open_counts.get(device, 0) > 0:
            raise VfioError(f"{device.bdf}: unregister while open")
        devset.devices.discard(device)
        devset.open_counts.pop(device, None)

    def devset_of(self, device):
        try:
            return self._devsets[self._devset_key(device)]
        except KeyError:
            raise VfioError(f"{device.bdf} is in no devset (not registered)") from None

    # ------------------------------------------------------------------
    # device open / close / reset
    # ------------------------------------------------------------------
    def open_device(self, device, opener):
        """Open a VFIO device on behalf of ``opener`` (the hypervisor).

        This is the `4-vfio-dev` step of Fig. 5.  The open validates the
        devset (bus scan proportional to devices on the bus) and bumps
        the device's open count; all of it runs under the devset lock
        policy's *child* section, so the coarse policy serializes
        concurrent opens while the hierarchical policy does not.
        """
        devset = self.devset_of(device)
        started = self._sim.now
        trace = self._sim.trace
        track = trace.current_track() if trace is not None else None
        if trace is not None:
            trace.begin(track, "vfio-open")
        yield from devset.lock.acquire_child(device)
        try:
            yield Timeout(self._spec.vfio_open_base_s * self._jitter.factor(self._spec.jitter_sigma))
            scan = self._spec.vfio_bus_scan_per_device_s * device.bus.device_count
            yield Timeout(scan * self._jitter.factor(self._spec.jitter_sigma))
            devset.open_counts[device] += 1
        finally:
            devset.lock.release_child(device)
        yield Timeout(self._spec.vfio_register_ioctls_s)
        if trace is not None:
            trace.end(track)
        self.open_elapsed_total += self._sim.now - started
        return VfioDeviceHandle(device, devset, opener)

    def close_device(self, handle):
        """Release an open handle (child section: per-device state)."""
        if handle.closed:
            raise VfioError(f"double close of {handle}")
        devset = handle.devset
        yield from devset.lock.acquire_child(handle.device)
        try:
            if devset.open_counts[handle.device] <= 0:
                raise VfioError(f"{handle.device.bdf}: close with zero open count")
            devset.open_counts[handle.device] -= 1
            handle.closed = True
        finally:
            devset.lock.release_child(handle.device)

    def reset_device(self, device):
        """Bus-level reset: a *parent* operation on the whole devset.

        Scans the bus and checks the devset-global open count; refuses
        if any device in the set is open (the consistency requirement
        that motivated the coarse lock in the first place).
        """
        devset = self.devset_of(device)
        yield from devset.lock.acquire_parent()
        try:
            scan = self._spec.vfio_bus_scan_per_device_s * device.bus.device_count
            yield Timeout(scan)
            for dev in device.bus.devices:
                if dev.driver == VFIO_DRIVER_NAME and dev not in devset.devices:
                    raise VfioError(
                        f"bus {device.bus.number:#04x}: {dev.bdf} bound to vfio "
                        f"but outside devset {devset.name}"
                    )
            if devset.total_open_count > 0:
                raise VfioError(
                    f"devset {devset.name}: reset refused with "
                    f"{devset.total_open_count} open device(s)"
                )
            yield Timeout(self._spec.vfio_open_base_s)  # the reset itself
        finally:
            devset.lock.release_parent()
        return True

    # ------------------------------------------------------------------
    # DMA memory mapping (Fig. 6)
    # ------------------------------------------------------------------
    def create_domain(self, name):
        """Create the IOMMU domain (VFIO container) for one microVM."""
        return self._iommu.create_domain(name)

    def destroy_domain(self, name):
        """Destroy a microVM's IOMMU domain (must be fully unmapped)."""
        self._iommu.destroy_domain(name)

    def dma_map(self, domain, owner, label, nbytes, gpa_base, policy=EAGER_ZEROING):
        """Map ``nbytes`` of freshly allocated guest memory for DMA.

        Executes retrieve -> zero -> pin -> map and returns a
        :class:`MappedRegion`.  IOVA is chosen identical to GPA (§2.2).
        """
        spec = self._spec
        jitter = self._jitter.factor(spec.jitter_sigma)
        trace = self._sim.trace
        track = trace.current_track() if trace is not None else None

        # -- Step 1: page retrieving (batched; P2).
        if trace is not None:
            trace.begin(track, "dma-retrieve")
        allocation = self._memory.allocate(nbytes, owner=owner, label=label)
        retrieve_cost = (
            allocation.batch_count * spec.dma_retrieve_per_batch_s
            + allocation.page_count * spec.dma_retrieve_per_page_s
        )
        yield self._cpu.work(retrieve_cost * jitter)
        if trace is not None:
            trace.end(track)

        # -- Step 2: page zeroing (P3) under the selected policy.
        dirty_count = allocation.page_count - allocation.zeroed_page_count()
        prezero_count = int(dirty_count * policy.prezeroed_fraction)
        if prezero_count:
            # Scrubbed during earlier idle time: no cost now.
            allocation.zero_first_dirty(prezero_count)
        remaining_count = dirty_count - prezero_count
        lazy_spans = []
        if policy.mode is ZeroingMode.EAGER:
            dirty_bytes = remaining_count * allocation.page_size
            if dirty_bytes:
                # Bulk zeroing is DRAM-bandwidth-bound: concurrent
                # mappings share the memory controller.
                if trace is not None:
                    trace.begin(track, "dma-zero")
                yield self._dram.work(spec.zeroing_cpu_seconds(dirty_bytes) * jitter)
                allocation.zero_all_dirty()
                self.bytes_zeroed_total += dirty_bytes
                if trace is not None:
                    trace.end(track)
                    trace.sample_probes(self.probe_owner)
        else:
            if self._fastiovd is None:
                raise VfioError("decoupled zeroing requires the fastiovd module")
            if remaining_count:
                if trace is not None:
                    trace.begin(track, "dma-register-lazy")
                yield self._cpu.work(
                    remaining_count * spec.fastiovd_register_per_page_s * jitter
                )
                lazy_spans = allocation.dirty_spans()
                self._fastiovd.register_lazy(owner, allocation, lazy_spans)
                if trace is not None:
                    trace.end(track)

        # -- Step 3: page pinning.
        if trace is not None:
            trace.begin(track, "dma-pin")
        yield self._cpu.work(allocation.page_count * spec.dma_pin_per_page_s * jitter)
        allocation.pin_all()
        if trace is not None:
            trace.end(track)

        # -- Step 4: IOMMU mapping (IOVA == GPA).
        if trace is not None:
            trace.begin(track, "iommu-map")
        yield self._cpu.work(allocation.page_count * spec.iommu_map_per_page_s * jitter)
        domain.map_region(gpa_base, allocation)
        if trace is not None:
            trace.end(track)

        return MappedRegion(allocation, gpa_base, domain, lazy_spans)

    # ------------------------------------------------------------------
    # vIOMMU emulation (§8 related-work baseline)
    # ------------------------------------------------------------------
    def viommu_map_range(self, vm, domain, gpa_base, nbytes):
        """Deferred mapping: make [gpa_base, +nbytes) DMA-able *now*.

        The vIOMMU/coIOMMU approach (§8): nothing is pinned or mapped at
        startup; when the device is about to DMA into a range, the
        IOMMU emulation resolves each page through the VM's memory
        slots (demand-faulting host memory, which allocates and zeroes
        it), pins it, and installs the translation.  Already-mapped
        pages cost only the emulation intercept.
        """
        spec = self._spec
        page_size = vm.ept.page_size
        yield Timeout(spec.viommu_intercept_s)
        gpa = (gpa_base // page_size) * page_size
        end = gpa_base + nbytes
        while gpa < end:
            if not domain.is_mapped(gpa):
                slot, offset = vm.find_slot(gpa)
                page = yield from slot.backing.page_at_offset(offset)
                yield self._cpu.work(
                    spec.dma_pin_per_page_s + spec.iommu_map_per_page_s
                )
                page.pin()
                domain.map_page(gpa, page)
            gpa += page_size

    def viommu_unmap_all(self, domain):
        """Tear down every on-demand mapping (VM destruction)."""
        entries = domain.pages()
        if entries:
            yield self._cpu.work(
                len(entries) * self._spec.iommu_unmap_per_page_s
            )
        for iova, page in entries:
            domain.unmap_page(iova)
            page.unpin()

    def dma_unmap(self, region):
        """Tear down one mapped region and free its frames."""
        spec = self._spec
        allocation = region.allocation
        yield self._cpu.work(allocation.page_count * spec.iommu_unmap_per_page_s)
        region.domain.unmap_range(region.gpa_base, allocation.size_bytes)
        allocation.unpin_all()
        if self._fastiovd is not None:
            self._fastiovd.forget_region(allocation.owner, allocation)
        self._memory.free(allocation)

    def __repr__(self):
        return f"<VfioDriver devsets={len(self._devsets)}>"
