"""Discrete-event simulation kernel.

This package is the substrate every other layer of the reproduction runs
on.  It provides:

* :class:`~repro.sim.core.Simulator` — the event loop and virtual clock.
* :class:`~repro.sim.core.Process` — generator-based cooperative
  processes that model kernel threads, hypervisor threads, guest vCPU
  work, and container-startup pipelines.
* :mod:`~repro.sim.sync` — blocking primitives (:class:`Mutex`,
  :class:`RWLock`, :class:`Resource`, :class:`SimEvent`) with wait-time
  accounting, used to reproduce the paper's lock-contention bottlenecks.
* :mod:`~repro.sim.cpu` — :class:`FairShareCPU`, a processor-sharing
  model of a multi-core socket, used to reproduce CPU-bound costs such
  as page zeroing and guest-side driver initialization.
* :mod:`~repro.sim.rng` — deterministic jitter so every experiment is
  reproducible from a seed.

The kernel is deliberately dependency-free and synchronous: a process is
a Python generator that ``yield``\\ s command objects (``Timeout``,
``lock.acquire()``, ``cpu.work(...)``, ``event.wait()``, ``proc.join()``)
and the simulator interprets them.
"""

from repro.sim.core import Process, Simulator, Timeout, Timer
from repro.sim.cpu import FairShareCPU
from repro.sim.errors import SimError, SimulationDeadlock
from repro.sim.rng import Jitter
from repro.sim.sync import TIMED_OUT, Mutex, Resource, RWLock, SimEvent
from repro.sim.ticker import DaemonTicker

__all__ = [
    "DaemonTicker",
    "FairShareCPU",
    "Jitter",
    "Mutex",
    "Process",
    "Resource",
    "RWLock",
    "SimError",
    "SimEvent",
    "SimulationDeadlock",
    "Simulator",
    "TIMED_OUT",
    "Timeout",
    "Timer",
]
