"""Event loop, virtual clock, and generator-based processes.

A *process* is a Python generator.  It models one thread of control in
the simulated system (a kernel thread, a QEMU thread, a guest agent, a
container-startup pipeline).  The generator ``yield``\\ s *command*
objects and the simulator resumes it when the command completes::

    def worker(sim, lock):
        yield Timeout(0.5)           # sleep 500 ms of virtual time
        yield lock.acquire()         # block until the mutex is granted
        try:
            yield Timeout(0.1)       # hold it for 100 ms
        finally:
            lock.release()
        return "done"                # becomes the process result

Processes are spawned with :meth:`Simulator.spawn` and the whole system
is executed with :meth:`Simulator.run`.  The simulator is single-threaded
and deterministic: events at equal timestamps fire in scheduling order.
"""

import heapq
from itertools import count

from repro.sim.errors import (
    InvalidCommand,
    ProcessFailed,
    SimulationDeadlock,
)


class Command:
    """Base class for objects a process may ``yield``.

    Subclasses implement :meth:`subscribe`, which arranges for
    ``process`` to be resumed (via ``process._resume(value)``) once the
    command completes.  ``subscribe`` must not step the process
    synchronously; resumption always goes through the event queue so
    that command semantics are identical whether or not they complete
    immediately.
    """

    __slots__ = ()

    def subscribe(self, sim, process):
        raise NotImplementedError


class Timeout(Command):
    """Resume the process after ``delay`` units of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, delay):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = delay

    def subscribe(self, sim, process):
        sim.schedule(sim.now + self.delay, process._resume, None)

    def __repr__(self):
        return f"Timeout({self.delay})"


class Join(Command):
    """Resume when ``process`` finishes; the result is its return value."""

    __slots__ = ("process",)

    def __init__(self, process):
        self.process = process

    def subscribe(self, sim, waiter):
        target = self.process
        if target.finished:
            sim.schedule(sim.now, waiter._resume, target.result)
        else:
            target._joiners.append(waiter)

    def __repr__(self):
        return f"Join({self.process.name})"


class Process:
    """A running simulated process.

    Created by :meth:`Simulator.spawn`; not instantiated directly.

    Attributes:
        name: Diagnostic name, unique-ish within a simulation.
        daemon: Daemon processes (background scanners, pollers) do not
            keep the simulation alive and are exempt from deadlock
            detection.
        finished: True once the generator returned.
        result: The generator's return value (valid once finished).
    """

    __slots__ = (
        "_sim",
        "_gen",
        "name",
        "daemon",
        "finished",
        "result",
        "_joiners",
        "_blocked_on",
        "_started_at",
    )

    def __init__(self, sim, generator, name, daemon=False):
        self._sim = sim
        self._gen = generator
        self.name = name
        self.daemon = daemon
        self.finished = False
        self.result = None
        self._joiners = []
        self._blocked_on = None
        self._started_at = sim.now

    def join(self):
        """Return a command that waits for this process to finish."""
        return Join(self)

    def _resume(self, value):
        if self.finished:
            return
        self._blocked_on = None
        self._step(value)

    def _step(self, send_value):
        sim = self._sim
        prev = sim._current
        sim._current = self
        try:
            command = self._gen.send(send_value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
            return
        except Exception as exc:  # noqa: BLE001 - fail the simulation loudly
            sim._fail(ProcessFailed(self.name, exc), exc)
            return
        finally:
            sim._current = prev
        if not isinstance(command, Command):
            sim._fail(
                InvalidCommand(
                    f"process {self.name!r} yielded {command!r}, "
                    f"which is not a sim Command"
                ),
                None,
            )
            return
        self._blocked_on = command
        command.subscribe(sim, self)

    def _finish(self, result):
        self.finished = True
        self.result = result
        sim = self._sim
        if not self.daemon:
            sim._live_processes -= 1
        for waiter in self._joiners:
            sim.schedule(sim.now, waiter._resume, result)
        self._joiners = []

    def __repr__(self):
        state = "finished" if self.finished else f"blocked on {self._blocked_on!r}"
        return f"<Process {self.name} {state}>"


class Simulator:
    """The discrete-event loop and virtual clock.

    Time is a float in *seconds* of virtual time.  All model components
    (locks, CPUs, devices) hold a reference to the simulator so they can
    schedule events and read the clock.
    """

    def __init__(self):
        self.now = 0.0
        self._queue = []
        self._seq = count()
        self._processes = []
        self._live_processes = 0
        self._current = None
        self._failure = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, when, callback, *args):
        """Run ``callback(*args)`` at virtual time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule into the past: {when} < {self.now}")
        heapq.heappush(self._queue, (when, next(self._seq), callback, args))

    def spawn(self, generator, name=None, daemon=False):
        """Start a new process from ``generator`` and return it.

        The process takes its first step via the event queue at the
        current time, so the caller's own step finishes first.
        """
        if name is None:
            name = f"proc-{len(self._processes)}"
        process = Process(self, generator, name, daemon=daemon)
        self._processes.append(process)
        if not daemon:
            self._live_processes += 1
        self.schedule(self.now, process._step, None)
        return process

    @property
    def current_process(self):
        """The process currently being stepped (None between steps)."""
        return self._current

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until=None):
        """Execute events until all non-daemon processes finish.

        Args:
            until: Optional virtual-time horizon.  When given, execution
                stops once the clock would pass it (the clock is then
                set to exactly ``until``).

        Raises:
            ProcessFailed: A process raised; the original exception is
                chained.
            SimulationDeadlock: The event queue drained while non-daemon
                processes were still blocked.
        """
        while self._queue:
            if self._failure is not None:
                break
            if self._live_processes == 0 and until is None:
                break
            when, _seq, callback, args = self._queue[0]
            if until is not None and when > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            self.now = when
            callback(*args)
        if self._failure is not None:
            failure, cause = self._failure
            self._failure = None
            raise failure from cause
        if until is None and self._live_processes > 0:
            blocked = [
                p for p in self._processes if not p.finished and not p.daemon
            ]
            names = ", ".join(
                f"{p.name} (on {p._blocked_on!r})" for p in blocked[:10]
            )
            raise SimulationDeadlock(
                f"{len(blocked)} process(es) blocked with no pending events: {names}"
            )

    def _fail(self, failure, cause):
        if self._failure is None:
            self._failure = (failure, cause)
