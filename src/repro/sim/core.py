"""Event loop, virtual clock, and generator-based processes.

A *process* is a Python generator.  It models one thread of control in
the simulated system (a kernel thread, a QEMU thread, a guest agent, a
container-startup pipeline).  The generator ``yield``\\ s *command*
objects and the simulator resumes it when the command completes::

    def worker(sim, lock):
        yield Timeout(0.5)           # sleep 500 ms of virtual time
        yield lock.acquire()         # block until the mutex is granted
        try:
            yield Timeout(0.1)       # hold it for 100 ms
        finally:
            lock.release()
        return "done"                # becomes the process result

Processes are spawned with :meth:`Simulator.spawn` and the whole system
is executed with :meth:`Simulator.run`.  The simulator is single-threaded
and deterministic: events at equal timestamps fire in scheduling order.

Engine layout (the hot path)
----------------------------

The event store is split in three:

* ``_ready`` — a FIFO ring (:class:`collections.deque`) of events whose
  timestamp equals the current clock.  Same-time scheduling — process
  resumption after a lock grant, zero-delay timeouts, spawn, join
  completion — is by far the dominant case in this simulator, and it
  costs one ``append``/``popleft`` pair instead of any ordered insert.
* a *timing wheel* of ``_WHEEL_SLOTS`` fixed-width buckets holding
  strictly-future events within the wheel's horizon (the near level of
  a calendar queue / hierarchical timing wheel — the same structure the
  Linux kernel uses for its timers).  Insert is O(1): an integer
  divide, a bitmask, a list append.
* ``_spill`` — a binary heap (the sorted far level) for events beyond
  the wheel horizon.  As the wheel turns, spill events whose slot
  enters the window are re-bucketed, each exactly once.

Events are keyed by ``(when, seq)``; ``seq`` is a monotonically
increasing int that breaks timestamp ties in scheduling order.  A
bucket is left unsorted until the wheel cursor reaches it; the cursor
then *detaches* it from the wheel array and heapifies it (the *front
heap*), and cohorts are drained by ``heappop`` — which yields exact
(when, seq) order — so the documented tie order is preserved
bit-for-bit:

* Events already stored at timestamp *t* were scheduled before the
  clock reached *t*, so their seq is smaller than that of any event
  scheduled once the clock is at *t*.  When the clock advances to *t*,
  :meth:`Simulator.run` drains the *entire* equal-time cohort from the
  front heap into the ring in one pass (heappop yields seq order),
  before executing anything.
* Events scheduled *at* the current time while the batch executes are
  appended behind it in the ring.  Their seq is necessarily larger than
  everything already there, so FIFO order equals scheduling order.
* An event scheduled into the *currently draining* slot (the cursor's)
  is heappushed into the front heap — O(log bucket) against one small
  bucket's worth of entries, not O(bucket) as a sorted-list insert
  would be and not O(log total) as a global heap pays.

The invariant between runs is: every pending event with ``when == now``
lives in the ring (in scheduling order); the front heap holds only the
cursor slot's entries; the wheel holds only ``when > now`` within the
window ``[_cur_slot, _cur_slot + _WHEEL_SLOTS)`` of slots; the spill
heap holds only slots at or beyond the window end.
Slot mapping is order-preserving (``slot_a < slot_b`` implies
``when_a < when_b``), so draining slots in order never reorders events.

Cancellable timers and pooling
------------------------------

:meth:`Simulator.call_at` / :meth:`Simulator.call_later` return a
:class:`Timer` handle whose ``cancel()`` is O(1) *lazy deletion*: the
stored entry is tombstoned in place and skipped (reaped) when the
cursor reaches it.  When tombstones outnumber live events (past a small
floor), a compaction sweep rebuilds the buckets and spill without them,
so a workload that arms and cancels timers that never fire — retry
watchdogs in a 10k-startup churn storm — pays O(1) per timer instead
of carrying dead entries through every subsequent operation.

Entries are mutable 4-lists ``[when, seq, callback, args]`` recycled on
a per-simulator free list, which eliminates the per-event allocation of
the old heap engine's tuples.  A recycled entry always has its callback
slot cleared first and ``seq`` values are never reused, so a stale
:class:`Timer` handle can never cancel an entry that was recycled out
from under it.

Bucket width is a constructor parameter derived deterministically from
the model (see :func:`repro.spec.timer_wheel_width`: a quarter of the
fastiovd daemon tick, the finest recurring granularity) — never from
wall-clock measurement, so two runs of the same spec always build the
same wheel.  Width affects performance only, never event order.

The retained reference implementation of the old heap scheduler lives
in ``tests/reference_scheduler.py`` and is the oracle for the
differential property tests (and the baseline for the timer-dense
micro-benchmark in ``benchmarks/perf_report.py``).
"""

from collections import deque
from heapq import heapify, heappop, heappush

from repro.sim.errors import (
    InvalidCommand,
    ProcessFailed,
    SimulationDeadlock,
)

#: Default timing-wheel bucket width in virtual seconds.  Hosts built
#: from a :class:`~repro.spec.HostSpec` pass an explicit width derived
#: from the spec (``timer_wheel_width``); this default matches the
#: paper testbed's derivation.
DEFAULT_BUCKET_WIDTH = 0.001

#: Number of wheel slots (power of two — slot index is ``slot & MASK``).
_WHEEL_SLOTS = 256
_WHEEL_MASK = _WHEEL_SLOTS - 1

#: Free-list capacity: bounds memory kept for entry recycling.
_POOL_MAX = 4096

#: Compaction floor: never sweep for fewer tombstones than this.
_COMPACT_MIN = 64


class Command:
    """Base class for objects a process may ``yield``.

    Subclasses implement :meth:`subscribe`, which arranges for
    ``process`` to be resumed (via ``process._resume(value)``) once the
    command completes.  ``subscribe`` must not step the process
    synchronously; resumption always goes through the event queue so
    that command semantics are identical whether or not they complete
    immediately.
    """

    __slots__ = ()

    def subscribe(self, sim, process):
        raise NotImplementedError


class Timeout(Command):
    """Resume the process after ``delay`` units of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, delay):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = delay

    def subscribe(self, sim, process):
        delay = self.delay
        if delay == 0.0:
            sim._ready.append((process._on_resume, (None,)))
        else:
            sim.schedule(sim.now + delay, process._on_resume, None)

    def __repr__(self):
        return f"Timeout({self.delay})"


class Join(Command):
    """Resume when ``process`` finishes; the result is its return value."""

    __slots__ = ("process",)

    def __init__(self, process):
        self.process = process

    def subscribe(self, sim, waiter):
        target = self.process
        if target.finished:
            sim._ready.append((waiter._on_resume, (target.result,)))
        else:
            target._joiners.append(waiter)

    def __repr__(self):
        return f"Join({self.process.name})"


class Timer:
    """Handle to one strictly-future scheduled callback.

    Returned by :meth:`Simulator.call_at` / :meth:`Simulator.call_later`.
    :meth:`cancel` is O(1) lazy deletion — the stored entry is
    tombstoned and reaped (or compacted) later; the callback will not
    run and the event never counts as dispatched.

    A handle is safe to cancel at any point, including after the timer
    fired or after the engine recycled its entry: ``seq`` values are
    globally unique and never reused, so a stale handle degrades to a
    no-op instead of touching an unrelated event.
    """

    __slots__ = ("_sim", "_entry", "_seq")

    def __init__(self, sim, entry):
        self._sim = sim
        self._entry = entry
        self._seq = entry[1]

    @property
    def active(self):
        """True while the callback is still pending (not fired/cancelled)."""
        entry = self._entry
        return (
            entry is not None
            and entry[1] == self._seq
            and entry[2] is not None
        )

    @property
    def when(self):
        """The scheduled fire time, or None once inactive."""
        return self._entry[0] if self.active else None

    def cancel(self):
        """Cancel the pending callback; returns True if it was active."""
        entry = self._entry
        if entry is None or entry[1] != self._seq or entry[2] is None:
            return False
        self._entry = None
        self._sim._cancel_entry(entry)
        if self._sim.trace is not None:
            self._sim.trace.timer_cancelled()
        return True

    def __repr__(self):
        state = f"at {self._entry[0]}" if self.active else "inactive"
        return f"<Timer {state}>"


class Process:
    """A running simulated process.

    Created by :meth:`Simulator.spawn`; not instantiated directly.

    Attributes:
        name: Diagnostic name, unique-ish within a simulation.
        daemon: Daemon processes (background scanners, pollers) do not
            keep the simulation alive and are exempt from deadlock
            detection.
        finished: True once the generator returned.
        result: The generator's return value (valid once finished).
    """

    __slots__ = (
        "_sim",
        "_gen",
        "name",
        "daemon",
        "finished",
        "result",
        "_joiners",
        "_blocked_on",
        "_started_at",
        "_on_resume",
    )

    def __init__(self, sim, generator, name, daemon=False):
        self._sim = sim
        self._gen = generator
        self.name = name
        self.daemon = daemon
        self.finished = False
        self.result = None
        self._joiners = []
        self._blocked_on = None
        self._started_at = sim.now
        #: The bound resume method, created once.  Every command
        #: completion schedules this callback; binding it per event is
        #: measurable on the hot path.
        self._on_resume = self._resume

    def join(self):
        """Return a command that waits for this process to finish."""
        return Join(self)

    def _resume(self, value):
        """Advance the generator one step (the dispatch trampoline)."""
        if self.finished:
            return
        self._blocked_on = None
        sim = self._sim
        prev = sim._current
        sim._current = self
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
            return
        except Exception as exc:  # noqa: BLE001 - fail the simulation loudly
            sim._fail(ProcessFailed(self.name, exc), exc)
            return
        finally:
            sim._current = prev
        self._blocked_on = command
        if type(command) is Timeout:
            # Inlined Timeout.subscribe: the overwhelmingly common yield.
            delay = command.delay
            if delay == 0.0:
                sim._ready.append((self._on_resume, (None,)))
            else:
                sim.schedule(sim.now + delay, self._on_resume, None)
            return
        if not isinstance(command, Command):
            self._blocked_on = None
            sim._fail(
                InvalidCommand(
                    f"process {self.name!r} yielded {command!r}, "
                    f"which is not a sim Command"
                ),
                None,
            )
            return
        command.subscribe(sim, self)

    # Kept as an alias: spawn() historically scheduled the first step
    # through ``_step`` and external tooling may reference it.
    _step = _resume

    def _finish(self, result):
        self.finished = True
        self.result = result
        sim = self._sim
        if not self.daemon:
            sim._live_processes -= 1
        if sim.trace is not None:
            sim.trace.process_finished(self)
        ready = sim._ready
        for waiter in self._joiners:
            ready.append((waiter._on_resume, (result,)))
        self._joiners = []

    def __repr__(self):
        state = "finished" if self.finished else f"blocked on {self._blocked_on!r}"
        return f"<Process {self.name} {state}>"


class Simulator:
    """The discrete-event loop and virtual clock.

    Time is a float in *seconds* of virtual time.  All model components
    (locks, CPUs, devices) hold a reference to the simulator so they can
    schedule events and read the clock.

    Args:
        bucket_width: Timing-wheel bucket width in virtual seconds.
            Derived from the host spec by callers that have one
            (:func:`repro.spec.timer_wheel_width`); affects performance
            only — event order is width-independent.
    """

    __slots__ = (
        "now",
        "_ready",
        "_seq",
        "_processes",
        "_live_processes",
        "_current",
        "_failure",
        "events_dispatched",
        # -- timing wheel ------------------------------------------------
        "_width",
        "_inv_width",
        "_buckets",
        "_occupied",
        "_cur_slot",
        "_front_slot",
        "_front",
        "_spill",
        "_pool",
        "_future_live",
        "_cancelled_unreaped",
        # -- statistics --------------------------------------------------
        "_timers_cancelled",
        "_compactions",
        "_spill_rebuckets",
        "_spill_peak",
        "_max_bucket",
        # -- observability -----------------------------------------------
        "trace",
    )

    def __init__(self, bucket_width=DEFAULT_BUCKET_WIDTH):
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive: {bucket_width}")
        self.now = 0.0
        self._ready = deque()
        self._seq = 0
        self._processes = []
        self._live_processes = 0
        self._current = None
        self._failure = None
        #: Total events executed, for engine throughput reporting.
        #: Cancelled timers never dispatch and never count.
        self.events_dispatched = 0
        self._width = bucket_width
        self._inv_width = 1.0 / bucket_width
        self._buckets = [[] for _ in range(_WHEEL_SLOTS)]
        #: Bitmap of non-empty buckets, indexed by ``slot & _WHEEL_MASK``.
        self._occupied = 0
        #: Lowest slot that may still hold entries; the wheel window is
        #: ``[_cur_slot, _cur_slot + _WHEEL_SLOTS)``.
        self._cur_slot = 0
        #: The slot the cursor is draining (-1: none); its entries live
        #: in ``_front``, a small (when, seq) heap detached from the
        #: wheel array, so same-slot inserts during the drain are
        #: O(log bucket) instead of an O(bucket) sorted insert.
        self._front_slot = -1
        self._front = []
        self._spill = []
        self._pool = []
        #: Live (non-cancelled) strictly-future events.
        self._future_live = 0
        #: Tombstoned entries not yet reaped or compacted.
        self._cancelled_unreaped = 0
        self._timers_cancelled = 0
        self._compactions = 0
        self._spill_rebuckets = 0
        self._spill_peak = 0
        self._max_bucket = 0
        #: Optional :class:`repro.obs.recorder.TraceRecorder`.  None by
        #: default; every instrumented site guards on it, so a disabled
        #: recorder costs one slot read.
        self.trace = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, when, callback, *args):
        """Run ``callback(*args)`` at virtual time ``when``.

        Equal timestamps fire in scheduling order.  Scheduling at the
        current time bypasses the wheel entirely (see the module
        docstring for why that preserves the tie order).
        """
        now = self.now
        if when <= now:
            if when == now:
                self._ready.append((callback, args))
                return
            raise ValueError(f"cannot schedule into the past: {when} < {now}")
        self._seq = seq = self._seq + 1
        self._insert_future(when, seq, callback, args)

    def call_at(self, when, callback, *args):
        """Schedule a cancellable callback at ``when``; returns a Timer.

        Timers must be strictly future: a handle for an event already in
        the ready ring could not be cancelled exactly, so ``when`` must
        be greater than the current time.
        """
        if when <= self.now:
            raise ValueError(
                f"timers must be strictly future: {when} <= {self.now}"
            )
        if self.trace is not None:
            callback = self.trace.timer_wrap(callback, when)
        self._seq = seq = self._seq + 1
        return Timer(self, self._insert_future(when, seq, callback, args))

    def call_later(self, delay, callback, *args):
        """Schedule a cancellable callback after ``delay``; returns a Timer."""
        if delay <= 0:
            raise ValueError(f"timer delay must be positive: {delay}")
        # Inlined call_at: timer arming is hot in churn workloads and
        # the wrapper call was measurable.
        now = self.now
        when = now + delay
        if when <= now:
            raise ValueError(
                f"timers must be strictly future: {when} <= {now}"
            )
        if self.trace is not None:
            callback = self.trace.timer_wrap(callback, when)
        self._seq = seq = self._seq + 1
        return Timer(self, self._insert_future(when, seq, callback, args))

    def spawn(self, generator, name=None, daemon=False):
        """Start a new process from ``generator`` and return it.

        The process takes its first step via the event queue at the
        current time, so the caller's own step finishes first.
        """
        if name is None:
            name = f"proc-{len(self._processes)}"
        process = Process(self, generator, name, daemon=daemon)
        self._processes.append(process)
        if not daemon:
            self._live_processes += 1
        if self.trace is not None:
            self.trace.process_spawned(process)
        self._ready.append((process._on_resume, (None,)))
        return process

    @property
    def current_process(self):
        """The process currently being stepped (None between steps)."""
        return self._current

    @property
    def pending_events(self):
        """Number of events waiting to execute (ring + live future set).

        Exact under lazy deletion: a cancelled-but-unreaped timer is a
        tombstone, not a pending event, and is never counted.
        """
        return len(self._ready) + self._future_live

    def __len__(self):
        return self.pending_events

    # ------------------------------------------------------------------
    # future-event set (timing wheel + sorted spill)
    # ------------------------------------------------------------------
    def _insert_future(self, when, seq, callback, args):
        """Store a strictly-future event; returns its entry."""
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[0] = when
            entry[1] = seq
            entry[2] = callback
            entry[3] = args
        else:
            entry = [when, seq, callback, args]
        slot = int(when * self._inv_width)
        if slot == self._front_slot:
            # The cursor is mid-drain in this slot: its entries live in
            # the detached front heap.
            heappush(self._front, entry)
        else:
            cur = self._cur_slot
            if slot < cur:
                # The window raced ahead of the clock: _next_when may
                # park the cursor on a far-future event (e.g. a 900 s
                # watchdog) and run(until=...) then stops the clock at
                # the horizon.  An insert landing between the clock and
                # the cursor — the sharded epoch protocol submits new
                # lifecycles exactly there — needs the window pulled
                # back first.
                self._rewind_window(slot)
                cur = slot
            if slot - cur < _WHEEL_SLOTS:
                idx = slot & _WHEEL_MASK
                self._buckets[idx].append(entry)
                self._occupied |= 1 << idx
            else:
                spill = self._spill
                heappush(spill, entry)
                if len(spill) > self._spill_peak:
                    self._spill_peak = len(spill)
        self._future_live += 1
        return entry

    def _cancel_entry(self, entry):
        """Tombstone a stored entry (Timer.cancel); O(1) lazy deletion."""
        entry[2] = None
        entry[3] = None
        self._future_live -= 1
        cancelled = self._cancelled_unreaped + 1
        self._cancelled_unreaped = cancelled
        self._timers_cancelled += 1
        if cancelled >= _COMPACT_MIN and cancelled > self._future_live:
            self._compact()

    def _recycle(self, entry):
        entry[2] = None
        entry[3] = None
        pool = self._pool
        if len(pool) < _POOL_MAX:
            pool.append(entry)

    def _rewind_window(self, slot):
        """Move the wheel window back so it starts at ``slot``.

        Every bucketed entry — including the front heap's, whose
        consumed events were already popped and recycled — is pushed
        back to the spill level (keeping its tombstone accounting
        intact) and the window is rebuilt from there.  Rare — at most
        once per idle jump — so simplicity beats speed.
        """
        buckets = self._buckets
        spill = self._spill
        front = self._front
        if front:
            spill += front
            del front[:]
        self._front_slot = -1
        occupied = self._occupied
        while occupied:
            idx = (occupied & -occupied).bit_length() - 1
            bucket = buckets[idx]
            spill += bucket
            bucket.clear()
            occupied &= occupied - 1
        self._occupied = 0
        heapify(spill)
        self._cur_slot = slot
        self._refill_from_spill()

    def _refill_from_spill(self):
        """Re-bucket spill events whose slot entered the wheel window."""
        spill = self._spill
        if not spill:
            return
        limit = self._cur_slot + _WHEEL_SLOTS
        inv = self._inv_width
        buckets = self._buckets
        while spill and int(spill[0][0] * inv) < limit:
            entry = heappop(spill)
            if entry[2] is None:
                self._cancelled_unreaped -= 1
                self._recycle(entry)
                continue
            slot = int(entry[0] * inv)
            bucket = buckets[slot & _WHEEL_MASK]
            bucket.append(entry)
            self._occupied |= 1 << (slot & _WHEEL_MASK)
            self._spill_rebuckets += 1
            if len(bucket) > self._max_bucket:
                self._max_bucket = len(bucket)

    def _next_when(self):
        """Earliest pending future time, or None if none remain.

        Positions the wheel cursor on the head event so that
        :meth:`_pop_cohort` can drain its equal-time cohort; reaps any
        tombstoned entries it walks over.
        """
        if self._future_live == 0:
            return None
        front = self._front
        pool = self._pool
        while True:
            while front:
                entry = front[0]
                if entry[2] is not None:
                    return entry[0]
                # Lazy-reap a cancelled timer at the front.
                heappop(front)
                self._cancelled_unreaped -= 1
                entry[3] = None
                if len(pool) < _POOL_MAX:
                    pool.append(entry)
            if self._front_slot >= 0:
                # Front slot exhausted: advance the wheel past it.
                self._cur_slot = self._front_slot + 1
                self._front_slot = -1
                self._refill_from_spill()
            occupied = self._occupied
            if occupied:
                # Next occupied slot at/after the cursor: all occupied
                # slots live in [_cur_slot, _cur_slot + _WHEEL_SLOTS), so
                # the bitmap rotation below is unambiguous.
                cur = self._cur_slot
                idx = cur & _WHEEL_MASK
                high = occupied >> idx
                if high:
                    slot = cur + (high & -high).bit_length() - 1
                else:
                    low = occupied & ((1 << idx) - 1)
                    slot = (
                        cur
                        + (_WHEEL_SLOTS - idx)
                        + (low & -low).bit_length()
                        - 1
                    )
                self._cur_slot = slot
                self._refill_from_spill()
                # Detach the slot's bucket as the new front heap; the
                # (empty) old front list takes its place in the wheel
                # array, so no allocation happens here.
                idx = slot & _WHEEL_MASK
                buckets = self._buckets
                bucket = buckets[idx]
                buckets[idx] = front
                self._occupied &= ~(1 << idx)
                heapify(bucket)
                self._front = front = bucket
                self._front_slot = slot
                if len(bucket) > self._max_bucket:
                    self._max_bucket = len(bucket)
                continue
            # Near wheel empty: reap cancelled spill heads, then jump the
            # window to the spill's first live slot and re-bucket.
            spill = self._spill
            while spill and spill[0][2] is None:
                self._cancelled_unreaped -= 1
                self._recycle(heappop(spill))
            if not spill:
                return None
            self._cur_slot = max(
                self._cur_slot, int(spill[0][0] * self._inv_width)
            )
            self._refill_from_spill()

    def _pop_cohort(self, when):
        """Move every future event with time exactly ``when`` (the batch
        :meth:`_next_when` is positioned on) into the ready ring."""
        front = self._front
        ready = self._ready
        pool = self._pool
        live = 0
        while front and front[0][0] == when:
            entry = heappop(front)
            callback = entry[2]
            if callback is not None:
                ready.append((callback, entry[3]))
                live += 1
            else:
                self._cancelled_unreaped -= 1
            # Physically removed: recycle the body right away.  A stale
            # Timer handle still can't touch it — the callback slot is
            # cleared and seq values are never reused.
            entry[2] = None
            entry[3] = None
            if len(pool) < _POOL_MAX:
                pool.append(entry)
        self._future_live -= live

    def _compact(self):
        """Sweep tombstoned entries out of the wheel, front, and spill."""
        buckets = self._buckets
        occupied = self._occupied
        new_occupied = 0
        for idx in range(_WHEEL_SLOTS):
            if not occupied >> idx & 1:
                continue
            bucket = buckets[idx]
            keep = [e for e in bucket if e[2] is not None]
            if len(keep) != len(bucket):
                pool = self._pool
                for entry in bucket:
                    if entry[2] is None:
                        entry[3] = None
                        if len(pool) < _POOL_MAX:
                            pool.append(entry)
                bucket[:] = keep
            if bucket:
                new_occupied |= 1 << idx
        self._occupied = new_occupied
        front = self._front
        if front:
            keep = [e for e in front if e[2] is not None]
            if len(keep) != len(front):
                for entry in front:
                    if entry[2] is None:
                        self._recycle(entry)
                front[:] = keep
                # Filtering can break the heap invariant; rebuild.
                heapify(front)
        spill = self._spill
        if spill:
            keep = [e for e in spill if e[2] is not None]
            if len(keep) != len(spill):
                for entry in spill:
                    if entry[2] is None:
                        self._recycle(entry)
                spill[:] = keep
                # Filtering can break the heap invariant; rebuild.
                heapify(spill)
        self._cancelled_unreaped = 0
        self._compactions += 1

    def wheel_stats(self):
        """Timing-wheel engine statistics (``repro profile --hot``)."""
        return {
            "engine": "timing-wheel",
            "bucket_width_s": self._width,
            "buckets": _WHEEL_SLOTS,
            "max_bucket_occupancy": self._max_bucket,
            "spill_rebuckets": self._spill_rebuckets,
            "spill_peak": self._spill_peak,
            "timers_cancelled": self._timers_cancelled,
            "cancelled_unreaped": self._cancelled_unreaped,
            "compactions": self._compactions,
            "pending_events": self.pending_events,
            "events_dispatched": self.events_dispatched,
        }

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until=None):
        """Execute events until all non-daemon processes finish.

        Args:
            until: Optional virtual-time horizon.  When given, execution
                stops once the clock would pass it (the clock is then
                set to exactly ``until``).

        Raises:
            ProcessFailed: A process raised; the original exception is
                chained.
            SimulationDeadlock: The event queue drained while non-daemon
                processes were still blocked.
        """
        ready = self._ready
        dispatched = 0
        no_horizon = until is None
        while True:
            if self._failure is not None:
                break
            if self._live_processes == 0 and no_horizon:
                break
            if ready:
                callback, args = ready.popleft()
                dispatched += 1
                callback(*args)
                continue
            when = self._next_when()
            if when is None:
                break
            if not no_horizon and when > until:
                self.now = until
                break
            self.now = when
            # Batch-drain the whole equal-time cohort into the ring.
            # The sorted bucket yields seq (scheduling) order, and
            # anything scheduled at ``when`` while the cohort runs has a
            # larger seq and is appended behind it.
            self._pop_cohort(when)
        self.events_dispatched += dispatched
        if self._failure is not None:
            failure, cause = self._failure
            self._failure = None
            raise failure from cause
        if no_horizon and self._live_processes > 0:
            blocked = [
                p for p in self._processes if not p.finished and not p.daemon
            ]
            names = ", ".join(
                f"{p.name} (on {p._blocked_on!r})" for p in blocked[:10]
            )
            raise SimulationDeadlock(
                f"{len(blocked)} process(es) blocked with no pending events: {names}"
            )

    def run_until(self, when):
        """Epoch stepping: execute every event with time <= ``when`` and
        leave the clock at exactly ``when``.

        This is the primitive a sharded cluster run is built from: each
        shard's simulator is advanced barrier-to-barrier in lockstep
        with its peers, and after the call the clock reads ``when`` even
        if the shard had no event near the horizon (idle shards advance
        too, so a subsequent spawn's relative delay is a pure function
        of the barrier time, not of whatever event happened to run
        last).  Unlike :meth:`run`, daemon-only activity keeps being
        dispatched up to the horizon — a background scanner ticks the
        same number of times whether its host shares the simulator with
        a busy host or sits in its own shard.
        """
        if when < self.now:
            raise ValueError(
                f"cannot step backwards: {when} < {self.now}"
            )
        self.run(until=when)
        self.now = when

    def _fail(self, failure, cause):
        if self._failure is None:
            self._failure = (failure, cause)
