"""Event loop, virtual clock, and generator-based processes.

A *process* is a Python generator.  It models one thread of control in
the simulated system (a kernel thread, a QEMU thread, a guest agent, a
container-startup pipeline).  The generator ``yield``\\ s *command*
objects and the simulator resumes it when the command completes::

    def worker(sim, lock):
        yield Timeout(0.5)           # sleep 500 ms of virtual time
        yield lock.acquire()         # block until the mutex is granted
        try:
            yield Timeout(0.1)       # hold it for 100 ms
        finally:
            lock.release()
        return "done"                # becomes the process result

Processes are spawned with :meth:`Simulator.spawn` and the whole system
is executed with :meth:`Simulator.run`.  The simulator is single-threaded
and deterministic: events at equal timestamps fire in scheduling order.

Engine layout (the hot path)
----------------------------

The event store is split in three:

* ``_ready`` — a FIFO ring (:class:`collections.deque`) of events whose
  timestamp equals the current clock.  Same-time scheduling — process
  resumption after a lock grant, zero-delay timeouts, spawn, join
  completion — is by far the dominant case in this simulator, and it
  costs one ``append``/``popleft`` pair instead of any ordered insert.
* a *timing wheel* of ``_WHEEL_SLOTS`` fixed-width buckets holding
  strictly-future events within the wheel's horizon (the near level of
  a calendar queue / hierarchical timing wheel — the same structure the
  Linux kernel uses for its timers).  Insert is O(1): an integer
  divide, a bitmask, a list append.
* ``_spill`` — a binary heap (the sorted far level) for events beyond
  the wheel horizon.  As the wheel turns, spill events whose slot
  enters the window are re-bucketed, each exactly once.

Struct-of-arrays event storage
------------------------------

Pending future events are not Python objects.  Each event is an integer
*handle* indexing four parallel columns::

    _ewhen : array('d')  — fire time (a flat C double buffer)
    _eseq  : array('q')  — globally unique sequence number (int64)
    _ecb   : list        — callback (None = tombstoned / free)
    _eargs : list        — callback arguments

Handles are recycled through ``_free`` (a plain LIFO free list), so a
steady-state workload performs **zero** per-event allocation: arming a
timer writes four columns; cancelling writes one (``_ecb[h] = None``);
compaction filters flat lists of ints.  The columns grow to the peak
number of concurrent pending events and are then stable.

Wheel buckets are flat lists of handles: an insert within the window
appends one int, and a cancelled timer is filtered out of its bucket
without ever being decoded.  When the cursor reaches a slot it
*batch-decodes* the bucket against the columns into ``(when, seq,
handle)`` tuples — reaping tombstones in the same pass — and sorts
them with one C tuple sort (exact ``(when, seq)`` order, no key
function).  The sorted list is the *front* and is drained with a bare
index (``_front_pos``): popping a cohort is a pointer walk, no heap
sifting, no compares beyond the cohort boundary.  An insert landing in
the currently draining slot goes into a small *overlay heap*
(``_fheap``) beside the sorted front — a C ``heappush``, no list
shifting.  Every overlay seq exceeds every front seq (the front was
detached before any overlay insert happened), so comparing the two head
tuples is exactly the ``(when, seq)`` merge order, and an equal-time
cohort always drains front entries before overlay entries.

Events beyond the wheel horizon live in ``_spill`` as the same
``(when, seq, handle)`` tuples (a binary heap); re-bucketing pops them
back into handle buckets, each exactly once.

The tie-order contract, mechanically:

* Events already stored at timestamp *t* were scheduled before the
  clock reached *t*, so their seq is smaller than that of any event
  scheduled once the clock is at *t*.  When the clock advances to *t*,
  :meth:`Simulator.run` drains the *entire* equal-time cohort from the
  front into the ring in one pass (sorted order = seq order), before
  executing anything.
* Events scheduled *at* the current time while the batch executes are
  appended behind it in the ring.  Their seq is necessarily larger than
  everything already there, so FIFO order equals scheduling order.

The invariant between runs is: every pending event with ``when == now``
lives in the ring (in scheduling order); the front holds only the
cursor slot's entries (drained prefix dead, suffix sorted); the wheel
holds only ``when > now`` within the window ``[_cur_slot, _cur_slot +
_WHEEL_SLOTS)`` of slots; the spill heap holds only slots at or beyond
the window end.  Slot mapping is order-preserving (``slot_a < slot_b``
implies ``when_a < when_b``), so draining slots in order never reorders
events.

Handle lifecycle (the safety rule): a handle has exactly one physical
container reference (a bucket, the front, or a spill tuple) and is
pushed onto ``_free`` only by the code that removes that reference —
cohort drain, tombstone reap, or compaction.  ``Timer.cancel`` only
tombstones.  ``seq`` values are never reused, so a stale
:class:`Timer` holding a recycled handle compares ``_eseq[h]`` against
its own seq and degrades to a no-op.

Cancellable timers
------------------

:meth:`Simulator.call_at` / :meth:`Simulator.call_later` return a
:class:`Timer` handle whose ``cancel()`` is O(1) *lazy deletion*: the
event is tombstoned in place (one column write) and skipped (reaped)
when the cursor reaches it.  When tombstones outnumber live events
(past a small floor), a compaction sweep rebuilds the buckets and spill
without them, so a workload that arms and cancels timers that never
fire — retry watchdogs in a 10k-startup churn storm — pays O(1) per
timer instead of carrying dead entries through every subsequent
operation.

Bucket width is a constructor parameter derived deterministically from
the model (see :func:`repro.spec.timer_wheel_width`: a quarter of the
fastiovd daemon tick, the finest recurring granularity) — never from
wall-clock measurement, so two runs of the same spec always build the
same wheel.  Width affects performance only, never event order.

Aggregated daemon ticks
-----------------------

``pending_events`` includes ``_phantom_parked``: processes parked on a
:class:`repro.sim.ticker.DaemonTicker` are represented by one shared
scheduled event per tick phase instead of one timer each, and the
phantom count keeps the externally visible accounting identical to the
per-process-timer world.  See :mod:`repro.sim.ticker`.

The retained reference implementation of the old heap scheduler lives
in ``tests/reference_scheduler.py`` and is the oracle for the
differential property tests (and the baseline for the timer-dense
micro-benchmark in ``benchmarks/perf_report.py``).  It shares the
column pool (via :meth:`Simulator._alloc_entry`) and overrides only the
future-event-set hooks.
"""

from array import array
from collections import deque
from heapq import heapify, heappop, heappush

from repro.sim.errors import (
    InvalidCommand,
    ProcessFailed,
    SimulationDeadlock,
)

#: Default timing-wheel bucket width in virtual seconds.  Hosts built
#: from a :class:`~repro.spec.HostSpec` pass an explicit width derived
#: from the spec (``timer_wheel_width``); this default matches the
#: paper testbed's derivation.
DEFAULT_BUCKET_WIDTH = 0.001

#: Number of wheel slots (power of two — slot index is ``slot & MASK``).
_WHEEL_SLOTS = 256
_WHEEL_MASK = _WHEEL_SLOTS - 1

#: Compaction floor: never sweep for fewer tombstones than this.
_COMPACT_MIN = 64


class Command:
    """Base class for objects a process may ``yield``.

    Subclasses implement :meth:`subscribe`, which arranges for
    ``process`` to be resumed (via ``process._resume(value)``) once the
    command completes.  ``subscribe`` must not step the process
    synchronously; resumption always goes through the event queue so
    that command semantics are identical whether or not they complete
    immediately.
    """

    __slots__ = ()

    def subscribe(self, sim, process):
        raise NotImplementedError


class Timeout(Command):
    """Resume the process after ``delay`` units of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, delay):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = delay

    def subscribe(self, sim, process):
        delay = self.delay
        if delay == 0.0:
            sim._ready.append((process._on_resume, (None,)))
        else:
            sim.schedule(sim.now + delay, process._on_resume, None)

    def __repr__(self):
        return f"Timeout({self.delay})"


class Join(Command):
    """Resume when ``process`` finishes; the result is its return value."""

    __slots__ = ("process",)

    def __init__(self, process):
        self.process = process

    def subscribe(self, sim, waiter):
        target = self.process
        if target.finished:
            sim._ready.append((waiter._on_resume, (target.result,)))
        else:
            target._joiners.append(waiter)

    def __repr__(self):
        return f"Join({self.process.name})"


class Timer:
    """Handle to one strictly-future scheduled callback.

    Returned by :meth:`Simulator.call_at` / :meth:`Simulator.call_later`.
    :meth:`cancel` is O(1) lazy deletion — the stored event is
    tombstoned (one column write) and reaped (or compacted) later; the
    callback will not run and the event never counts as dispatched.

    A handle is safe to cancel at any point, including after the timer
    fired or after the engine recycled its pool slot: ``seq`` values
    are globally unique and never reused, so a stale handle degrades to
    a no-op instead of touching an unrelated event.
    """

    __slots__ = ("_sim", "_handle", "_seq")

    def __init__(self, sim, handle, seq):
        self._sim = sim
        self._handle = handle
        self._seq = seq

    @property
    def active(self):
        """True while the callback is still pending (not fired/cancelled)."""
        sim = self._sim
        handle = self._handle
        # A restore() can shrink the pool below a post-snapshot handle.
        return (
            handle < len(sim._eseq)
            and sim._ecb[handle] is not None
            and sim._eseq[handle] == self._seq
        )

    @property
    def when(self):
        """The scheduled fire time, or None once inactive."""
        return self._sim._ewhen[self._handle] if self.active else None

    def cancel(self):
        """Cancel the pending callback; returns True if it was active."""
        sim = self._sim
        handle = self._handle
        if (handle >= len(sim._eseq) or sim._ecb[handle] is None
                or sim._eseq[handle] != self._seq):
            return False
        sim._cancel_entry(handle)
        if sim.trace is not None:
            sim.trace.timer_cancelled()
        return True

    def __repr__(self):
        state = f"at {self._sim._ewhen[self._handle]}" if self.active else "inactive"
        return f"<Timer {state}>"


class Process:
    """A running simulated process.

    Created by :meth:`Simulator.spawn`; not instantiated directly.

    Attributes:
        name: Diagnostic name, unique-ish within a simulation.
        daemon: Daemon processes (background scanners, pollers) do not
            keep the simulation alive and are exempt from deadlock
            detection.
        finished: True once the generator returned.
        result: The generator's return value (valid once finished).
    """

    __slots__ = (
        "_sim",
        "_gen",
        "name",
        "daemon",
        "finished",
        "result",
        "_joiners",
        "_blocked_on",
        "_started_at",
        "_on_resume",
    )

    def __init__(self, sim, generator, name, daemon=False):
        self._sim = sim
        self._gen = generator
        self.name = name
        self.daemon = daemon
        self.finished = False
        self.result = None
        self._joiners = []
        self._blocked_on = None
        self._started_at = sim.now
        #: The bound resume method, created once.  Every command
        #: completion schedules this callback; binding it per event is
        #: measurable on the hot path.
        self._on_resume = self._resume

    def join(self):
        """Return a command that waits for this process to finish."""
        return Join(self)

    def _resume(self, value):
        """Advance the generator one step (the dispatch trampoline)."""
        if self.finished:
            return
        self._blocked_on = None
        sim = self._sim
        prev = sim._current
        sim._current = self
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
            return
        except Exception as exc:  # noqa: BLE001 - fail the simulation loudly
            sim._fail(ProcessFailed(self.name, exc), exc)
            return
        finally:
            sim._current = prev
        self._blocked_on = command
        if type(command) is Timeout:
            # Inlined Timeout.subscribe + schedule: the overwhelmingly
            # common yield.  A positive delay so small it underflows
            # (now + delay == now) degrades to the ready ring, exactly
            # as schedule() would route it.
            delay = command.delay
            if delay == 0.0:
                sim._ready.append((self._on_resume, (None,)))
            else:
                now = sim.now
                when = now + delay
                if when > now:
                    sim._seq = seq = sim._seq + 1
                    sim._insert_future(when, seq, self._on_resume, (None,))
                else:
                    sim._ready.append((self._on_resume, (None,)))
            return
        if not isinstance(command, Command):
            self._blocked_on = None
            sim._fail(
                InvalidCommand(
                    f"process {self.name!r} yielded {command!r}, "
                    f"which is not a sim Command"
                ),
                None,
            )
            return
        command.subscribe(sim, self)

    # Kept as an alias: spawn() historically scheduled the first step
    # through ``_step`` and external tooling may reference it.
    _step = _resume

    def _finish(self, result):
        self.finished = True
        self.result = result
        sim = self._sim
        if not self.daemon:
            sim._live_processes -= 1
        if sim.trace is not None:
            sim.trace.process_finished(self)
        ready = sim._ready
        for waiter in self._joiners:
            ready.append((waiter._on_resume, (result,)))
        self._joiners = []

    def __repr__(self):
        state = "finished" if self.finished else f"blocked on {self._blocked_on!r}"
        return f"<Process {self.name} {state}>"


class Simulator:
    """The discrete-event loop and virtual clock.

    Time is a float in *seconds* of virtual time.  All model components
    (locks, CPUs, devices) hold a reference to the simulator so they can
    schedule events and read the clock.

    Args:
        bucket_width: Timing-wheel bucket width in virtual seconds.
            Derived from the host spec by callers that have one
            (:func:`repro.spec.timer_wheel_width`); affects performance
            only — event order is width-independent.
    """

    __slots__ = (
        "now",
        "_ready",
        "_seq",
        "_processes",
        "_live_processes",
        "_current",
        "_failure",
        "events_dispatched",
        # -- struct-of-arrays event pool ---------------------------------
        "_ewhen",
        "_eseq",
        "_ecb",
        "_eargs",
        "_free",
        # -- timing wheel ------------------------------------------------
        "_width",
        "_inv_width",
        "_buckets",
        "_occupied",
        "_cur_slot",
        "_front_slot",
        "_front",
        "_front_pos",
        "_fheap",
        "_spill",
        "_future_live",
        "_cancelled_unreaped",
        "_phantom_parked",
        # -- statistics --------------------------------------------------
        "_timers_cancelled",
        "_compactions",
        "_spill_rebuckets",
        "_spill_peak",
        "_max_bucket",
        # -- observability -----------------------------------------------
        "trace",
        "runtime_probe",
    )

    def __init__(self, bucket_width=DEFAULT_BUCKET_WIDTH):
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive: {bucket_width}")
        self.now = 0.0
        self._ready = deque()
        self._seq = 0
        self._processes = []
        self._live_processes = 0
        self._current = None
        self._failure = None
        #: Total events executed, for engine throughput reporting.
        #: Cancelled timers never dispatch and never count.
        self.events_dispatched = 0
        # Struct-of-arrays event pool: one handle = one index into four
        # parallel columns.  ``_free`` recycles handles LIFO, so the
        # columns grow to the peak concurrent pending events and stop.
        self._ewhen = array("d")
        self._eseq = array("q")
        self._ecb = []
        self._eargs = []
        self._free = []
        self._width = bucket_width
        self._inv_width = 1.0 / bucket_width
        self._buckets = [[] for _ in range(_WHEEL_SLOTS)]
        #: Bitmap of non-empty buckets, indexed by ``slot & _WHEEL_MASK``.
        self._occupied = 0
        #: Lowest slot that may still hold entries; the wheel window is
        #: ``[_cur_slot, _cur_slot + _WHEEL_SLOTS)``.
        self._cur_slot = 0
        #: The slot the cursor is draining (-1: none); its handles live
        #: in ``_front``, the slot's bucket detached from the wheel
        #: array and sorted by fire time, drained by advancing
        #: ``_front_pos`` (entries before it are dead).
        self._front_slot = -1
        self._front = []
        self._front_pos = 0
        #: Overlay heap: events inserted into the front slot *while* it
        #: drains.  Kept beside the sorted front so mid-drain arming is
        #: a C heappush instead of a list insertion.
        self._fheap = []
        self._spill = []
        #: Live (non-cancelled) strictly-future events.
        self._future_live = 0
        #: Tombstoned entries not yet reaped or compacted.
        self._cancelled_unreaped = 0
        #: Daemon processes parked on an aggregated ticker, minus the
        #: shared tick events representing them (see repro.sim.ticker):
        #: keeps ``pending_events`` identical to the one-timer-per-
        #: daemon accounting.
        self._phantom_parked = 0
        self._timers_cancelled = 0
        self._compactions = 0
        self._spill_rebuckets = 0
        self._spill_peak = 0
        self._max_bucket = 0
        #: Optional :class:`repro.obs.recorder.TraceRecorder`.  None by
        #: default; every instrumented site guards on it, so a disabled
        #: recorder costs one slot read.
        self.trace = None
        #: Optional :class:`repro.obs.runtime.RuntimeProbe` (wall-clock
        #: telemetry).  Sampled once per :meth:`run` exit — never per
        #: event — so the enabled cost is two gauge writes per epoch
        #: and the disabled cost is one slot read.  Telemetry is
        #: strictly out-of-band: the probe never feeds back into
        #: simulation state.
        self.runtime_probe = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, when, callback, *args):
        """Run ``callback(*args)`` at virtual time ``when``.

        Equal timestamps fire in scheduling order.  Scheduling at the
        current time bypasses the wheel entirely (see the module
        docstring for why that preserves the tie order).
        """
        now = self.now
        if when <= now:
            if when == now:
                self._ready.append((callback, args))
                return
            raise ValueError(f"cannot schedule into the past: {when} < {now}")
        self._seq = seq = self._seq + 1
        self._insert_future(when, seq, callback, args)

    def call_at(self, when, callback, *args):
        """Schedule a cancellable callback at ``when``; returns a Timer.

        Timers must be strictly future: a handle for an event already in
        the ready ring could not be cancelled exactly, so ``when`` must
        be greater than the current time.
        """
        if when <= self.now:
            raise ValueError(
                f"timers must be strictly future: {when} <= {self.now}"
            )
        if self.trace is not None:
            callback = self.trace.timer_wrap(callback, when)
        self._seq = seq = self._seq + 1
        return Timer(self, self._insert_future(when, seq, callback, args), seq)

    def call_later(self, delay, callback, *args):
        """Schedule a cancellable callback after ``delay``; returns a Timer."""
        if delay <= 0:
            raise ValueError(f"timer delay must be positive: {delay}")
        # Inlined call_at: timer arming is hot in churn workloads and
        # the wrapper call was measurable.
        now = self.now
        when = now + delay
        if when <= now:
            raise ValueError(
                f"timers must be strictly future: {when} <= {now}"
            )
        if self.trace is not None:
            callback = self.trace.timer_wrap(callback, when)
        self._seq = seq = self._seq + 1
        return Timer(self, self._insert_future(when, seq, callback, args), seq)

    def spawn(self, generator, name=None, daemon=False):
        """Start a new process from ``generator`` and return it.

        The process takes its first step via the event queue at the
        current time, so the caller's own step finishes first.
        """
        if name is None:
            name = f"proc-{len(self._processes)}"
        process = Process(self, generator, name, daemon=daemon)
        self._processes.append(process)
        if not daemon:
            self._live_processes += 1
        if self.trace is not None:
            self.trace.process_spawned(process)
        self._ready.append((process._on_resume, (None,)))
        return process

    @property
    def current_process(self):
        """The process currently being stepped (None between steps)."""
        return self._current

    @property
    def pending_events(self):
        """Number of events waiting to execute (ring + live future set).

        Exact under lazy deletion: a cancelled-but-unreaped timer is a
        tombstone, not a pending event, and is never counted.  Daemons
        parked on an aggregated ticker count as one pending event each
        (the phantom adjustment), exactly as their individual timers
        would.
        """
        return len(self._ready) + self._future_live + self._phantom_parked

    def __len__(self):
        return self.pending_events

    # ------------------------------------------------------------------
    # future-event set (timing wheel + sorted spill over the SoA pool)
    # ------------------------------------------------------------------
    def _alloc_entry(self, when, seq, callback, args):
        """Claim a pool handle and fill its columns (shared with the
        reference-heap oracle, which places handles its own way)."""
        free = self._free
        if free:
            handle = free.pop()
            self._ewhen[handle] = when
            self._eseq[handle] = seq
            self._ecb[handle] = callback
            self._eargs[handle] = args
        else:
            handle = len(self._eseq)
            self._ewhen.append(when)
            self._eseq.append(seq)
            self._ecb.append(callback)
            self._eargs.append(args)
        return handle

    def _insert_future(self, when, seq, callback, args):
        """Store a strictly-future event; returns its pool handle."""
        # Inlined _alloc_entry: this is the hottest write path.
        free = self._free
        if free:
            handle = free.pop()
            self._ewhen[handle] = when
            self._eseq[handle] = seq
            self._ecb[handle] = callback
            self._eargs[handle] = args
        else:
            handle = len(self._eseq)
            self._ewhen.append(when)
            self._eseq.append(seq)
            self._ecb.append(callback)
            self._eargs.append(args)
        slot = int(when * self._inv_width)
        if slot == self._front_slot:
            # The cursor is mid-drain in this slot: the event joins the
            # *overlay heap* next to the sorted front — O(log overlay)
            # C tuple sifts, no list shifting.  Every overlay seq
            # exceeds every front seq (the front was detached before
            # any overlay insert), so a plain tuple compare between the
            # two heads is the exact (when, seq) merge order.
            heappush(self._fheap, (when, seq, handle))
        else:
            cur = self._cur_slot
            if slot < cur:
                # The window raced ahead of the clock: _next_when may
                # park the cursor on a far-future event (e.g. a 900 s
                # watchdog) and run(until=...) then stops the clock at
                # the horizon.  An insert landing between the clock and
                # the cursor — the sharded epoch protocol submits new
                # lifecycles exactly there — needs the window pulled
                # back first.
                self._rewind_window(slot)
                cur = slot
            if slot - cur < _WHEEL_SLOTS:
                idx = slot & _WHEEL_MASK
                self._buckets[idx].append(handle)
                self._occupied |= 1 << idx
            else:
                spill = self._spill
                heappush(spill, (when, seq, handle))
                if len(spill) > self._spill_peak:
                    self._spill_peak = len(spill)
        self._future_live += 1
        return handle

    def _cancel_entry(self, handle):
        """Tombstone a stored event (Timer.cancel); O(1) lazy deletion.

        One column write makes the event dead everywhere; the handle
        itself is freed later by whichever container still references
        it (reap or compaction)."""
        self._ecb[handle] = None
        self._eargs[handle] = None
        self._future_live -= 1
        cancelled = self._cancelled_unreaped + 1
        self._cancelled_unreaped = cancelled
        self._timers_cancelled += 1
        if cancelled >= _COMPACT_MIN and cancelled > self._future_live:
            self._compact()

    def _rewind_window(self, slot):
        """Move the wheel window back so it starts at ``slot``.

        Every bucketed handle — including the front's undrained suffix
        — is pushed back to the spill level as a ``(when, seq, handle)``
        tuple (keeping its tombstone accounting intact) and the window
        is rebuilt from there.  Rare — at most once per idle jump — so
        simplicity beats speed.
        """
        buckets = self._buckets
        spill = self._spill
        front = self._front
        ewhen = self._ewhen
        eseq = self._eseq
        pos = self._front_pos
        if pos < len(front):
            # The front already holds (when, seq, handle) tuples.
            spill += front[pos:] if pos else front
        del front[:]
        fheap = self._fheap
        if fheap:
            spill += fheap
            del fheap[:]
        self._front_pos = 0
        self._front_slot = -1
        occupied = self._occupied
        while occupied:
            idx = (occupied & -occupied).bit_length() - 1
            bucket = buckets[idx]
            for handle in bucket:
                spill.append((ewhen[handle], eseq[handle], handle))
            del bucket[:]
            occupied &= occupied - 1
        self._occupied = 0
        heapify(spill)
        self._cur_slot = slot
        self._refill_from_spill()

    def _refill_from_spill(self):
        """Re-bucket spill events whose slot entered the wheel window.

        Pops in (when, seq) order, so each bucket receives its handles
        in seq order per timestamp — which the front's stable sort
        relies on."""
        spill = self._spill
        if not spill:
            return
        limit = self._cur_slot + _WHEEL_SLOTS
        inv = self._inv_width
        buckets = self._buckets
        ecb = self._ecb
        free = self._free
        while spill and int(spill[0][0] * inv) < limit:
            when, _seq, handle = heappop(spill)
            if ecb[handle] is None:
                # The spill tuple was the handle's one reference.
                self._cancelled_unreaped -= 1
                free.append(handle)
                continue
            idx = int(when * inv) & _WHEEL_MASK
            bucket = buckets[idx]
            bucket.append(handle)
            self._occupied |= 1 << idx
            self._spill_rebuckets += 1
            if len(bucket) > self._max_bucket:
                self._max_bucket = len(bucket)

    def _next_when(self):
        """Earliest pending future time, or None if none remain.

        Positions the wheel cursor on the head event so that
        :meth:`_pop_cohort` can drain its equal-time cohort; reaps any
        tombstoned handles it walks over.
        """
        if self._future_live == 0:
            return None
        front = self._front
        fheap = self._fheap
        pos = self._front_pos
        ecb = self._ecb
        # Fast path: live head in the overlay and/or the front, no
        # reaping needed.  Sub-bucket-delay workloads (every event lands
        # in the cursor's slot) resolve here in a handful of loads.
        if fheap:
            top = fheap[0]
            if ecb[top[2]] is not None:
                if pos < len(front):
                    entry = front[pos]
                    if ecb[entry[2]] is not None:
                        return entry[0] if entry < top else top[0]
                else:
                    return top[0]
        elif pos < len(front):
            entry = front[pos]
            if ecb[entry[2]] is not None:
                return entry[0]
        ewhen = self._ewhen
        eseq = self._eseq
        free = self._free
        while True:
            n = len(front)
            while pos < n:
                entry = front[pos]
                if ecb[entry[2]] is not None:
                    break
                # Lazy-reap a cancelled timer at the front; the front
                # held its one reference, so the handle is free now.
                pos += 1
                self._cancelled_unreaped -= 1
                free.append(entry[2])
            self._front_pos = pos
            while fheap:
                top = fheap[0]
                if ecb[top[2]] is not None:
                    break
                heappop(fheap)
                self._cancelled_unreaped -= 1
                free.append(top[2])
            if pos < n:
                entry = front[pos]
                # Overlay seqs all exceed front seqs, so the bare tuple
                # compare is the exact (when, seq) merge order.
                if fheap and fheap[0] < entry:
                    return fheap[0][0]
                return entry[0]
            if fheap:
                return fheap[0][0]
            if self._front_slot >= 0:
                # Front slot exhausted: advance the wheel past it.
                self._cur_slot = self._front_slot + 1
                self._front_slot = -1
                self._refill_from_spill()
            occupied = self._occupied
            if occupied:
                # Next occupied slot at/after the cursor: all occupied
                # slots live in [_cur_slot, _cur_slot + _WHEEL_SLOTS), so
                # the bitmap rotation below is unambiguous.
                cur = self._cur_slot
                idx = cur & _WHEEL_MASK
                high = occupied >> idx
                if high:
                    slot = cur + (high & -high).bit_length() - 1
                else:
                    low = occupied & ((1 << idx) - 1)
                    slot = (
                        cur
                        + (_WHEEL_SLOTS - idx)
                        + (low & -low).bit_length()
                        - 1
                    )
                self._cur_slot = slot
                self._refill_from_spill()
                # Detach the slot's bucket into the front: batch-decode
                # the handle list against the columns into (when, seq,
                # handle) tuples — tombstones are reaped (freed) here,
                # never even entering the front — then one C tuple sort
                # yields exact (when, seq) order.  The front list object
                # is reused, so no allocation beyond the tuples.
                idx = slot & _WHEEL_MASK
                bucket = self._buckets[idx]
                self._occupied &= ~(1 << idx)
                del front[:]
                dead = 0
                for handle in bucket:
                    if ecb[handle] is not None:
                        front.append((ewhen[handle], eseq[handle], handle))
                    else:
                        dead += 1
                        free.append(handle)
                del bucket[:]
                if dead:
                    self._cancelled_unreaped -= dead
                front.sort()
                self._front_slot = slot
                self._front_pos = pos = 0
                n = len(front)
                if n > self._max_bucket:
                    self._max_bucket = n
                continue
            # Near wheel empty: reap cancelled spill heads, then jump the
            # window to the spill's first live slot and re-bucket.
            spill = self._spill
            while spill and ecb[spill[0][2]] is None:
                self._cancelled_unreaped -= 1
                free.append(heappop(spill)[2])
            if not spill:
                return None
            self._cur_slot = max(
                self._cur_slot, int(spill[0][0] * self._inv_width)
            )
            self._refill_from_spill()

    def _pop_cohort(self, when):
        """Move every future event with time exactly ``when`` (the batch
        :meth:`_next_when` is positioned on) into the ready ring.

        A pointer walk over the sorted front: batch-decodes the whole
        same-time cohort from the columns with no pops and no compares
        beyond the cohort boundary.  Front entries drain before overlay
        entries at the same timestamp — front seqs are all smaller."""
        front = self._front
        pos = self._front_pos
        n = len(front)
        ready = self._ready
        ecb = self._ecb
        eargs = self._eargs
        free = self._free
        live = 0
        while pos < n:
            entry = front[pos]
            if entry[0] != when:
                break
            pos += 1
            handle = entry[2]
            callback = ecb[handle]
            if callback is not None:
                ready.append((callback, eargs[handle]))
                live += 1
                ecb[handle] = None
            else:
                self._cancelled_unreaped -= 1
            # Physically drained: the handle is free for reuse.  A stale
            # Timer still can't touch it — the callback column is
            # cleared and seq values are never reused.
            eargs[handle] = None
            free.append(handle)
        self._front_pos = pos
        fheap = self._fheap
        while fheap and fheap[0][0] == when:
            handle = heappop(fheap)[2]
            callback = ecb[handle]
            if callback is not None:
                ready.append((callback, eargs[handle]))
                live += 1
                ecb[handle] = None
            else:
                self._cancelled_unreaped -= 1
            eargs[handle] = None
            free.append(handle)
        self._future_live -= live

    def _compact(self):
        """Sweep tombstoned handles out of the wheel, front, and spill.

        Pure flat-buffer work: filter int lists against the callback
        column, freeing every dead handle (each container holds its
        handles' only references)."""
        ecb = self._ecb
        free = self._free
        buckets = self._buckets
        occupied = self._occupied
        new_occupied = 0
        for idx in range(_WHEEL_SLOTS):
            if not occupied >> idx & 1:
                continue
            bucket = buckets[idx]
            keep = [h for h in bucket if ecb[h] is not None]
            if len(keep) != len(bucket):
                for h in bucket:
                    if ecb[h] is None:
                        free.append(h)
                bucket[:] = keep
            if bucket:
                new_occupied |= 1 << idx
        self._occupied = new_occupied
        front = self._front
        pos = self._front_pos
        if pos < len(front):
            suffix = front[pos:]
            keep = [t for t in suffix if ecb[t[2]] is not None]
            if len(keep) != len(suffix):
                for t in suffix:
                    if ecb[t[2]] is None:
                        free.append(t[2])
                # A filtered subsequence of a sorted list stays sorted.
                front[pos:] = keep
        fheap = self._fheap
        if fheap:
            keep = [t for t in fheap if ecb[t[2]] is not None]
            if len(keep) != len(fheap):
                for t in fheap:
                    if ecb[t[2]] is None:
                        free.append(t[2])
                fheap[:] = keep
                heapify(fheap)
        spill = self._spill
        if spill:
            keep = [t for t in spill if ecb[t[2]] is not None]
            if len(keep) != len(spill):
                for t in spill:
                    if ecb[t[2]] is None:
                        free.append(t[2])
                spill[:] = keep
                # Filtering can break the heap invariant; rebuild.
                heapify(spill)
        self._cancelled_unreaped = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # snapshot / restore (engine state only)
    # ------------------------------------------------------------------
    def snapshot(self):
        """Copy-out of the engine's event state for later :meth:`restore`.

        Captures the clock, sequence counter, ready ring, the
        struct-of-arrays event columns, the timing wheel (buckets,
        cursor, detached front, overlay heap), the spill heap, the free
        list, and every statistic counter — everything the future-event
        set consists of.  ``array`` columns snapshot as flat C-buffer
        copies and handle lists as shallow list copies, so a snapshot
        is cheap even with tens of thousands of pending events.

        The contract is **engine state only**: callbacks and their
        arguments are captured *by reference*.  That makes snapshots
        exact for callback/timer workloads whose model state is plain
        data the caller checkpoints alongside (the differential suite's
        shape), but generator *processes cannot be rolled back* — a
        generator's instruction pointer is not copyable, so resuming a
        restored event against a generator that advanced past its
        snapshot point is undefined.  This is precisely why the sharded
        cluster's optimistic mode (see ``repro.cluster.sharded``) rolls
        back by replaying its input journal into a fresh shard instead
        of restoring a snapshot.

        Must be taken between :meth:`run` calls, never from inside a
        dispatched callback.
        """
        return {
            "now": self.now,
            "seq": self._seq,
            "ready": list(self._ready),
            "ewhen": self._ewhen[:],
            "eseq": self._eseq[:],
            "ecb": list(self._ecb),
            "eargs": list(self._eargs),
            "free": list(self._free),
            "buckets": [list(bucket) for bucket in self._buckets],
            "occupied": self._occupied,
            "cur_slot": self._cur_slot,
            "front_slot": self._front_slot,
            "front": list(self._front),
            "front_pos": self._front_pos,
            "fheap": list(self._fheap),
            "spill": list(self._spill),
            "future_live": self._future_live,
            "cancelled_unreaped": self._cancelled_unreaped,
            "phantom_parked": self._phantom_parked,
            "live_processes": self._live_processes,
            "events_dispatched": self.events_dispatched,
            "timers_cancelled": self._timers_cancelled,
            "compactions": self._compactions,
            "spill_rebuckets": self._spill_rebuckets,
            "spill_peak": self._spill_peak,
            "max_bucket": self._max_bucket,
        }

    def restore(self, snap):
        """Roll the engine back to a :meth:`snapshot`.

        Every event container is rebuilt from the snapshot's copies, so
        mutations made after the snapshot — events dispatched, timers
        armed or cancelled, wheel turns, compactions — are all undone.
        Outstanding :class:`Timer` handles from before the snapshot
        become valid again (their seq/handle columns are restored);
        handles minted *after* the snapshot degrade to inert no-ops
        because their seqs are above the restored counter's history.
        Same restriction as :meth:`snapshot`: engine state only, and
        only between :meth:`run` calls.
        """
        self.now = snap["now"]
        self._seq = snap["seq"]
        self._ready = deque(snap["ready"])
        self._ewhen = snap["ewhen"][:]
        self._eseq = snap["eseq"][:]
        self._ecb = list(snap["ecb"])
        self._eargs = list(snap["eargs"])
        self._free = list(snap["free"])
        self._buckets = [list(bucket) for bucket in snap["buckets"]]
        self._occupied = snap["occupied"]
        self._cur_slot = snap["cur_slot"]
        self._front_slot = snap["front_slot"]
        self._front = list(snap["front"])
        self._front_pos = snap["front_pos"]
        self._fheap = list(snap["fheap"])
        self._spill = list(snap["spill"])
        self._future_live = snap["future_live"]
        self._cancelled_unreaped = snap["cancelled_unreaped"]
        self._phantom_parked = snap["phantom_parked"]
        self._live_processes = snap["live_processes"]
        self.events_dispatched = snap["events_dispatched"]
        self._timers_cancelled = snap["timers_cancelled"]
        self._compactions = snap["compactions"]
        self._spill_rebuckets = snap["spill_rebuckets"]
        self._spill_peak = snap["spill_peak"]
        self._max_bucket = snap["max_bucket"]

    def wheel_stats(self):
        """Timing-wheel engine statistics (``repro profile --hot``)."""
        pool_slots = len(self._eseq)
        pool_free = len(self._free)
        return {
            "engine": "timing-wheel",
            "bucket_width_s": self._width,
            "buckets": _WHEEL_SLOTS,
            "max_bucket_occupancy": self._max_bucket,
            "spill_rebuckets": self._spill_rebuckets,
            "spill_peak": self._spill_peak,
            "timers_cancelled": self._timers_cancelled,
            "cancelled_unreaped": self._cancelled_unreaped,
            "compactions": self._compactions,
            "pool_slots": pool_slots,
            "pool_free": pool_free,
            "pool_occupancy": pool_slots - pool_free,
            "pending_events": self.pending_events,
            "events_dispatched": self.events_dispatched,
        }

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until=None):
        """Execute events until all non-daemon processes finish.

        Args:
            until: Optional virtual-time horizon.  When given, execution
                stops once the clock would pass it (the clock is then
                set to exactly ``until``).

        Raises:
            ProcessFailed: A process raised; the original exception is
                chained.
            SimulationDeadlock: The event queue drained while non-daemon
                processes were still blocked.
        """
        ready = self._ready
        popleft = ready.popleft
        dispatched = 0
        no_horizon = until is None
        while True:
            if self._failure is not None:
                break
            if self._live_processes == 0 and no_horizon:
                break
            if ready:
                callback, args = popleft()
                dispatched += 1
                callback(*args)
                continue
            when = self._next_when()
            if when is None:
                break
            if not no_horizon and when > until:
                self.now = until
                break
            self.now = when
            # Batch-drain the whole equal-time cohort into the ring.
            # The sorted front yields seq (scheduling) order, and
            # anything scheduled at ``when`` while the cohort runs has a
            # larger seq and is appended behind it.
            self._pop_cohort(when)
        self.events_dispatched += dispatched
        if self.runtime_probe is not None:
            # Wall-clock plane: publish the live virtual frontier and
            # event total so `repro top` can show per-shard progress.
            self.runtime_probe.gauge("sim_now", self.now)
            self.runtime_probe.gauge("sim_events", self.events_dispatched)
        if self._failure is not None:
            failure, cause = self._failure
            self._failure = None
            raise failure from cause
        if no_horizon and self._live_processes > 0:
            blocked = [
                p for p in self._processes if not p.finished and not p.daemon
            ]
            names = ", ".join(
                f"{p.name} (on {p._blocked_on!r})" for p in blocked[:10]
            )
            raise SimulationDeadlock(
                f"{len(blocked)} process(es) blocked with no pending events: {names}"
            )

    def run_until(self, when):
        """Epoch stepping: execute every event with time <= ``when`` and
        leave the clock at exactly ``when``.

        This is the primitive a sharded cluster run is built from: each
        shard's simulator is advanced barrier-to-barrier in lockstep
        with its peers, and after the call the clock reads ``when`` even
        if the shard had no event near the horizon (idle shards advance
        too, so a subsequent spawn's relative delay is a pure function
        of the barrier time, not of whatever event happened to run
        last).  Unlike :meth:`run`, daemon-only activity keeps being
        dispatched up to the horizon — a background scanner ticks the
        same number of times whether its host shares the simulator with
        a busy host or sits in its own shard.
        """
        if when < self.now:
            raise ValueError(
                f"cannot step backwards: {when} < {self.now}"
            )
        self.run(until=when)
        self.now = when

    def _fail(self, failure, cause):
        if self._failure is None:
            self._failure = (failure, cause)
