"""Event loop, virtual clock, and generator-based processes.

A *process* is a Python generator.  It models one thread of control in
the simulated system (a kernel thread, a QEMU thread, a guest agent, a
container-startup pipeline).  The generator ``yield``\\ s *command*
objects and the simulator resumes it when the command completes::

    def worker(sim, lock):
        yield Timeout(0.5)           # sleep 500 ms of virtual time
        yield lock.acquire()         # block until the mutex is granted
        try:
            yield Timeout(0.1)       # hold it for 100 ms
        finally:
            lock.release()
        return "done"                # becomes the process result

Processes are spawned with :meth:`Simulator.spawn` and the whole system
is executed with :meth:`Simulator.run`.  The simulator is single-threaded
and deterministic: events at equal timestamps fire in scheduling order.

Engine layout (the hot path)
----------------------------

The event store is split in two:

* ``_ready`` — a FIFO ring (:class:`collections.deque`) of events whose
  timestamp equals the current clock.  Same-time scheduling — process
  resumption after a lock grant, zero-delay timeouts, spawn, join
  completion — is by far the dominant case in this simulator, and it
  costs one ``append``/``popleft`` pair instead of a heap push/pop.
* ``_queue`` — a binary heap of strictly-future events, keyed by
  ``(when, seq)``.  ``seq`` is a monotonically increasing int that
  breaks timestamp ties in scheduling order.

The two structures together preserve the documented tie order exactly:

* Events already in the heap at timestamp *t* were scheduled before the
  clock reached *t*, so their seq is smaller than that of any event
  scheduled once the clock is at *t*.  When the clock advances to *t*,
  :meth:`Simulator.run` drains the *entire* equal-time batch from the
  heap into the ring in one pass (consecutive heap pops yield seq
  order), before executing anything.
* Events scheduled *at* the current time while the batch executes are
  appended behind it.  Their seq is necessarily larger than everything
  already in the ring, so FIFO order equals scheduling order.

The invariant between runs is: every pending event with ``when ==
now`` lives in the ring (in scheduling order) and the heap holds only
``when > now``.  Because the ring never needs seq numbers, same-time
events carry no ordering metadata at all — a ring slot is just the
``(callback, args)`` pair, which is what "eliminates per-event
tuple/heap churn" amounts to in CPython: no counter increment, no
4-tuple, no sift-up/sift-down.
"""

import heapq
from collections import deque

from repro.sim.errors import (
    InvalidCommand,
    ProcessFailed,
    SimulationDeadlock,
)


class Command:
    """Base class for objects a process may ``yield``.

    Subclasses implement :meth:`subscribe`, which arranges for
    ``process`` to be resumed (via ``process._resume(value)``) once the
    command completes.  ``subscribe`` must not step the process
    synchronously; resumption always goes through the event queue so
    that command semantics are identical whether or not they complete
    immediately.
    """

    __slots__ = ()

    def subscribe(self, sim, process):
        raise NotImplementedError


class Timeout(Command):
    """Resume the process after ``delay`` units of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, delay):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = delay

    def subscribe(self, sim, process):
        delay = self.delay
        if delay == 0.0:
            sim._ready.append((process._on_resume, (None,)))
        else:
            sim.schedule(sim.now + delay, process._on_resume, None)

    def __repr__(self):
        return f"Timeout({self.delay})"


class Join(Command):
    """Resume when ``process`` finishes; the result is its return value."""

    __slots__ = ("process",)

    def __init__(self, process):
        self.process = process

    def subscribe(self, sim, waiter):
        target = self.process
        if target.finished:
            sim._ready.append((waiter._on_resume, (target.result,)))
        else:
            target._joiners.append(waiter)

    def __repr__(self):
        return f"Join({self.process.name})"


class Process:
    """A running simulated process.

    Created by :meth:`Simulator.spawn`; not instantiated directly.

    Attributes:
        name: Diagnostic name, unique-ish within a simulation.
        daemon: Daemon processes (background scanners, pollers) do not
            keep the simulation alive and are exempt from deadlock
            detection.
        finished: True once the generator returned.
        result: The generator's return value (valid once finished).
    """

    __slots__ = (
        "_sim",
        "_gen",
        "name",
        "daemon",
        "finished",
        "result",
        "_joiners",
        "_blocked_on",
        "_started_at",
        "_on_resume",
    )

    def __init__(self, sim, generator, name, daemon=False):
        self._sim = sim
        self._gen = generator
        self.name = name
        self.daemon = daemon
        self.finished = False
        self.result = None
        self._joiners = []
        self._blocked_on = None
        self._started_at = sim.now
        #: The bound resume method, created once.  Every command
        #: completion schedules this callback; binding it per event is
        #: measurable on the hot path.
        self._on_resume = self._resume

    def join(self):
        """Return a command that waits for this process to finish."""
        return Join(self)

    def _resume(self, value):
        """Advance the generator one step (the dispatch trampoline)."""
        if self.finished:
            return
        self._blocked_on = None
        sim = self._sim
        prev = sim._current
        sim._current = self
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
            return
        except Exception as exc:  # noqa: BLE001 - fail the simulation loudly
            sim._fail(ProcessFailed(self.name, exc), exc)
            return
        finally:
            sim._current = prev
        self._blocked_on = command
        if type(command) is Timeout:
            # Inlined Timeout.subscribe: the overwhelmingly common yield.
            delay = command.delay
            if delay == 0.0:
                sim._ready.append((self._on_resume, (None,)))
            else:
                sim.schedule(sim.now + delay, self._on_resume, None)
            return
        if not isinstance(command, Command):
            self._blocked_on = None
            sim._fail(
                InvalidCommand(
                    f"process {self.name!r} yielded {command!r}, "
                    f"which is not a sim Command"
                ),
                None,
            )
            return
        command.subscribe(sim, self)

    # Kept as an alias: spawn() historically scheduled the first step
    # through ``_step`` and external tooling may reference it.
    _step = _resume

    def _finish(self, result):
        self.finished = True
        self.result = result
        sim = self._sim
        if not self.daemon:
            sim._live_processes -= 1
        ready = sim._ready
        for waiter in self._joiners:
            ready.append((waiter._on_resume, (result,)))
        self._joiners = []

    def __repr__(self):
        state = "finished" if self.finished else f"blocked on {self._blocked_on!r}"
        return f"<Process {self.name} {state}>"


class Simulator:
    """The discrete-event loop and virtual clock.

    Time is a float in *seconds* of virtual time.  All model components
    (locks, CPUs, devices) hold a reference to the simulator so they can
    schedule events and read the clock.
    """

    __slots__ = (
        "now",
        "_queue",
        "_ready",
        "_seq",
        "_processes",
        "_live_processes",
        "_current",
        "_failure",
        "events_dispatched",
    )

    def __init__(self):
        self.now = 0.0
        self._queue = []
        self._ready = deque()
        self._seq = 0
        self._processes = []
        self._live_processes = 0
        self._current = None
        self._failure = None
        #: Total events executed, for engine throughput reporting.
        self.events_dispatched = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, when, callback, *args):
        """Run ``callback(*args)`` at virtual time ``when``.

        Equal timestamps fire in scheduling order.  Scheduling at the
        current time bypasses the heap entirely (see the module
        docstring for why that preserves the tie order).
        """
        now = self.now
        if when <= now:
            if when == now:
                self._ready.append((callback, args))
                return
            raise ValueError(f"cannot schedule into the past: {when} < {now}")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (when, seq, callback, args))

    def spawn(self, generator, name=None, daemon=False):
        """Start a new process from ``generator`` and return it.

        The process takes its first step via the event queue at the
        current time, so the caller's own step finishes first.
        """
        if name is None:
            name = f"proc-{len(self._processes)}"
        process = Process(self, generator, name, daemon=daemon)
        self._processes.append(process)
        if not daemon:
            self._live_processes += 1
        self._ready.append((process._on_resume, (None,)))
        return process

    @property
    def current_process(self):
        """The process currently being stepped (None between steps)."""
        return self._current

    @property
    def pending_events(self):
        """Number of events waiting to execute (ring + heap)."""
        return len(self._ready) + len(self._queue)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until=None):
        """Execute events until all non-daemon processes finish.

        Args:
            until: Optional virtual-time horizon.  When given, execution
                stops once the clock would pass it (the clock is then
                set to exactly ``until``).

        Raises:
            ProcessFailed: A process raised; the original exception is
                chained.
            SimulationDeadlock: The event queue drained while non-daemon
                processes were still blocked.
        """
        ready = self._ready
        queue = self._queue
        heappop = heapq.heappop
        dispatched = 0
        no_horizon = until is None
        while True:
            if self._failure is not None:
                break
            if self._live_processes == 0 and no_horizon:
                break
            if ready:
                callback, args = ready.popleft()
                dispatched += 1
                callback(*args)
                continue
            if not queue:
                break
            when = queue[0][0]
            if not no_horizon and when > until:
                self.now = until
                break
            self.now = when
            # Batch-drain the whole equal-time cohort into the ring.
            # Consecutive heap pops come out in seq (scheduling) order,
            # and anything scheduled at ``when`` while the cohort runs
            # has a larger seq and is appended behind it.
            while queue and queue[0][0] == when:
                entry = heappop(queue)
                ready.append((entry[2], entry[3]))
        self.events_dispatched += dispatched
        if self._failure is not None:
            failure, cause = self._failure
            self._failure = None
            raise failure from cause
        if no_horizon and self._live_processes > 0:
            blocked = [
                p for p in self._processes if not p.finished and not p.daemon
            ]
            names = ", ".join(
                f"{p.name} (on {p._blocked_on!r})" for p in blocked[:10]
            )
            raise SimulationDeadlock(
                f"{len(blocked)} process(es) blocked with no pending events: {names}"
            )

    def run_until(self, when):
        """Epoch stepping: execute every event with time <= ``when`` and
        leave the clock at exactly ``when``.

        This is the primitive a sharded cluster run is built from: each
        shard's simulator is advanced barrier-to-barrier in lockstep
        with its peers, and after the call the clock reads ``when`` even
        if the shard had no event near the horizon (idle shards advance
        too, so a subsequent spawn's relative delay is a pure function
        of the barrier time, not of whatever event happened to run
        last).  Unlike :meth:`run`, daemon-only activity keeps being
        dispatched up to the horizon — a background scanner ticks the
        same number of times whether its host shares the simulator with
        a busy host or sits in its own shard.
        """
        if when < self.now:
            raise ValueError(
                f"cannot step backwards: {when} < {self.now}"
            )
        self.run(until=when)
        self.now = when

    def _fail(self, failure, cause):
        if self._failure is None:
            self._failure = (failure, cause)
