"""Processor-sharing CPU model.

The paper's second bottleneck — page zeroing during DMA memory mapping
(§3.2.3) — is pure CPU work: at concurrency 200 the host's cores are
saturated by 200 single-threaded zeroing loops, which stretches the
elapsed time of every startup stage.  :class:`FairShareCPU` models a
multi-core socket under the Linux CFS idealization: every runnable job
receives an equal share of the cores, capped at one core per job
(zeroing, guest vCPU work, and memcpy loops are single-threaded).

The model is event-driven and exact: whenever the runnable-job set
changes, remaining work is advanced at the old rate and the next
completion is rescheduled.  With *n* jobs on *C* cores each job runs at
``min(1, C/n)`` cores.
"""

from repro.sim.core import Command
from repro.sim.errors import SimError

_EPSILON = 1e-9


class _CpuJob(Command):
    def __init__(self, cpu, amount):
        self.cpu = cpu
        self.amount = amount
        self.remaining = amount
        self.process = None

    def subscribe(self, sim, process):
        self.process = process
        self.cpu._admit(self)


class FairShareCPU:
    """A socket of ``cores`` identical cores shared fairly among jobs.

    Processes obtain CPU time by yielding :meth:`work`::

        yield cpu.work(0.57)   # 0.57 core-seconds of single-thread work

    With idle cores this completes in 0.57 s of virtual time; with the
    socket oversubscribed 4x it takes ~2.28 s.  Utilization and total
    executed core-seconds are tracked for experiment reporting.
    """

    def __init__(self, sim, cores, name="cpu"):
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        self._sim = sim
        self.cores = cores
        self.name = name
        self._jobs = []
        self._last_update = sim.now
        self._version = 0
        self.total_core_seconds = 0.0
        self.busy_core_seconds = 0.0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def work(self, amount):
        """Return a command performing ``amount`` core-seconds of work.

        ``amount`` may be zero, which completes immediately (useful for
        data-dependent costs that can legitimately be empty).
        """
        if amount < 0:
            raise ValueError(f"negative work amount: {amount}")
        return _CpuJob(self, amount)

    @property
    def runnable_jobs(self):
        return len(self._jobs)

    @property
    def rate_per_job(self):
        """Current cores-per-job share (0 when idle)."""
        if not self._jobs:
            return 0.0
        return min(1.0, self.cores / len(self._jobs))

    def utilization(self):
        """Mean fraction of the socket busy since simulation start."""
        self._advance()
        elapsed = self._sim.now
        if elapsed <= 0:
            return 0.0
        return self.busy_core_seconds / (elapsed * self.cores)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _admit(self, job):
        self._advance()
        if job.remaining <= _EPSILON:
            self._sim.schedule(self._sim.now, job.process._resume, None)
            return
        self._jobs.append(job)
        self._reschedule()

    def _advance(self):
        """Account for work done since the last state change."""
        now = self._sim.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._jobs:
            return
        rate = self.rate_per_job
        done = rate * elapsed
        active_cores = min(len(self._jobs), self.cores)
        self.busy_core_seconds += active_cores * elapsed
        self.total_core_seconds += done * len(self._jobs)
        for job in self._jobs:
            job.remaining -= done

    def _reschedule(self):
        """Schedule the next job completion (invalidating older ones)."""
        self._version += 1
        if not self._jobs:
            return
        rate = self.rate_per_job
        shortest = min(job.remaining for job in self._jobs)
        eta = self._sim.now + max(0.0, shortest) / rate
        self._sim.schedule(eta, self._on_completion, self._version)

    def _on_completion(self, version):
        if version != self._version:
            return  # superseded by a later job-set change
        self._advance()
        finished = [job for job in self._jobs if job.remaining <= _EPSILON]
        if not finished:
            # Numerical guard: re-arm. Should not normally happen.
            self._reschedule()
            return
        self._jobs = [job for job in self._jobs if job.remaining > _EPSILON]
        for job in finished:
            self._sim.schedule(self._sim.now, job.process._resume, None)
        self._reschedule()

    def __repr__(self):
        return f"<FairShareCPU {self.name} cores={self.cores} jobs={len(self._jobs)}>"
