"""Processor-sharing CPU model.

The paper's second bottleneck — page zeroing during DMA memory mapping
(§3.2.3) — is pure CPU work: at concurrency 200 the host's cores are
saturated by 200 single-threaded zeroing loops, which stretches the
elapsed time of every startup stage.  :class:`FairShareCPU` models a
multi-core socket under the Linux CFS idealization: every runnable job
receives an equal share of the cores, capped at one core per job
(zeroing, guest vCPU work, and memcpy loops are single-threaded).

The model is event-driven and exact, implemented as virtual-service-time
fair queueing: a single cumulative per-job service counter ``V`` is
advanced lazily (``V += rate * elapsed`` on each state change), and each
job is stamped at admission with a *finish tag* ``V + amount``.  A job
completes exactly when ``V`` reaches its tag, so the scheduler only ever
inspects the minimum tag in a heap: ``_advance`` is O(1) and ``_admit``
is O(log n), instead of decrementing ``remaining`` across every runnable
job on every event (O(n), i.e. O(n²) per run at paper concurrency).
With *n* jobs on *C* cores each job runs at ``min(1, C/n)``.
"""

import heapq

from repro.sim.core import Command

_EPSILON = 1e-9


class _CpuJob(Command):
    __slots__ = ("cpu", "amount", "finish_tag", "process")

    def __init__(self, cpu, amount):
        self.cpu = cpu
        self.amount = amount
        self.finish_tag = None
        self.process = None

    def subscribe(self, sim, process):
        self.process = process
        self.cpu._admit(self)


class FairShareCPU:
    """A socket of ``cores`` identical cores shared fairly among jobs.

    Processes obtain CPU time by yielding :meth:`work`::

        yield cpu.work(0.57)   # 0.57 core-seconds of single-thread work

    With idle cores this completes in 0.57 s of virtual time; with the
    socket oversubscribed 4x it takes ~2.28 s.  Utilization and total
    executed core-seconds are tracked for experiment reporting.
    """

    __slots__ = (
        "_sim",
        "cores",
        "name",
        "_virtual",
        "_heap",
        "_admit_seq",
        "_last_update",
        "_version",
        "_reap_stale",
        "_timer",
        "total_core_seconds",
        "busy_core_seconds",
    )

    def __init__(self, sim, cores, name="cpu", reap_stale=False):
        """``reap_stale=True`` cancels superseded completion events via
        the engine's Timer handles instead of letting them dispatch as
        version-guarded no-ops.  Off by default: stale no-op dispatches
        are counted in ``Simulator.events_dispatched``, which experiment
        summaries report, so reaping is opt-in for workloads (tests,
        benchmarks) that don't need historical byte-identity."""
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        self._sim = sim
        self.cores = cores
        self.name = name
        self._reap_stale = reap_stale
        self._timer = None
        #: Cumulative core-seconds of service received by any job that has
        #: been runnable the whole time (the fair-queueing virtual clock).
        self._virtual = 0.0
        self._heap = []  # (finish_tag, admit_seq, job)
        self._admit_seq = 0
        self._last_update = sim.now
        self._version = 0
        self.total_core_seconds = 0.0
        self.busy_core_seconds = 0.0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def work(self, amount):
        """Return a command performing ``amount`` core-seconds of work.

        ``amount`` may be zero, which completes immediately (useful for
        data-dependent costs that can legitimately be empty).
        """
        if amount < 0:
            raise ValueError(f"negative work amount: {amount}")
        return _CpuJob(self, amount)

    @property
    def runnable_jobs(self):
        return len(self._heap)

    @property
    def rate_per_job(self):
        """Current cores-per-job share (0 when idle)."""
        if not self._heap:
            return 0.0
        return min(1.0, self.cores / len(self._heap))

    def utilization(self):
        """Mean fraction of the socket busy since simulation start."""
        self._advance()
        elapsed = self._sim.now
        if elapsed <= 0:
            return 0.0
        return self.busy_core_seconds / (elapsed * self.cores)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _admit(self, job):
        self._advance()
        if job.amount <= _EPSILON:
            self._sim._ready.append((job.process._on_resume, (None,)))
            return
        job.finish_tag = self._virtual + job.amount
        heapq.heappush(self._heap, (job.finish_tag, self._admit_seq, job))
        self._admit_seq += 1
        self._reschedule()

    def _advance(self):
        """Account for work done since the last state change (O(1))."""
        now = self._sim.now
        elapsed = now - self._last_update
        self._last_update = now
        n = len(self._heap)
        if elapsed <= 0 or not n:
            return
        rate = min(1.0, self.cores / n)
        self._virtual += rate * elapsed
        self.busy_core_seconds += min(n, self.cores) * elapsed
        self.total_core_seconds += rate * elapsed * n

    def _reschedule(self):
        """Schedule the next job completion (invalidating older ones)."""
        self._version += 1
        if self._reap_stale:
            timer = self._timer
            if timer is not None:
                timer.cancel()
                self._timer = None
        if not self._heap:
            return
        rate = min(1.0, self.cores / len(self._heap))
        shortest = self._heap[0][0] - self._virtual
        eta = self._sim.now + max(0.0, shortest) / rate
        sim = self._sim
        if self._reap_stale and eta > sim.now:
            self._timer = sim.call_at(eta, self._on_completion, self._version)
        else:
            # An eta at the current instant goes through the ready ring
            # (not cancellable, but it dispatches immediately anyway).
            sim.schedule(eta, self._on_completion, self._version)

    def _on_completion(self, version):
        if version != self._version:
            return  # superseded by a later job-set change
        self._advance()
        heap = self._heap
        finished = []
        threshold = self._virtual + _EPSILON
        while heap and heap[0][0] <= threshold:
            finished.append(heapq.heappop(heap)[2])
        if not finished:
            # Numerical guard: this event is not stale (the version
            # matched), so it was scheduled for exactly the minimum tag's
            # ETA and no job set change intervened.  If float drift left
            # that tag an epsilon above V — e.g. the per-event progress
            # underflows against the ulp of a large clock value — re-arming
            # would recompute the same ETA and spin forever at zero
            # progress.  The head job is owed completion now; force it.
            job = heapq.heappop(heap)[2]
            self._virtual = job.finish_tag
            finished.append(job)
        ready = self._sim._ready
        for job in finished:
            ready.append((job.process._on_resume, (None,)))
        self._reschedule()

    def __repr__(self):
        return f"<FairShareCPU {self.name} cores={self.cores} jobs={len(self._heap)}>"
