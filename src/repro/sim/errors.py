"""Exceptions raised by the simulation kernel."""


class SimError(Exception):
    """Base class for all simulation-kernel errors."""


class SimulationDeadlock(SimError):
    """The event queue drained while processes were still blocked.

    This indicates a modeling bug (for example a lock acquired and never
    released, or an event never triggered).  The message lists the
    blocked processes so the offending model is easy to find.
    """


class ProcessFailed(SimError):
    """A simulated process raised an exception.

    The original exception is chained as ``__cause__`` and the failing
    process name is preserved for diagnostics.
    """

    def __init__(self, process_name, cause):
        super().__init__(f"simulated process {process_name!r} failed: {cause!r}")
        self.process_name = process_name
        self.cause = cause


class InvalidCommand(SimError):
    """A process yielded an object the simulator does not understand."""
