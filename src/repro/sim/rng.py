"""Deterministic randomness for reproducible experiments.

All stochastic cost variation in the models flows through a single
seeded :class:`Jitter` instance per experiment, so any run can be
reproduced exactly from its seed.  The default jitter is multiplicative
log-normal with unit mean, which matches the heavy-ish right tails seen
in the paper's startup-time distributions (Fig. 12) without shifting
averages.
"""

import math
import random
import zlib


class Jitter:
    """Seeded source of multiplicative and additive noise."""

    def __init__(self, seed=0):
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, label):
        """Derive an independent stream keyed by ``label``.

        Used to give each container / subsystem its own stream so that
        adding a consumer does not perturb the draws of the others.
        The derivation is stable across interpreter runs (CRC-based, not
        ``hash()``, which Python randomizes per process).
        """
        key = f"{self.seed}/{label}".encode("utf-8")
        return Jitter(zlib.crc32(key) & 0xFFFFFFFF)

    def factor(self, sigma):
        """Unit-mean log-normal multiplicative factor.

        ``sigma`` is the log-space standard deviation; ``sigma == 0``
        returns exactly 1.0.  The mean is corrected to 1 so calibrated
        averages are unaffected by jitter.
        """
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        if sigma == 0:
            return 1.0
        return math.exp(self._rng.gauss(0.0, sigma) - sigma * sigma / 2.0)

    def uniform(self, low, high):
        """Uniform draw in ``[low, high)``."""
        return self._rng.uniform(low, high)

    def expovariate(self, rate):
        """Exponential inter-arrival draw with the given rate."""
        return self._rng.expovariate(rate)

    def randint(self, low, high):
        """Integer draw in ``[low, high]`` inclusive."""
        return self._rng.randint(low, high)

    def choice(self, sequence):
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(sequence)

    def shuffle(self, items):
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(items)
