"""Blocking synchronization primitives with contention accounting.

These model the Linux kernel locks the paper's bottleneck analysis is
about: the VFIO devset global ``mutex`` (Bottleneck 1), the ``rwlock`` +
per-device mutexes of FastIOV's hierarchical lock decomposition (§4.2.1),
the cgroupfs and RTNL locks implicated in the software-CNI comparison
(§6.4), and counting resources such as virtiofsd service slots.

Every primitive records wait-time statistics (:class:`LockStats`) so
experiments can attribute elapsed time to contention, mirroring the
paper's profiling methodology (§3.1).

Accounting contract (uniform across Mutex, RWLock, Resource): every
``acquire``/``request`` submission appends the request to the waiter
queue, runs the primitive's grant dispatch, and *then* records the
queue depth — so a request granted immediately never counts toward
``max_queue``/``enqueued``, and one that blocks records the true depth
it observed.  Wait time is measured from submission to grant.

Bounded waits: ``acquire``/``request`` take an optional ``timeout``
(virtual seconds).  A request that is not granted within the bound is
resumed with the :data:`TIMED_OUT` sentinel instead of blocking
forever::

    got = yield lock.acquire(timeout=0.5)
    if got is TIMED_OUT:
        ...retry / fall back...

``timeout=0`` is a try-lock: grant-now or fail-now.  The machinery
rides on the engine's cancellable timers (:meth:`Simulator.call_later`)
— a granted request cancels its watchdog in O(1) and the timer never
fires, never dispatches, and never perturbs event counts; a timed-out
request is *abandoned* in place and lazily dequeued when it reaches the
head of the waiter queue, so timeouts cost O(1) rather than a queue
scan.
"""

from collections import deque

from repro.sim.core import Command
from repro.sim.errors import SimError


class _TimedOut:
    """Singleton resume value for a wait that exceeded its timeout."""

    __slots__ = ()

    def __repr__(self):
        return "TIMED_OUT"


#: Sentinel delivered to a waiter whose ``timeout`` expired before the
#: grant.  Compare with ``is`` — successful grants deliver ``None``
#: (Mutex/RWLock/Resource), which is distinct from this object.
TIMED_OUT = _TimedOut()


class LockStats:
    """Contention counters kept by every primitive.

    Attributes:
        acquisitions: Number of successful acquisitions (grants).
        contended: Grants that had to wait at least one event.
        enqueued: Requests that could not be granted immediately and
            joined the waiter queue (recorded on the enqueue path).
        total_wait: Sum of wait times across all grants, in seconds.
        max_wait: Longest single wait, in seconds.
        max_queue: Longest observed waiter-queue length (depth seen by
            an enqueuing request after the grant dispatch ran).
        timeouts: Requests resumed with :data:`TIMED_OUT` instead of a
            grant.
    """

    __slots__ = (
        "acquisitions",
        "contended",
        "enqueued",
        "total_wait",
        "max_wait",
        "max_queue",
        "timeouts",
    )

    def __init__(self):
        self.acquisitions = 0
        self.contended = 0
        self.enqueued = 0
        self.total_wait = 0.0
        self.max_wait = 0.0
        self.max_queue = 0
        self.timeouts = 0

    def record_grant(self, waited):
        self.acquisitions += 1
        if waited > 0:
            self.contended += 1
            self.total_wait += waited
            if waited > self.max_wait:
                self.max_wait = waited

    def record_enqueue(self, depth):
        """A request joined the waiter queue at the given depth."""
        self.enqueued += 1
        if depth > self.max_queue:
            self.max_queue = depth

    # Backward-compatible alias (depth-only update, no enqueue count).
    def record_queue(self, depth):
        if depth > self.max_queue:
            self.max_queue = depth

    @property
    def mean_wait(self):
        if self.acquisitions == 0:
            return 0.0
        return self.total_wait / self.acquisitions

    def as_dict(self):
        """Plain-data view, for the metrics registry and reports."""
        return {
            "acquisitions": self.acquisitions,
            "contended": self.contended,
            "enqueued": self.enqueued,
            "total_wait": self.total_wait,
            "max_wait": self.max_wait,
            "max_queue": self.max_queue,
            "timeouts": self.timeouts,
        }

    def __repr__(self):
        return (
            f"LockStats(acquisitions={self.acquisitions}, "
            f"contended={self.contended}, enqueued={self.enqueued}, "
            f"total_wait={self.total_wait:.6f}, "
            f"max_wait={self.max_wait:.6f}, max_queue={self.max_queue}, "
            f"timeouts={self.timeouts})"
        )


class _Grantable(Command):
    """A command granted later by its owning primitive.

    With a ``timeout``, a per-request watchdog timer races the grant:
    whichever happens first cancels the other (the grant cancels the
    timer in O(1); the timer marks the request *abandoned* so the grant
    dispatch skips it when it reaches the queue head).
    """

    __slots__ = (
        "primitive",
        "process",
        "enqueued_at",
        "timeout",
        "granted",
        "abandoned",
        "_timer",
    )

    def __init__(self, primitive, timeout=None):
        if timeout is not None and timeout < 0:
            raise ValueError(f"negative timeout: {timeout}")
        self.primitive = primitive
        self.process = None
        self.enqueued_at = None
        self.timeout = timeout
        self.granted = False
        self.abandoned = False
        self._timer = None

    def subscribe(self, sim, process):
        self.process = process
        self.enqueued_at = sim.now
        self.primitive._submit(self)
        if self.granted:
            return
        if sim.trace is not None:
            sim.trace.lock_wait_begin(self.primitive, self)
        timeout = self.timeout
        if timeout is None:
            return
        if timeout == 0.0:
            # Try-lock: not granted synchronously means fail now.
            self._expire()
        else:
            self._timer = sim.call_later(timeout, self._expire)

    def _grant(self, sim, stats, value=None):
        self.granted = True
        timer = self._timer
        if timer is not None:
            timer.cancel()
            self._timer = None
        stats.record_grant(sim.now - self.enqueued_at)
        sim._ready.append((self.process._on_resume, (value,)))
        if sim.trace is not None:
            sim.trace.lock_granted(self.primitive, self)

    def _expire(self):
        """Watchdog fired (or try-lock failed): give up on the grant."""
        self.abandoned = True
        self._timer = None
        primitive = self.primitive
        primitive.stats.timeouts += 1
        sim = primitive._sim
        sim._ready.append((self.process._on_resume, (TIMED_OUT,)))
        if sim.trace is not None:
            sim.trace.lock_expired(primitive, self)


class _QueuedPrimitive:
    """Shared submit skeleton: enqueue, dispatch, then record depth.

    Subclasses provide ``_dispatch`` (grant whatever the head of the
    queue permits) and the ``_waiters`` deque; this base gives all
    primitives the identical enqueue-path accounting.
    """

    __slots__ = ("_sim", "name", "_waiters", "stats", "trace_scope")

    #: Subclasses where a grant means exclusive-ish tenure worth a
    #: "hold" span on the grantee's track (Mutex, RWLock).  Resources
    #: keep it False: VF-slot tenure spans whole container lifetimes.
    trace_hold = False

    def __init__(self, sim, name):
        self._sim = sim
        self.name = name
        self._waiters = deque()
        self.stats = LockStats()
        #: Track-name prefix ("host3/") stamped by the owning host so
        #: lock tracks stay unique across a cluster.
        self.trace_scope = None

    def _submit(self, request):
        self._waiters.append(request)
        self._dispatch()
        depth = len(self._waiters)
        if depth:
            self.stats.record_enqueue(depth)
            trace = self._sim.trace
            if trace is not None:
                trace.lock_depth(self)

    def _dispatch(self):
        raise NotImplementedError

    @property
    def queue_length(self):
        return len(self._waiters)


class Mutex(_QueuedPrimitive):
    """FIFO mutual-exclusion lock.

    Models a Linux kernel ``struct mutex``: one holder at a time,
    waiters queued in arrival order.
    """

    __slots__ = ("_holder",)

    trace_hold = True

    def __init__(self, sim, name="mutex"):
        super().__init__(sim, name)
        self._holder = None

    @property
    def locked(self):
        return self._holder is not None

    def acquire(self, timeout=None):
        """Return a command that blocks until the mutex is held.

        With ``timeout``, the waiter is resumed with :data:`TIMED_OUT`
        if the grant does not arrive within the bound.
        """
        return _Grantable(self, timeout)

    def _dispatch(self):
        if self._holder is not None:
            return
        waiters = self._waiters
        while waiters:
            request = waiters.popleft()
            if request.abandoned:
                continue
            self._holder = request.process
            request._grant(self._sim, self.stats)
            return

    def release(self):
        """Release the mutex, granting it to the next waiter if any."""
        if self._holder is None:
            raise SimError(f"mutex {self.name!r} released while not held")
        trace = self._sim.trace
        if trace is not None:
            trace.lock_released(self)
        self._holder = None
        self._dispatch()

    def __repr__(self):
        return f"<Mutex {self.name} locked={self.locked} q={self.queue_length}>"


class _RWRequest(_Grantable):
    __slots__ = ("write",)

    def __init__(self, primitive, write, timeout=None):
        super().__init__(primitive, timeout)
        self.write = write


class RWLock(_QueuedPrimitive):
    """Fair (FIFO) readers-writer lock.

    Models a Linux kernel ``rwlock``/``rw_semaphore`` as used by
    FastIOV's hierarchical lock framework (§4.2.1): any number of
    concurrent readers, or one writer.  Fairness is queue order — a
    reader arriving behind a queued writer waits, which prevents writer
    starvation and keeps grant order deterministic.
    """

    __slots__ = ("_readers", "_writer")

    trace_hold = True

    def __init__(self, sim, name="rwlock"):
        super().__init__(sim, name)
        self._readers = 0
        self._writer = None

    @property
    def active_readers(self):
        return self._readers

    @property
    def write_locked(self):
        return self._writer is not None

    def acquire_read(self, timeout=None):
        """Return a command that blocks until read access is granted."""
        return _RWRequest(self, write=False, timeout=timeout)

    def acquire_write(self, timeout=None):
        """Return a command that blocks until write access is granted."""
        return _RWRequest(self, write=True, timeout=timeout)

    def _dispatch(self):
        waiters = self._waiters
        while waiters:
            head = waiters[0]
            if head.abandoned:
                waiters.popleft()
                continue
            if head.write:
                if self._readers == 0 and self._writer is None:
                    waiters.popleft()
                    self._writer = head.process
                    head._grant(self._sim, self.stats)
                break
            if self._writer is not None:
                break
            waiters.popleft()
            self._readers += 1
            head._grant(self._sim, self.stats)

    def release_read(self):
        if self._readers <= 0:
            raise SimError(f"rwlock {self.name!r}: release_read with no readers")
        trace = self._sim.trace
        if trace is not None:
            trace.lock_released(self)
        self._readers -= 1
        self._dispatch()

    def release_write(self):
        if self._writer is None:
            raise SimError(f"rwlock {self.name!r}: release_write with no writer")
        trace = self._sim.trace
        if trace is not None:
            trace.lock_released(self)
        self._writer = None
        self._dispatch()

    def __repr__(self):
        return (
            f"<RWLock {self.name} readers={self._readers} "
            f"writer={self._writer is not None} q={len(self._waiters)}>"
        )


class _ResourceRequest(_Grantable):
    __slots__ = ("amount",)

    def __init__(self, primitive, amount, timeout=None):
        super().__init__(primitive, timeout)
        self.amount = amount


class Resource(_QueuedPrimitive):
    """FIFO counting resource (semaphore) with capacity accounting.

    Used for bounded service pools such as virtiofsd worker threads or
    the storage server's NIC bandwidth slots.
    """

    __slots__ = ("capacity", "in_use")

    def __init__(self, sim, capacity, name="resource"):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        super().__init__(sim, name)
        self.capacity = capacity
        self.in_use = 0

    @property
    def available(self):
        return self.capacity - self.in_use

    def request(self, amount=1, timeout=None):
        """Return a command that blocks until ``amount`` units are held."""
        if amount <= 0 or amount > self.capacity:
            raise ValueError(
                f"resource {self.name!r}: bad request amount {amount} "
                f"(capacity {self.capacity})"
            )
        return _ResourceRequest(self, amount, timeout)

    def _dispatch(self):
        waiters = self._waiters
        while waiters:
            head = waiters[0]
            if head.abandoned:
                waiters.popleft()
                continue
            if head.amount > self.available:
                break
            waiters.popleft()
            self.in_use += head.amount
            head._grant(self._sim, self.stats)

    def release(self, amount=1):
        if amount > self.in_use:
            raise SimError(
                f"resource {self.name!r}: releasing {amount} with only "
                f"{self.in_use} in use"
            )
        self.in_use -= amount
        self._dispatch()

    def __repr__(self):
        return (
            f"<Resource {self.name} {self.in_use}/{self.capacity} "
            f"q={len(self._waiters)}>"
        )


class _EventWait(Command):
    __slots__ = ("event",)

    def __init__(self, event):
        self.event = event

    def subscribe(self, sim, process):
        event = self.event
        if event.triggered:
            sim._ready.append((process._on_resume, (event.payload,)))
        else:
            event._waiters.append(process)


class SimEvent:
    """One-shot broadcast event carrying an optional payload.

    Models completion notifications: "network interface is ready",
    "background zeroing finished", "file data landed in the vring
    buffer".  Waiting on an already-triggered event completes
    immediately with the stored payload.
    """

    __slots__ = ("_sim", "name", "triggered", "payload", "_waiters")

    def __init__(self, sim, name="event"):
        self._sim = sim
        self.name = name
        self.triggered = False
        self.payload = None
        self._waiters = []

    def wait(self):
        """Return a command that blocks until the event triggers."""
        return _EventWait(self)

    def trigger(self, payload=None):
        """Fire the event, resuming all current and future waiters."""
        if self.triggered:
            raise SimError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.payload = payload
        waiters, self._waiters = self._waiters, []
        ready = self._sim._ready
        for process in waiters:
            ready.append((process._on_resume, (payload,)))

    def __repr__(self):
        return f"<SimEvent {self.name} triggered={self.triggered}>"
