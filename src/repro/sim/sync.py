"""Blocking synchronization primitives with contention accounting.

These model the Linux kernel locks the paper's bottleneck analysis is
about: the VFIO devset global ``mutex`` (Bottleneck 1), the ``rwlock`` +
per-device mutexes of FastIOV's hierarchical lock decomposition (§4.2.1),
the cgroupfs and RTNL locks implicated in the software-CNI comparison
(§6.4), and counting resources such as virtiofsd service slots.

Every primitive records wait-time statistics (:class:`LockStats`) so
experiments can attribute elapsed time to contention, mirroring the
paper's profiling methodology (§3.1).
"""

from collections import deque

from repro.sim.core import Command
from repro.sim.errors import SimError


class LockStats:
    """Contention counters kept by every primitive.

    Attributes:
        acquisitions: Number of successful acquisitions (grants).
        contended: Grants that had to wait at least one event.
        total_wait: Sum of wait times across all grants, in seconds.
        max_wait: Longest single wait, in seconds.
        max_queue: Longest observed waiter-queue length.
    """

    def __init__(self):
        self.acquisitions = 0
        self.contended = 0
        self.total_wait = 0.0
        self.max_wait = 0.0
        self.max_queue = 0

    def record_grant(self, waited):
        self.acquisitions += 1
        if waited > 0:
            self.contended += 1
            self.total_wait += waited
            self.max_wait = max(self.max_wait, waited)

    def record_queue(self, depth):
        self.max_queue = max(self.max_queue, depth)

    @property
    def mean_wait(self):
        if self.acquisitions == 0:
            return 0.0
        return self.total_wait / self.acquisitions

    def __repr__(self):
        return (
            f"LockStats(acquisitions={self.acquisitions}, "
            f"contended={self.contended}, total_wait={self.total_wait:.6f}, "
            f"max_wait={self.max_wait:.6f}, max_queue={self.max_queue})"
        )


class _Grantable(Command):
    """A command granted later by its owning primitive."""

    def __init__(self, primitive):
        self.primitive = primitive
        self.process = None
        self.enqueued_at = None

    def subscribe(self, sim, process):
        self.process = process
        self.enqueued_at = sim.now
        self.primitive._submit(self)

    def _grant(self, sim, stats, value=None):
        stats.record_grant(sim.now - self.enqueued_at)
        sim.schedule(sim.now, self.process._resume, value)


class Mutex:
    """FIFO mutual-exclusion lock.

    Models a Linux kernel ``struct mutex``: one holder at a time,
    waiters queued in arrival order.
    """

    def __init__(self, sim, name="mutex"):
        self._sim = sim
        self.name = name
        self._holder = None
        self._waiters = deque()
        self.stats = LockStats()

    @property
    def locked(self):
        return self._holder is not None

    @property
    def queue_length(self):
        return len(self._waiters)

    def acquire(self):
        """Return a command that blocks until the mutex is held."""
        return _Grantable(self)

    def _submit(self, request):
        if self._holder is None:
            self._holder = request.process
            request._grant(self._sim, self.stats)
        else:
            self._waiters.append(request)
            self.stats.record_queue(len(self._waiters))

    def release(self):
        """Release the mutex, granting it to the next waiter if any."""
        if self._holder is None:
            raise SimError(f"mutex {self.name!r} released while not held")
        if self._waiters:
            request = self._waiters.popleft()
            self._holder = request.process
            request._grant(self._sim, self.stats)
        else:
            self._holder = None

    def __repr__(self):
        return f"<Mutex {self.name} locked={self.locked} q={self.queue_length}>"


class _RWRequest(_Grantable):
    def __init__(self, primitive, write):
        super().__init__(primitive)
        self.write = write


class RWLock:
    """Fair (FIFO) readers-writer lock.

    Models a Linux kernel ``rwlock``/``rw_semaphore`` as used by
    FastIOV's hierarchical lock framework (§4.2.1): any number of
    concurrent readers, or one writer.  Fairness is queue order — a
    reader arriving behind a queued writer waits, which prevents writer
    starvation and keeps grant order deterministic.
    """

    def __init__(self, sim, name="rwlock"):
        self._sim = sim
        self.name = name
        self._readers = 0
        self._writer = None
        self._waiters = deque()
        self.stats = LockStats()

    @property
    def active_readers(self):
        return self._readers

    @property
    def write_locked(self):
        return self._writer is not None

    def acquire_read(self):
        """Return a command that blocks until read access is granted."""
        return _RWRequest(self, write=False)

    def acquire_write(self):
        """Return a command that blocks until write access is granted."""
        return _RWRequest(self, write=True)

    def _submit(self, request):
        self._waiters.append(request)
        self.stats.record_queue(len(self._waiters))
        self._dispatch()

    def _dispatch(self):
        while self._waiters:
            head = self._waiters[0]
            if head.write:
                if self._readers == 0 and self._writer is None:
                    self._waiters.popleft()
                    self._writer = head.process
                    head._grant(self._sim, self.stats)
                break
            if self._writer is not None:
                break
            self._waiters.popleft()
            self._readers += 1
            head._grant(self._sim, self.stats)

    def release_read(self):
        if self._readers <= 0:
            raise SimError(f"rwlock {self.name!r}: release_read with no readers")
        self._readers -= 1
        self._dispatch()

    def release_write(self):
        if self._writer is None:
            raise SimError(f"rwlock {self.name!r}: release_write with no writer")
        self._writer = None
        self._dispatch()

    def __repr__(self):
        return (
            f"<RWLock {self.name} readers={self._readers} "
            f"writer={self._writer is not None} q={len(self._waiters)}>"
        )


class _ResourceRequest(_Grantable):
    def __init__(self, primitive, amount):
        super().__init__(primitive)
        self.amount = amount


class Resource:
    """FIFO counting resource (semaphore) with capacity accounting.

    Used for bounded service pools such as virtiofsd worker threads or
    the storage server's NIC bandwidth slots.
    """

    def __init__(self, sim, capacity, name="resource"):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._sim = sim
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters = deque()
        self.stats = LockStats()

    @property
    def available(self):
        return self.capacity - self.in_use

    def request(self, amount=1):
        """Return a command that blocks until ``amount`` units are held."""
        if amount <= 0 or amount > self.capacity:
            raise ValueError(
                f"resource {self.name!r}: bad request amount {amount} "
                f"(capacity {self.capacity})"
            )
        return _ResourceRequest(self, amount)

    def _submit(self, request):
        self._waiters.append(request)
        self.stats.record_queue(len(self._waiters))
        self._dispatch()

    def _dispatch(self):
        while self._waiters and self._waiters[0].amount <= self.available:
            request = self._waiters.popleft()
            self.in_use += request.amount
            request._grant(self._sim, self.stats)

    def release(self, amount=1):
        if amount > self.in_use:
            raise SimError(
                f"resource {self.name!r}: releasing {amount} with only "
                f"{self.in_use} in use"
            )
        self.in_use -= amount
        self._dispatch()

    def __repr__(self):
        return (
            f"<Resource {self.name} {self.in_use}/{self.capacity} "
            f"q={len(self._waiters)}>"
        )


class _EventWait(Command):
    def __init__(self, event):
        self.event = event

    def subscribe(self, sim, process):
        if self.event.triggered:
            sim.schedule(sim.now, process._resume, self.event.payload)
        else:
            self.event._waiters.append(process)


class SimEvent:
    """One-shot broadcast event carrying an optional payload.

    Models completion notifications: "network interface is ready",
    "background zeroing finished", "file data landed in the vring
    buffer".  Waiting on an already-triggered event completes
    immediately with the stored payload.
    """

    def __init__(self, sim, name="event"):
        self._sim = sim
        self.name = name
        self.triggered = False
        self.payload = None
        self._waiters = []

    def wait(self):
        """Return a command that blocks until the event triggers."""
        return _EventWait(self)

    def trigger(self, payload=None):
        """Fire the event, resuming all current and future waiters."""
        if self.triggered:
            raise SimError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.payload = payload
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._sim.schedule(self._sim.now, process._resume, payload)

    def __repr__(self):
        return f"<SimEvent {self.name} triggered={self.triggered}>"
