"""Aggregated periodic ticks for homogeneous daemon processes.

On a cluster cell the single largest event population is the per-host
``fastiovd`` scanner tick: every host arms one ``Timeout(scan_interval)``
per 4 ms of virtual time, and on an idle host the fired event does
nothing but step a generator that immediately re-arms it.  N hosts pay
N timer inserts, N dispatches, and N generator resumes per interval for
zero model progress.

:class:`DaemonTicker` collapses that population.  Daemons *park* on the
ticker (``yield ticker.park(predicate)``) instead of sleeping on their
own timer.  Parked daemons sharing the same fire time form a *phase
group* backed by **one** scheduled event; when it fires, the ticker
sweeps the group with a plain predicate call per member:

* ``predicate()`` true (the daemon has work — e.g. a non-empty lazy
  table): the member's resume callback is appended to the ready ring,
  exactly where its own timer would have delivered it.
* false: the member is re-parked into the group one interval later
  without ever resuming its generator — one list append instead of a
  timer insert + event dispatch + generator step.

The virtual-time arithmetic is bit-identical to the per-daemon world:
a park at time *t* targets ``t + interval`` (the same float sum
``Timeout`` would produce) and an idle re-park chains ``when +
interval`` from the group's exact fire time, so busy daemons drift off
phase and rejoin groups precisely as their private timers would.

External accounting is also preserved.  Each group fire bumps
``events_dispatched`` by the members the per-daemon world would have
dispatched individually (the ``idle - 1`` compensation: one dispatch
for the group event itself, one per woken member when its resume runs
from the ring).  ``Simulator.pending_events`` counts parked members
through ``_phantom_parked`` — a group of *k* members is one real
pending event plus ``k - 1`` phantoms — so schedulers and epoch
protocols observe the same queue depths either way.

The sweep is still O(members) per interval, but its constant is a
predicate call and (for idle members) a list append — roughly an order
of magnitude cheaper than the full timer insert / dispatch / trampoline
cycle, which is where the timer-dense throughput multiple comes from
(see ``benchmarks/perf_report.py::engine_daemon_tick_events_per_sec``).
"""

from repro.sim.core import Command


class _Park(Command):
    """Yieldable that parks the current process on a ticker.

    Immutable: a daemon loop creates one and re-yields the same object
    every iteration.  The process resumes with ``None`` (like a
    ``Timeout``) at a tick where ``predicate()`` returned true.
    """

    __slots__ = ("_ticker", "_predicate")

    def __init__(self, ticker, predicate):
        self._ticker = ticker
        self._predicate = predicate

    def subscribe(self, sim, process):
        self._ticker._park(process._on_resume, self._predicate)

    def __repr__(self):
        return f"<Park on {self._ticker!r}>"


class DaemonTicker:
    """One shared periodic tick for many parked daemon processes."""

    __slots__ = (
        "_sim",
        "interval",
        "_groups",
        "ticks_fired",
        "wakes",
        "skips",
        "members_peak",
    )

    def __init__(self, sim, interval):
        if interval <= 0:
            raise ValueError(f"tick interval must be positive: {interval}")
        self._sim = sim
        self.interval = interval
        #: Exact fire time -> list of (resume, predicate) members.  Keys
        #: are the same floats per-daemon timers would compute, so
        #: daemons sharing a phase share one event by construction.
        self._groups = {}
        self.ticks_fired = 0
        self.wakes = 0
        self.skips = 0
        self.members_peak = 0

    def park(self, predicate):
        """A reusable command parking its yielder until a tick at which
        ``predicate()`` is true (evaluated at each tick, daemon asleep)."""
        return _Park(self, predicate)

    def _park(self, resume, predicate):
        sim = self._sim
        when = sim.now + self.interval
        groups = self._groups
        group = groups.get(when)
        if group is None:
            groups[when] = [(resume, predicate)]
            sim.schedule(when, self._fire, when)
        else:
            group.append((resume, predicate))
            sim._phantom_parked += 1

    def _fire(self, when):
        sim = self._sim
        groups = self._groups
        group = groups.pop(when)
        k = len(group)
        sim._phantom_parked -= k - 1
        ready = sim._ready
        nxt = when + self.interval
        ngroup = groups.get(nxt)
        idle = 0
        for member in group:
            if member[1]():
                # Delivered exactly as the member's own timer would:
                # through the ready ring, resumed with None.
                ready.append((member[0], (None,)))
            else:
                idle += 1
                if ngroup is None:
                    ngroup = [member]
                    groups[nxt] = ngroup
                    sim.schedule(nxt, self._fire, nxt)
                else:
                    ngroup.append(member)
                    sim._phantom_parked += 1
        # Dispatch-count parity with one-timer-per-daemon: k individual
        # timers would have dispatched; this tick dispatches 1 (the
        # group event) plus one per woken member when the ring drains.
        sim.events_dispatched += idle - 1
        self.ticks_fired += 1
        self.wakes += k - idle
        self.skips += idle
        if k > self.members_peak:
            self.members_peak = k

    @property
    def parked(self):
        """Number of currently parked members across all phase groups."""
        return sum(len(g) for g in self._groups.values())

    def stats(self):
        """Counters for observability ingestion (metrics registry)."""
        return {
            "interval_s": self.interval,
            "ticks_fired": self.ticks_fired,
            "member_wakes": self.wakes,
            "member_skips": self.skips,
            "members_peak": self.members_peak,
            "parked": self.parked,
            "phase_groups": len(self._groups),
        }

    def __repr__(self):
        return (
            f"<DaemonTicker interval={self.interval} "
            f"parked={self.parked} groups={len(self._groups)}>"
        )
