"""Host specification: hardware geometry and calibrated cost constants.

Every latency/CPU constant the simulation charges lives here, in one
frozen dataclass, so that (a) experiments are reproducible, (b) the
calibration pass (``repro.experiments.calibrate``) has a single surface
to tune, and (c) DESIGN.md can point at the exact knobs behind each
paper-matching number.

The default values model the paper's testbed (§3.1): two 28-core Xeon
6348 sockets (we use the 56 physical cores as the processor-sharing
capacity, since page zeroing and memcpy are memory-bandwidth-bound and
gain nothing from hyperthreads), 256 GiB DDR4, a 25 GbE Intel E810 with
256 VFs, CentOS with 2 MiB hugepages, Kata-QEMU microVMs with 0.5 vCPU
and 512 MiB RAM.

Calibration provenance: constants marked ``# cal`` were tuned by
``experiments/calibrate.py`` against the paper's headline shapes
(Tab. 1 proportions, Fig. 11 means, Fig. 1 overhead curve); the rest
are order-of-magnitude values from public kernel/QEMU profiling that
the shapes are insensitive to.
"""

import dataclasses

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclasses.dataclass(frozen=True)
class HostSpec:
    """All tunable constants of the simulated host."""

    # ------------------------------------------------------------------
    # hardware geometry
    # ------------------------------------------------------------------
    cores: int = 56
    memory_bytes: int = 256 * GIB
    page_size: int = 2 * MIB  # hugepages enabled, as in §3.1
    nic_model: str = "intel-e810"
    nic_max_vfs: int = 256
    nic_bandwidth_gbps: float = 25.0
    #: Non-VF PCI functions sharing the NIC's bus (root ports, PF, ...).
    pci_extra_devices: int = 2
    #: Storage-server link for serverless downloads (two-server setup, §6.1).
    storage_bandwidth_gbps: float = 25.0

    # ------------------------------------------------------------------
    # VFIO devset management (Bottleneck 1, §3.2.2)
    # ------------------------------------------------------------------
    #: Fixed part of opening a VFIO device (chardev open, fd setup, group
    #: viability checks).
    vfio_open_base_s: float = 0.004
    #: Per-device cost of the PCI bus scan that verifies every device on
    #: the bus belongs to the devset and is reset-quiescent.  With ~256
    #: VFs + extras on the bus this dominates the open.         # cal
    vfio_bus_scan_per_device_s: float = 0.00042
    #: Registering the device with the hypervisor after open (region
    #: info ioctls, interrupt setup).
    vfio_register_ioctls_s: float = 0.030

    # ------------------------------------------------------------------
    # DMA memory mapping (Bottleneck 2, §3.2.3, Fig. 6)
    # ------------------------------------------------------------------
    #: Per retrieval batch: one allocator call grabbing a contiguous run.
    dma_retrieve_per_batch_s: float = 30e-6
    #: Per page within a batch (list append, struct page handling).
    dma_retrieve_per_page_s: float = 1.5e-6
    #: Single-thread page-zeroing throughput (streaming stores).  Bulk
    #: zeroing is DRAM-bound, not core-bound: concurrent zeroers share
    #: the memory controller's write bandwidth, modeled as a pool of
    #: ``dram_channels`` x this rate.  The paper measures zeroing at
    #: >93% of mapping time with hugepages (§3.2.3 P3).          # cal
    zeroing_bytes_per_cpu_s: float = 1600 * MIB
    #: Concurrent zeroing streams the memory system sustains at full
    #: per-stream rate; beyond this, streams share the aggregate. # cal
    dram_channels: int = 11
    #: Pinning (get_user_pages + refcount) per page.
    dma_pin_per_page_s: float = 2.0e-6
    #: IOMMU page-table entry install per page.
    iommu_map_per_page_s: float = 2.5e-6
    #: IOMMU page-table entry teardown per page.
    iommu_unmap_per_page_s: float = 1.5e-6
    #: fastiovd: registering one page in the two-tier hash table.
    fastiovd_register_per_page_s: float = 0.4e-6
    #: vIOMMU baseline (§8): emulation-layer intercept per DMA mapping
    #: request on the data path.
    viommu_intercept_s: float = 12e-6
    #: Fault-time zeroing throughput (demand faults / fastiovd's EPT
    #: hook): the page is scrubbed cache-adjacent to its first use, far
    #: faster than the bulk streaming clears of eager DMA mapping.
    fault_zero_bytes_per_cpu_s: float = 1536 * MIB

    # ------------------------------------------------------------------
    # KVM / EPT
    # ------------------------------------------------------------------
    #: One EPT-violation VM exit + GPA->HVA->HPA resolution + entry
    #: install (no zeroing).
    ept_fault_s: float = 4.0e-6
    #: fastiovd hash-table lookup on the EPT fault path (§5).
    fastiovd_lookup_s: float = 0.6e-6
    #: Registering one KVM memory slot.
    kvm_slot_register_s: float = 25e-6
    #: Host anonymous-memory fault (alloc + zero is charged separately).
    host_page_fault_s: float = 2.0e-6

    # ------------------------------------------------------------------
    # fastiovd background zeroing (§5 "background clearing")
    # ------------------------------------------------------------------
    fastiovd_scan_interval_s: float = 0.004
    #: Max bytes one scanner wakeup zeroes (bounds CPU interference).
    fastiovd_scan_chunk_bytes: int = 128 * MIB
    #: Number of background zeroing worker threads.
    fastiovd_scan_workers: int = 32

    # ------------------------------------------------------------------
    # cgroups (step 0-cgroup; heavier for software CNIs, §6.4)
    # ------------------------------------------------------------------
    cgroup_base_s: float = 0.003
    #: Time held under the global cgroup mutex per container.     # cal
    cgroup_lock_hold_s: float = 0.0060
    #: Extra cgroup ops (net_cls/net_prio) a software CNI performs,
    #: as a multiplier on the lock hold.
    cgroup_softcni_factor: float = 2.4

    # ------------------------------------------------------------------
    # driver binding (§5 implementation flaw)
    # ------------------------------------------------------------------
    #: Host netdev driver (iavf) probe: PF mailbox + netdev registration,
    #: serialized on the kernel device lock.
    host_netdev_probe_s: float = 0.32
    #: vfio-pci probe (cheap: no hardware bring-up).
    vfio_probe_s: float = 0.045
    #: Unbind/teardown of either driver.
    driver_unbind_s: float = 0.030

    # ------------------------------------------------------------------
    # host network stack (dummy interfaces, IPvtap; §6.4)
    # ------------------------------------------------------------------
    #: RTNL-lock hold for creating a dummy interface (FastIOV CNI).
    rtnl_dummy_create_s: float = 0.0012
    #: RTNL-lock hold for creating + wiring an ipvtap device.     # cal
    rtnl_ipvtap_create_s: float = 0.021
    #: CPU cost of ipvtap device emulation setup in the hypervisor.
    ipvtap_backend_cpu_s: float = 0.12
    #: Moving an interface into a container NNS / IP configuration.
    netns_move_s: float = 0.004
    ip_configure_s: float = 0.003
    #: Software data plane (ipvtap/virtio-net) throughput per core —
    #: much worse than passthrough (§6.4).
    ipvtap_bytes_per_cpu_s: float = 900 * MIB
    #: Runtime detecting the VF's interface inside the container NNS.
    runtime_vf_detect_s: float = 0.004

    # ------------------------------------------------------------------
    # CNI / container engine pipeline
    # ------------------------------------------------------------------
    nns_create_s: float = 0.005
    cni_invoke_base_s: float = 0.010
    pf_configure_vf_s: float = 0.006

    # ------------------------------------------------------------------
    # microVM lifecycle (non-VF "others" in Tab. 1)
    # ------------------------------------------------------------------
    vm_create_base_s: float = 0.035   # QEMU spawn + config parse
    vm_create_cpu_s: float = 0.10    # cal
    virtiofs_setup_base_s: float = 0.020
    virtiofs_setup_cpu_s: float = 0.16   # cal
    #: virtiofsd spawn/registration critical section (shared daemon
    #: management lock; a software-side serialization [42]).      # cal
    virtiofs_lock_hold_s: float = 0.021
    guest_boot_base_s: float = 0.070
    guest_boot_cpu_s: float = 0.30    # cal
    agent_start_s: float = 0.020
    sandbox_finalize_s: float = 0.010
    #: Containerd sandbox-store critical section per container.   # cal
    engine_serialized_s: float = 0.0010

    # ------------------------------------------------------------------
    # guest memory layout
    # ------------------------------------------------------------------
    default_vm_memory_bytes: int = 512 * MIB
    image_bytes: int = 256 * MIB      # microVM system image (§3.2.3 P1)
    #: Read-only BIOS+kernel loaded by the hypervisor: ~9.4% of a 512 MiB
    #: microVM (§4.3.2), fixed size regardless of RAM.
    rom_bytes: int = 48 * MIB
    #: Fraction of (non-ROM) RAM the guest kernel touches while booting.
    boot_touch_fraction: float = 0.06
    #: virtio vring + RX/TX buffer footprint the VF driver allocates.
    nic_ring_bytes: int = 8 * MIB

    # ------------------------------------------------------------------
    # VF driver initialization inside the guest (Bottleneck 3, §3.2.4)
    # ------------------------------------------------------------------
    vf_driver_pci_enum_s: float = 0.050
    vf_driver_register_netif_s: float = 0.040
    vf_driver_link_up_s: float = 0.100
    vf_driver_cpu_s: float = 0.42     # cal — grows with concurrency via CPU sharing
    #: VF->PF admin-queue negotiation during driver init, serialized at
    #: the PF mailbox; the reason vf-driver time grows into seconds at
    #: high concurrency (§3.2.4).                                 # cal
    vf_admin_negotiation_s: float = 0.055
    agent_ip_assign_s: float = 0.045
    #: Poll period of the agent's asynchronous readiness check (§4.2.2).
    agent_poll_interval_s: float = 0.020
    #: vDPA (§7): virtio-net feature negotiation + vring setup over the
    #: vDPA framework — replaces the whole vendor driver bring-up.
    vdpa_virtio_setup_s: float = 0.045

    # ------------------------------------------------------------------
    # image transfer / app launch (masks async VF init, §4.2.2)
    # ------------------------------------------------------------------
    #: Container image bytes pulled through virtioFS at app launch.
    container_image_bytes: int = 64 * MIB
    #: virtioFS transfer throughput per container stream, bytes/CPU-s.
    virtiofs_bytes_per_cpu_s: float = 600 * MIB
    app_create_process_s: float = 0.080
    app_create_cpu_s: float = 0.11

    # ------------------------------------------------------------------
    # memory-performance model (§6.5)
    # ------------------------------------------------------------------
    #: Guest steady-state memcpy throughput, bytes per CPU-second.
    guest_memcpy_bytes_per_cpu_s: float = 11.5 * GIB
    #: Guest random-access latency per read.
    guest_mem_latency_s: float = 95e-9

    # ------------------------------------------------------------------
    # stochastic jitter
    # ------------------------------------------------------------------
    #: Log-space sigma applied multiplicatively to stage latencies.
    jitter_sigma: float = 0.18

    def derive(self, **overrides):
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **overrides)

    def zeroing_cpu_seconds(self, nbytes):
        """CPU-seconds to bulk-zero ``nbytes`` (streaming clear)."""
        return nbytes / self.zeroing_bytes_per_cpu_s

    def fault_zeroing_cpu_seconds(self, nbytes):
        """CPU-seconds to zero ``nbytes`` on the fault path (cache-warm)."""
        return nbytes / self.fault_zero_bytes_per_cpu_s

    def bytes_over_network_s(self, nbytes, gbps=None):
        """Wire time for ``nbytes`` at ``gbps`` (defaults to the NIC)."""
        rate = self.nic_bandwidth_gbps if gbps is None else gbps
        return nbytes * 8 / (rate * 1e9)

    def timer_wheel_width(self):
        """Bucket width (s) for the engine's timing wheel, derived from
        the spec so identical specs always build identical wheels.

        The fastiovd background-scanner tick is the finest *recurring*
        event granularity in the model; a quarter of it keeps each tick
        cohort in its own bucket with headroom for jittered events
        landing nearby.  Width is a pure function of the spec — never of
        wall-clock measurement — and affects engine performance only:
        event order is width-invariant (tested).
        """
        return self.fastiovd_scan_interval_s / 4


#: The paper's testbed configuration (§3.1).
PAPER_TESTBED = HostSpec()
