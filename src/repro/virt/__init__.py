"""Virtualization layer: hypervisor, microVM, guest kernel, virtio.

Models the Kata-QEMU + guest-kernel side of the startup pipeline
(Fig. 4, right half): microVM creation with the full guest memory
layout (ROM, RAM, image), KVM slot registration over VFIO-pinned /
anonymous / page-cache backings, virtioFS with the shared-buffer
semantics that make proactive EPT faults necessary (§4.3.2), and the
guest's VF driver initialization (Bottleneck 3, §3.2.4).
"""

from repro.virt.guest import GuestKernel
from repro.virt.hypervisor import Hypervisor, VirtNetworkPlan
from repro.virt.layout import GuestMemoryLayout
from repro.virt.microvm import Microvm
from repro.virt.virtio import VirtioFS

__all__ = [
    "GuestKernel",
    "GuestMemoryLayout",
    "Hypervisor",
    "Microvm",
    "VirtNetworkPlan",
    "VirtioFS",
]
