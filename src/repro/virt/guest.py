"""The guest side: kernel boot, VF driver initialization, daemon agent.

Bottleneck 3 (§3.2.4) lives here: after VFIO hands the VF to the
microVM, the guest's NIC driver enumerates the PCI device, registers a
netdev, configures parameters, waits for link-up, and the secure
container agent assigns MAC/IP — several hundred milliseconds that the
vanilla runtime serializes into the startup path.  FastIOV runs
:meth:`GuestKernel.vf_driver_init` asynchronously and has the agent
poll readiness just before application exec (§4.2.2); that scheduling
decision belongs to the container runtime, which simply chooses whether
to ``yield from`` this generator or spawn it as a separate process.
"""

from repro.sim.core import Timeout


class GuestKernel:
    """The microVM's guest kernel and container agent."""

    def __init__(self, sim, cpu, kvm, spec, jitter, microvm, pf_mailbox=None):
        self._sim = sim
        self._cpu = cpu
        self._kvm = kvm
        self._spec = spec
        self._jitter = jitter.fork(f"guest-{microvm.name}")
        self._microvm = microvm
        self._pf_mailbox = pf_mailbox
        self.booted = False
        self.vf_driver_ready = False

    # ------------------------------------------------------------------
    # boot
    # ------------------------------------------------------------------
    def boot(self, timer):
        """Boot the guest kernel.

        Executes ROM code (verified reads — clobbered kernel pages are a
        :class:`GuestCrash`), touches the boot working set, and mounts
        the root image (reads through whatever backs the image region).
        """
        spec = self._spec
        microvm = self._microvm
        vm = microvm.vm
        layout = microvm.layout
        sigma = spec.jitter_sigma
        trace = self._sim.trace
        track = trace.current_track() if trace is not None else None
        with timer.step("guest-boot"):
            yield Timeout(spec.guest_boot_base_s * self._jitter.factor(sigma))
            yield self._cpu.work(spec.guest_boot_cpu_s * self._jitter.factor(sigma))
            # Execute BIOS + kernel: every ROM page must still hold what
            # the hypervisor wrote.
            if trace is not None:
                trace.begin(track, "kernel-exec")
            yield from self._kvm.guest_touch_range(
                vm, layout.rom_gpa, layout.rom_bytes,
                expect="hypervisor:kernel", verify=True,
            )
            if trace is not None:
                trace.end(track)
                trace.begin(track, "boot-working-set")
            # Boot working set: page tables, slab, initramfs unpack...
            ws_bytes = max(
                layout.page_size,
                int(layout.general_ram_bytes * spec.boot_touch_fraction),
            )
            ws_base = microvm.alloc_guest_range(ws_bytes, "boot-working-set")
            yield from self._kvm.guest_touch_range(
                vm, ws_base, ws_bytes, write=True, tag=f"{microvm.name}:boot"
            )
            if trace is not None:
                trace.end(track)
                trace.begin(track, "root-mount")
            # Mount the root image: read the superblock/top of the image.
            yield from self._kvm.guest_touch_range(
                vm, layout.image_gpa, layout.image_bytes // 8,
                expect="hypervisor:image", verify=True,
            )
            if trace is not None:
                trace.end(track)
        self.booted = True

    # ------------------------------------------------------------------
    # VF driver initialization (Bottleneck 3)
    # ------------------------------------------------------------------
    def vf_driver_init(self, timer):
        """Initialize the passthrough VF as a Linux network interface.

        PCI enumeration, RX/TX ring allocation (the driver zeroes its
        DMA buffers, which EPT-faults every ring page — the property §7
        relies on), netdev registration + parameter configuration
        (CPU-bound, scales with concurrency), link-up wait, and the
        agent's MAC/IP assignment.  Triggers ``network_ready``.
        """
        spec = self._spec
        microvm = self._microvm
        vm = microvm.vm
        sigma = spec.jitter_sigma
        with timer.step("5-vf-driver"):
            yield Timeout(spec.vf_driver_pci_enum_s * self._jitter.factor(sigma))
            # Allocate and scrub the DMA rings: standard drivers zero
            # their buffers right after allocation (§4.3.2), so every
            # ring page is EPT-faulted before the NIC can write it.
            ring_gpa = microvm.alloc_guest_range(spec.nic_ring_bytes, "nic-rings")
            microvm.nic_ring_gpa = ring_gpa
            yield from self._kvm.guest_touch_range(
                vm, ring_gpa, spec.nic_ring_bytes,
                write=True, tag=f"{microvm.name}:devzero",
            )
            yield Timeout(spec.vf_driver_register_netif_s * self._jitter.factor(sigma))
            yield self._cpu.work(spec.vf_driver_cpu_s * self._jitter.factor(sigma))
            # Resource negotiation with the PF through its admin queue:
            # serialized at the PF mailbox, which is what turns "a few
            # hundred milliseconds" into seconds when 200 inits run at
            # once (§3.2.4).
            if self._pf_mailbox is not None:
                yield self._pf_mailbox.acquire()
                try:
                    yield Timeout(
                        spec.vf_admin_negotiation_s * self._jitter.factor(sigma)
                    )
                finally:
                    self._pf_mailbox.release()
            yield Timeout(spec.vf_driver_link_up_s * self._jitter.factor(sigma))
            # Agent assigns MAC and IP to the new interface.
            yield Timeout(spec.agent_ip_assign_s * self._jitter.factor(sigma))
        self.vf_driver_ready = True
        microvm.network_ready.trigger()

    def vdpa_nic_init(self, timer):
        """Bring up the passthrough VF through vDPA (§7 future work).

        The guest runs the *standard virtio-net driver*: no vendor PCI
        bring-up, no PF admin-queue negotiation.  The virtio frontend's
        buffer-posting protocol proactively EPT-faults the rings (a
        1-byte read per page) before the device can write them, so lazy
        zeroing is safe without any vendor-driver modification — the
        property §7 identifies as vDPA's appeal.
        """
        spec = self._spec
        microvm = self._microvm
        sigma = spec.jitter_sigma
        with timer.step("5-vf-driver"):
            yield Timeout(spec.vdpa_virtio_setup_s * self._jitter.factor(sigma))
            # Ring allocation: proactive faults (reads) rather than the
            # vendor driver's explicit zeroing writes.
            ring_gpa = microvm.alloc_guest_range(spec.nic_ring_bytes, "nic-rings")
            microvm.nic_ring_gpa = ring_gpa
            yield from self._kvm.guest_touch_range(
                microvm.vm, ring_gpa, spec.nic_ring_bytes
            )
            yield Timeout(spec.agent_ip_assign_s * self._jitter.factor(sigma))
        self.vf_driver_ready = True
        microvm.network_ready.trigger()

    def virtual_nic_init(self):
        """Bring up a para-virtualized NIC (software-CNI path).

        The virtio-net device needs no passthrough initialization; the
        interface appears quickly and the agent configures it.
        """
        spec = self._spec
        yield Timeout(spec.agent_ip_assign_s * self._jitter.factor(spec.jitter_sigma))
        self.vf_driver_ready = True
        self._microvm.network_ready.trigger()

    # ------------------------------------------------------------------
    # agent readiness polling (§4.2.2)
    # ------------------------------------------------------------------
    def wait_network_ready(self):
        """Agent-side poll loop: check the interface every poll period.

        Models the daemon agent's periodic status check rather than an
        exact wakeup, adding up to one poll interval of latency.
        """
        while not self._microvm.network_ready.triggered:
            yield Timeout(self._spec.agent_poll_interval_s)

    def __repr__(self):
        return (
            f"<GuestKernel {self._microvm.name} booted={self.booted} "
            f"vf_ready={self.vf_driver_ready}>"
        )
