"""The hypervisor (Kata-QEMU) model.

Drives microVM construction in the order the paper's timeline shows
(Fig. 5): VM create -> DMA-map RAM (``1-dma-ram``) -> virtioFS setup
(``2-virtiofs``) -> DMA-map image (``3-dma-image``, skippable per
§4.3.1) -> VFIO device open (``4-vfio-dev``).  Guest boot and VF driver
init are invoked afterwards by the container runtime, which owns the
sync-vs-async decision.

FastIOV touchpoints implemented here:

* ``skip_image_mapping`` — the hypervisor is told the image region's
  name/size up front and falls back to its non-DMA logic for it
  (page-cache backing shared across all microVMs).
* ``zeroing_policy`` — eager / pre-zeroed / decoupled (fastiovd).
* ``use_instant_zeroing_list`` — with decoupled zeroing, hypervisor-
  written pages (ROM; and the image, when it *is* DMA-mapped) are
  registered for instant zeroing before the write.  Disabling this is
  the §4.3.2 "scenario 1" failure injection.
"""

import dataclasses

from repro.oskernel.kvm import AnonBacking, FileBacking, PinnedBacking
from repro.oskernel.vfio import EAGER_ZEROING, ZeroingMode
from repro.sim.core import Timeout
from repro.virt.guest import GuestKernel
from repro.virt.layout import GuestMemoryLayout
from repro.virt.microvm import Microvm
from repro.virt.virtio import VirtioFS

#: Shared host file name for the microVM system image.
MICROVM_IMAGE_FILE = "microvm-image"


@dataclasses.dataclass(frozen=True)
class VirtNetworkPlan:
    """How the microVM's network and guest memory are to be set up."""

    #: Attach an SR-IOV VF with passthrough I/O?
    passthrough: bool = False
    #: The VF to attach (required when passthrough).
    vf: object = None
    #: Zeroing policy for DMA-mapped regions.
    zeroing_policy: object = EAGER_ZEROING
    #: FastIOV §4.3.1: skip DMA mapping of the image region.
    skip_image_mapping: bool = False
    #: FastIOV §4.3.2: protect hypervisor-written pages.  Failure
    #: injection sets this False to reproduce the guest crash.
    use_instant_zeroing_list: bool = True
    #: FastIOV §4.3.2: proactive EPT faults for virtio buffers.
    proactive_virtio_faults: bool = True
    #: §7: drive the passthrough VF with the standard virtio driver
    #: (vDPA) instead of the vendor VF driver.
    vdpa: bool = False
    #: §8 baseline: vIOMMU-style deferred DMA mapping — guest memory is
    #: demand-paged; the IOMMU emulation maps pages when DMA first
    #: targets them.
    deferred_mapping: bool = False

    def __post_init__(self):
        if self.passthrough and self.vf is None:
            raise ValueError("passthrough plan requires a VF")
        if self.vdpa and not self.passthrough:
            raise ValueError("vDPA requires a passthrough VF")
        if self.deferred_mapping and not self.passthrough:
            raise ValueError("deferred mapping requires a passthrough VF")


class Hypervisor:
    """Kata-QEMU: builds and tears down microVMs on one host."""

    def __init__(self, sim, cpu, kvm, vfio, mmu, spec, jitter, fastiovd=None,
                 pf_mailbox=None):
        from repro.sim.sync import Mutex

        self._sim = sim
        self._cpu = cpu
        self._kvm = kvm
        self._vfio = vfio
        self._mmu = mmu
        self._spec = spec
        self._jitter = jitter.fork("hypervisor")
        self._fastiovd = fastiovd
        #: PF admin mailbox, shared with the binding layer: the guest VF
        #: driver negotiates through it during init (§3.2.4).
        self.pf_mailbox = pf_mailbox
        #: virtiofsd spawn/registration is serialized host-wide [42].
        self._virtiofs_mutex = Mutex(sim, name="virtiofsd-mgmt")
        self.vms_created = 0

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------
    def spawn_virtiofsd(self, timer):
        """Spawn the per-VM virtiofsd daemon (runtime-side, pre-VM).

        Registration with the shared daemon-management state is
        serialized host-wide — a software bottleneck the companion
        measurement study [42] documents; it accounts for most of the
        `2-virtiofs` time at concurrency 200.
        """
        spec = self._spec
        with timer.step("2-virtiofs"):
            yield self._virtiofs_mutex.acquire()
            try:
                # The critical section is real work (process spawn,
                # shared-state update): CPU pressure stretches it, which
                # amplifies the queue behind it.
                yield self._cpu.work(
                    spec.virtiofs_lock_hold_s
                    * self._jitter.factor(spec.jitter_sigma)
                )
            finally:
                self._virtiofs_mutex.release()

    def create_microvm(self, name, memory_bytes, plan, timer):
        """Build one microVM ready for guest boot; returns a Microvm."""
        spec = self._spec
        sigma = spec.jitter_sigma
        layout = GuestMemoryLayout.for_vm(spec, memory_bytes)
        microvm = Microvm(self._sim, name, layout, plan)

        with timer.step("vm-create"):
            yield Timeout(spec.vm_create_base_s * self._jitter.factor(sigma))
            yield self._cpu.work(spec.vm_create_cpu_s * self._jitter.factor(sigma))
        microvm.vm = self._kvm.create_vm(name, spec.page_size, pid=microvm.pid)

        # -- RAM region -------------------------------------------------
        if plan.passthrough and plan.deferred_mapping:
            # vIOMMU baseline (§8): the domain exists, but nothing is
            # mapped up front — memory stays demand-paged and the IOMMU
            # emulation maps pages at first DMA (see viommu_map_range).
            microvm.domain = self._vfio.create_domain(name)
            mapping = self._mmu.create_mapping(microvm.pid, "ram", layout.ram_bytes)
            microvm.anon_mappings["ram"] = mapping
            ram_backing = AnonBacking(mapping)
        elif plan.passthrough:
            microvm.domain = self._vfio.create_domain(name)
            with timer.step("1-dma-ram"):
                ram_region = yield from self._vfio.dma_map(
                    microvm.domain,
                    owner=microvm.pid,
                    label="ram",
                    nbytes=layout.ram_bytes,
                    gpa_base=layout.ram_gpa,
                    policy=plan.zeroing_policy,
                )
            microvm.mapped_regions["ram"] = ram_region
            ram_backing = PinnedBacking(ram_region)
        else:
            mapping = self._mmu.create_mapping(microvm.pid, "ram", layout.ram_bytes)
            microvm.anon_mappings["ram"] = mapping
            ram_backing = AnonBacking(mapping)
        yield from self._kvm.register_slot(
            microvm.vm, layout.ram_gpa, ram_backing, "ram"
        )

        # -- ROM load (hypervisor writes BIOS + kernel into RAM head) ---
        with timer.step("rom-load"):
            yield from self._protect_then_write(
                microvm, layout.rom_gpa, layout.rom_bytes, "hypervisor:kernel",
                region=microvm.mapped_regions.get("ram"),
            )

        # -- virtioFS device realization (vhost-user-fs handshake) -------
        # The virtiofsd *daemon* itself was spawned by the runtime
        # before VM creation (see :meth:`spawn_virtiofsd`).
        with timer.step("2-virtiofs"):
            yield Timeout(spec.virtiofs_setup_base_s * self._jitter.factor(sigma))
            yield self._cpu.work(
                spec.virtiofs_setup_cpu_s * self._jitter.factor(sigma)
            )
            microvm.virtiofs = VirtioFS(
                self._sim, self._cpu, self._kvm, spec, microvm,
                proactive_faults=plan.proactive_virtio_faults,
            )

        # -- image region -------------------------------------------------
        if (plan.passthrough and not plan.skip_image_mapping
                and not plan.deferred_mapping):
            with timer.step("3-dma-image"):
                image_region = yield from self._vfio.dma_map(
                    microvm.domain,
                    owner=microvm.pid,
                    label="image",
                    nbytes=layout.image_bytes,
                    gpa_base=layout.image_gpa,
                    policy=plan.zeroing_policy,
                )
            microvm.mapped_regions["image"] = image_region
            image_backing = PinnedBacking(image_region)
            yield from self._kvm.register_slot(
                microvm.vm, layout.image_gpa, image_backing, "image"
            )
            with timer.step("image-load"):
                yield from self._protect_then_write(
                    microvm, layout.image_gpa, layout.image_bytes,
                    "hypervisor:image", region=image_region,
                )
        else:
            # FastIOV's skip (or the non-passthrough path): the image is
            # served from the shared host page cache — no per-VM frames,
            # no zeroing (§4.3.1 "falls back into non-DMA logic").
            cached = self._mmu.open_cached_file(
                MICROVM_IMAGE_FILE, layout.image_bytes,
                content_tag="hypervisor:image",
            )
            image_backing = FileBacking(cached)
            yield from self._kvm.register_slot(
                microvm.vm, layout.image_gpa, image_backing, "image"
            )

        # -- VF attach (VFIO device open + PCIe emulation) ---------------
        if plan.passthrough:
            with timer.step("4-vfio-dev"):
                handle = yield from self._vfio.open_device(
                    plan.vf, opener=microvm.pid
                )
            microvm.vf_handle = handle
            microvm.vf = plan.vf
            plan.vf.assigned_to = name

        microvm.guest = GuestKernel(
            self._sim, self._cpu, self._kvm, spec, self._jitter, microvm,
            pf_mailbox=self.pf_mailbox,
        )
        self.vms_created += 1
        return microvm

    def _protect_then_write(self, microvm, gpa_base, nbytes, tag, region):
        """Hypervisor write with the instant-zeroing-list protocol.

        With decoupled zeroing, the written pages must leave the lazy
        table *before* the write (instant-zeroing list) or the guest's
        first access will zero them and crash.  The injection knob
        ``use_instant_zeroing_list=False`` skips the protection.
        """
        plan = microvm.plan
        decoupled = (
            plan.passthrough
            and plan.zeroing_policy.mode is ZeroingMode.DECOUPLED
            and region is not None
        )
        if decoupled and plan.use_instant_zeroing_list:
            page_size = microvm.layout.page_size
            first = (gpa_base - region.gpa_base) // page_size
            count = -(-nbytes // page_size)
            pages = [
                region.allocation.page_at_index(i)
                for i in range(first, first + count)
            ]
            yield from self._fastiovd.register_instant(microvm.pid, pages)
        # The write itself: load from disk/initrd + memcpy.
        yield self._cpu.work(nbytes / self._spec.guest_memcpy_bytes_per_cpu_s)
        yield from self._kvm.host_write_range(microvm.vm, gpa_base, nbytes, tag)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def destroy_microvm(self, microvm):
        """Release everything the microVM held (container recycled)."""
        if microvm.destroyed:
            raise ValueError(f"{microvm.name}: destroyed twice")
        if microvm.vf_handle is not None and not microvm.vf_handle.closed:
            yield from self._vfio.close_device(microvm.vf_handle)
        if microvm.vf is not None:
            microvm.vf.assigned_to = None
        for region in microvm.mapped_regions.values():
            yield from self._vfio.dma_unmap(region)
        if microvm.domain is not None and microvm.plan.deferred_mapping:
            # vIOMMU: tear down whatever the emulation mapped on demand.
            yield from self._vfio.viommu_unmap_all(microvm.domain)
        for mapping in microvm.anon_mappings.values():
            mapping.free_all()
        if microvm.domain is not None:
            self._vfio.destroy_domain(microvm.name)
        self._kvm.destroy_vm(microvm.vm)
        microvm.destroyed = True

    def __repr__(self):
        return f"<Hypervisor vms_created={self.vms_created}>"
