"""Guest physical memory layout of one microVM.

::

    GPA 0 ──────────────┬──────────────────────────┬──────────────┐
    │ ROM (BIOS+kernel) │ general RAM              │ image region │
    │ hypervisor-written│ guest working memory     │ read-only    │
    └───────────────────┴──────────────────────────┴──────────────┘
    0                   rom_bytes          ram_bytes        +image

The ROM occupies the head of the RAM region (it is part of the DMA-
mapped RAM in the SR-IOV path, which is why FastIOV needs the
instant-zeroing list for it); the image region sits above RAM and is
the candidate for mapping-skip (§4.3.1).  Inside general RAM, the
guest's own allocations (boot working set, NIC rings, app buffers) are
carved out by a bump allocator in :class:`~repro.virt.microvm.Microvm`.
"""

import dataclasses


@dataclasses.dataclass(frozen=True)
class GuestMemoryLayout:
    """GPA map for one microVM."""

    ram_bytes: int
    rom_bytes: int
    image_bytes: int
    page_size: int

    def __post_init__(self):
        for field in ("ram_bytes", "rom_bytes", "image_bytes"):
            value = getattr(self, field)
            if value <= 0 or value % self.page_size != 0:
                raise ValueError(
                    f"{field} ({value}) must be a positive multiple of the "
                    f"page size ({self.page_size})"
                )
        if self.rom_bytes >= self.ram_bytes:
            raise ValueError(
                f"ROM ({self.rom_bytes}) must fit inside RAM ({self.ram_bytes})"
            )

    @classmethod
    def for_vm(cls, spec, ram_bytes):
        """Build the layout for a VM with ``ram_bytes`` of memory."""
        return cls(
            ram_bytes=ram_bytes,
            rom_bytes=min(spec.rom_bytes, ram_bytes // 2),
            image_bytes=spec.image_bytes,
            page_size=spec.page_size,
        )

    # -- region bases -------------------------------------------------
    @property
    def ram_gpa(self):
        return 0

    @property
    def rom_gpa(self):
        return 0  # head of RAM

    @property
    def image_gpa(self):
        return self.ram_bytes

    @property
    def total_bytes(self):
        return self.ram_bytes + self.image_bytes

    @property
    def general_ram_gpa(self):
        """First GPA of RAM usable by the guest (above the ROM)."""
        return self.rom_bytes

    @property
    def general_ram_bytes(self):
        return self.ram_bytes - self.rom_bytes

    def rom_fraction(self):
        """ROM share of RAM — ~9.4% for a 512 MiB VM (§4.3.2)."""
        return self.rom_bytes / self.ram_bytes

    def __repr__(self):
        return (
            f"<GuestMemoryLayout ram={self.ram_bytes >> 20} MiB "
            f"rom={self.rom_bytes >> 20} MiB image={self.image_bytes >> 20} MiB>"
        )
