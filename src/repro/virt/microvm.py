"""The microVM object: identity, layout, guest-side allocator, state.

Ties together the KVM VM, the memory layout, the attached VF (if any),
and the events the container runtime synchronizes on.  Produced by
:meth:`~repro.virt.hypervisor.Hypervisor.create_microvm`.
"""

from repro.sim.sync import SimEvent


class Microvm:
    """One secure container's virtual machine."""

    def __init__(self, sim, name, layout, plan):
        self.sim = sim
        self.name = name
        self.layout = layout
        self.plan = plan
        #: KVM VM handle, set by the hypervisor during creation.
        self.vm = None
        #: IOMMU domain (passthrough only).
        self.domain = None
        #: Mapped DMA regions by label ("ram", "image").
        self.mapped_regions = {}
        #: Anonymous mappings by label (non-passthrough path).
        self.anon_mappings = {}
        #: VFIO device handle of the attached VF, if any.
        self.vf_handle = None
        #: The attached VF (passthrough) or virtual NIC name.
        self.vf = None
        #: virtioFS frontend/backend pair.
        self.virtiofs = None
        #: Guest kernel (set once booted).
        self.guest = None
        #: Triggered once the guest network interface is configured.
        self.network_ready = SimEvent(sim, name=f"{name}.network-ready")
        #: Bump allocator over general RAM for guest-side buffers.
        self._alloc_cursor = layout.general_ram_gpa
        self._alloc_limit = layout.ram_bytes
        self.destroyed = False

    @property
    def pid(self):
        """Host PID standing in for the QEMU process (fastiovd key)."""
        return self.name

    def alloc_guest_range(self, nbytes, purpose):
        """Carve ``nbytes`` (page-rounded) out of general guest RAM."""
        page = self.layout.page_size
        rounded = -(-nbytes // page) * page
        if self._alloc_cursor + rounded > self._alloc_limit:
            raise MemoryError(
                f"{self.name}: guest allocator exhausted allocating "
                f"{rounded} bytes for {purpose!r}"
            )
        base = self._alloc_cursor
        self._alloc_cursor += rounded
        return base

    @property
    def guest_free_bytes(self):
        return self._alloc_limit - self._alloc_cursor

    def __repr__(self):
        return (
            f"<Microvm {self.name} ram={self.layout.ram_bytes >> 20} MiB "
            f"vf={getattr(self.vf, 'bdf', None)}>"
        )
