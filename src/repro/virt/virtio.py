"""virtio / virtioFS: para-virtualized shared-buffer data transfer.

This is the second lazy-zeroing exception of §4.3.2: when the guest
asks virtioFS for a file, the *host-side* backend writes the data into
a guest buffer through host virtual addresses — no EPT fault happens
for that write.  If the buffer's zeroing was deferred and the guest has
never touched it, the guest's subsequent read EPT-faults and fastiovd
would zero the page, destroying the just-delivered file data.

FastIOV's fix, implemented here, is the *proactive EPT fault*: when the
guest posts a buffer address to the vring, the frontend reads the first
byte of each buffer page, forcing the fault (and any deferred zeroing)
to happen *before* the backend writes.  The failure-injection tests run
with ``proactive_faults=False`` and assert the resulting
:class:`~repro.oskernel.errors.GuestCrash`.
"""

from repro.sim.core import Timeout


class VirtioFS:
    """One microVM's shared filesystem (virtio frontend + host backend)."""

    def __init__(self, sim, cpu, kvm, spec, microvm, proactive_faults=True):
        self._sim = sim
        self._cpu = cpu
        self._kvm = kvm
        self._spec = spec
        self._microvm = microvm
        self.proactive_faults = proactive_faults
        #: The vring lives in guest RAM; one page is ample for the model.
        self.vring_gpa = microvm.alloc_guest_range(
            microvm.layout.page_size, "virtiofs-vring"
        )
        self.bytes_transferred = 0
        self.requests = 0

    def guest_read_file(self, name, nbytes, dest_gpa=None, verify=True):
        """Guest-side file read through the shared filesystem.

        Models the full §4.3.2 sequence: post descriptor to the vring,
        (proactively fault the buffer pages), backend writes the data
        host-side, guest reads it back.  Returns the destination GPA.
        """
        if nbytes <= 0:
            raise ValueError(f"file read length must be positive, got {nbytes}")
        microvm = self._microvm
        vm = microvm.vm
        if dest_gpa is None:
            dest_gpa = microvm.alloc_guest_range(nbytes, f"virtiofs-buf:{name}")

        # 1. Guest writes the buffer address into the vring (this write
        #    itself EPT-faults the vring page the first time).
        yield from self._kvm.guest_access(
            vm, self.vring_gpa, write=True, tag=f"{microvm.name}:vring"
        )

        # 2. Proactive EPT faults on every buffer page (FastIOV, §4.3.2):
        #    a 1-byte read per page forces deferred zeroing to complete
        #    before the backend writes.
        if self.proactive_faults:
            yield from self._kvm.guest_touch_range(vm, dest_gpa, nbytes)

        # 3. Host backend fetches the descriptor and writes file data
        #    into the shared buffer through host virtual addresses.
        transfer_cpu = nbytes / self._spec.virtiofs_bytes_per_cpu_s
        yield self._cpu.work(transfer_cpu)
        yield from self._kvm.host_write_range(
            vm, dest_gpa, nbytes, tag=f"virtiofs:{name}"
        )

        # 4. Backend notifies; guest reads the data.
        yield Timeout(self._spec.ept_fault_s)  # completion interrupt relay
        if verify:
            yield from self._kvm.guest_touch_range(
                vm, dest_gpa, nbytes, expect=f"virtiofs:{name}", verify=True
            )
        else:
            yield from self._kvm.guest_touch_range(vm, dest_gpa, nbytes)

        self.bytes_transferred += nbytes
        self.requests += 1
        return dest_gpa

    def __repr__(self):
        return (
            f"<VirtioFS {self._microvm.name} requests={self.requests} "
            f"bytes={self.bytes_transferred}>"
        )
