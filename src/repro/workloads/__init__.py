"""Workloads: SeBS-style serverless apps, data path, memory benchmark.

The §6.6 evaluation runs four representative serverless tasks from the
SeBS benchmark suite, each of which downloads its input from a storage
server through the container's network before computing.  This package
models those apps (with small *real* reference kernels for the compute
phases), the passthrough vs software data paths, and the Tinymembench
memory micro-benchmark used in §6.5.
"""

from repro.workloads.datapath import download_from_storage
from repro.workloads.generator import ArrivalPattern
from repro.workloads.membench import Tinymembench
from repro.workloads.serverless import (
    APP_CATALOG,
    ServerlessApp,
    make_app,
)

__all__ = [
    "APP_CATALOG",
    "ArrivalPattern",
    "ServerlessApp",
    "Tinymembench",
    "download_from_storage",
    "make_app",
]
