"""Network data paths: how bytes reach the guest.

Two paths, matching the §6.1 testbed's application/storage server pair:

* **Passthrough (SR-IOV VF)** — the storage server's bytes cross the
  fair-shared inter-server link, then the NIC's DMA engine writes them
  straight into the guest's RX rings through the IOMMU; the guest
  driver consumes them.  Host CPU involvement is negligible — this is
  the data-plane advantage that motivates SR-IOV.
* **Software (ipvtap / virtio-net)** — bytes cross the same link but
  are then copied through the host network stack and the virtio
  backend, charging host CPU per byte (§6.4's "much worse data plane").
"""

from repro.sim.core import Timeout


def download_from_storage(container, host, nbytes, tag=None):
    """Transfer ``nbytes`` from the storage server into the guest.

    Generator; picks the data path from the container's attachment.
    The inter-server link is processor-shared among concurrent
    transfers, so 200 simultaneous downloads divide the 25 GbE wire.
    """
    if nbytes <= 0:
        raise ValueError(f"download size must be positive, got {nbytes}")
    attachment = container.attachment
    if attachment is None or not attachment.has_network:
        raise RuntimeError(f"{container.name}: download without a network")
    spec = host.spec
    tag = tag if tag is not None else f"storage:{container.name}"
    # Wire time on the shared storage link.
    wire_seconds = spec.bytes_over_network_s(nbytes, spec.storage_bandwidth_gbps)
    yield host.storage_link.work(wire_seconds)

    microvm = container.microvm
    if attachment.vf is not None:
        yield from _passthrough_receive(host, microvm, nbytes, tag)
    else:
        yield from _software_receive(host, microvm, nbytes, tag)
    return tag


def _passthrough_receive(host, microvm, nbytes, tag):
    """NIC DMA into the RX rings, ring-buffer chunk at a time."""
    spec = host.spec
    ring_gpa = getattr(microvm, "nic_ring_gpa", None)
    if ring_gpa is None:
        raise RuntimeError(
            f"{microvm.name}: VF driver not initialized (no RX rings)"
        )
    ring_bytes = spec.nic_ring_bytes
    remaining = nbytes
    while remaining > 0:
        chunk = min(remaining, ring_bytes)
        if microvm.plan.deferred_mapping:
            # vIOMMU baseline: the mapping happens *here*, on the data
            # path, the first time DMA targets these pages (§8).
            yield from host.vfio.viommu_map_range(
                microvm.vm, microvm.domain, ring_gpa, chunk
            )
        host.nic.dma.write(microvm.domain, ring_gpa, chunk, writer_tag=tag)
        # Completion interrupt relayed through the hypervisor.
        yield Timeout(spec.ept_fault_s)
        # Guest consumes the chunk (ring pages are already EPT-resident:
        # the driver scrubbed them at init).
        yield from host.kvm.guest_touch_range(
            microvm.vm, ring_gpa, chunk, expect=tag, verify=True
        )
        remaining -= chunk


def _software_receive(host, microvm, nbytes, tag):
    """Host-stack + virtio-net copy path (CPU-bound)."""
    spec = host.spec
    yield host.cpu.work(nbytes / spec.ipvtap_bytes_per_cpu_s)
    buf_bytes = min(nbytes, spec.nic_ring_bytes)
    buf_gpa = _software_buffer(microvm, buf_bytes)
    remaining = nbytes
    while remaining > 0:
        chunk = min(remaining, buf_bytes)
        yield from host.kvm.host_write_range(microvm.vm, buf_gpa, chunk, tag)
        yield Timeout(spec.ept_fault_s)
        yield from host.kvm.guest_touch_range(
            microvm.vm, buf_gpa, chunk, expect=tag, verify=True
        )
        remaining -= chunk


def _software_buffer(microvm, nbytes):
    """One reusable socket buffer per microVM (allocated lazily)."""
    existing = getattr(microvm, "_softnet_buf", None)
    if existing is not None and existing[1] >= nbytes:
        return existing[0]
    gpa = microvm.alloc_guest_range(nbytes, "softnet-buffer")
    microvm._softnet_buf = (gpa, nbytes)
    return gpa


def upload_to_storage(container, host, nbytes):
    """Send results back (small; wire time + per-path CPU)."""
    if nbytes <= 0:
        return
    spec = host.spec
    wire_seconds = spec.bytes_over_network_s(nbytes, spec.storage_bandwidth_gbps)
    yield host.storage_link.work(wire_seconds)
    if container.attachment.vf is None:
        yield host.cpu.work(nbytes / spec.ipvtap_bytes_per_cpu_s)
