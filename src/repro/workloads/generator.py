"""Invocation arrival patterns for concurrent-startup experiments.

The paper's startup tests use a simultaneous burst (over 200 requests
"arrive nearly simultaneously at one server" per the Alibaba serverless
statistics [35]); this module also provides uniform spacing and Poisson
arrivals for the load-pattern ablation benches.
"""


class ArrivalPattern:
    """Produces per-container arrival offsets (seconds from t=0)."""

    def __init__(self, kind="burst", rate_per_s=None, spacing_s=None, jitter=None):
        """Args:
        kind: "burst" (all at t=0), "uniform" (fixed spacing), or
            "poisson" (exponential inter-arrivals).
        rate_per_s: Arrival rate for "poisson".
        spacing_s: Gap for "uniform".
        jitter: :class:`~repro.sim.rng.Jitter` for "poisson" draws.
        """
        if kind not in ("burst", "uniform", "poisson"):
            raise ValueError(f"unknown arrival kind {kind!r}")
        if kind == "uniform" and (spacing_s is None or spacing_s < 0):
            raise ValueError("uniform arrivals need spacing_s >= 0")
        if kind == "poisson" and (rate_per_s is None or rate_per_s <= 0
                                  or jitter is None):
            raise ValueError("poisson arrivals need rate_per_s > 0 and jitter")
        self.kind = kind
        self.rate_per_s = rate_per_s
        self.spacing_s = spacing_s
        self._jitter = jitter

    def offsets(self, count):
        """Arrival offsets for ``count`` invocations, non-decreasing."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if self.kind == "burst":
            return [0.0] * count
        if self.kind == "uniform":
            return [index * self.spacing_s for index in range(count)]
        offsets = []
        now = 0.0
        for _ in range(count):
            now += self._jitter.expovariate(self.rate_per_s)
            offsets.append(now)
        return offsets

    def __repr__(self):
        return f"<ArrivalPattern {self.kind}>"
