"""Tinymembench model (§6.5): guest memory throughput and latency.

Reproduces the paper's memory-performance check: inside a started
secure container, measure (a) memcpy throughput on 2048-byte blocks for
5 seconds x 10 repeats and (b) random-byte read latency over 10 million
reads.  The quantity under test is FastIOV's EPT-fault interception:
the first touch of each working-set page costs an extra fastiovd lookup
(plus deferred zeroing if still pending), and *nothing afterwards* —
so steady-state numbers degrade by well under 1%.
"""

from repro.hw.memory import MIB


class BenchResult:
    """Measured throughput/latency plus fault accounting."""

    def __init__(self, throughput_bytes_per_s, latency_s, faults, elapsed_s):
        self.throughput_bytes_per_s = throughput_bytes_per_s
        self.latency_s = latency_s
        self.faults = faults
        self.elapsed_s = elapsed_s

    def __repr__(self):
        return (
            f"<BenchResult {self.throughput_bytes_per_s / MIB:.0f} MiB/s "
            f"{self.latency_s * 1e9:.1f} ns faults={self.faults}>"
        )


class Tinymembench:
    """The in-guest memory micro-benchmark."""

    def __init__(self, host, container, working_set_bytes=64 * MIB):
        self._host = host
        self._container = container
        self.working_set_bytes = working_set_bytes
        self.result = None

    def run(self, copy_seconds=5.0, repeats=10, random_reads=10_000_000):
        """Execute the benchmark inside the guest (generator).

        Sets ``self.result``.  Both phases share one working set, so
        page faults (and any lazy zeroing) are paid exactly once — the
        mechanism behind the paper's <1% claim.
        """
        host = self._host
        spec = host.spec
        microvm = self._container.microvm
        vm = microvm.vm
        ws = self.working_set_bytes
        heap_gpa = microvm.alloc_guest_range(ws, "membench")

        t_start = host.sim.now
        faults_before = vm.ept.fault_count

        # --- Phase 1: memcpy throughput --------------------------------
        # The benchmark streams over the working set; the first pass
        # faults every page in (with deferred zeroing if pending), and
        # every later pass runs at the guest's native copy rate.
        copied_bytes = 0
        for _repeat in range(repeats):
            if _repeat == 0:
                yield from host.kvm.guest_touch_range(
                    vm, heap_gpa, ws, write=True,
                    tag=f"{microvm.name}:membench",
                )
            yield host.cpu.work(copy_seconds)
            copied_bytes += int(copy_seconds * spec.guest_memcpy_bytes_per_cpu_s)
        throughput_elapsed = host.sim.now - t_start
        throughput = copied_bytes / throughput_elapsed

        # --- Phase 2: random-read latency -------------------------------
        t_lat = host.sim.now
        yield host.cpu.work(random_reads * spec.guest_mem_latency_s)
        latency = (host.sim.now - t_lat) / random_reads

        self.result = BenchResult(
            throughput_bytes_per_s=throughput,
            latency_s=latency,
            faults=vm.ept.fault_count - faults_before,
            elapsed_s=host.sim.now - t_start,
        )
        return self.result
