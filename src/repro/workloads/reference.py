"""Real miniature kernels behind the four serverless apps.

These run actual computations on synthetic inputs (pure Python + the
standard library), so the app catalog is grounded in executable code
rather than bare constants.  They are used by the examples and by tests
that check the apps' *relative* compute ordering matches the catalog's
calibrated CPU budgets (image < compression < scientific < inference).
"""

import zlib
from collections import deque


def generate_input(name, seed=0):
    """Synthetic input for an app's reference kernel (small scale)."""
    if name == "image":
        # A 256x256 grayscale "image" as a flat bytearray.
        return bytearray(((x * 31 + y * 17 + seed) % 251)
                         for x in range(256) for y in range(256))
    if name == "compression":
        # Compressible text-like data, 256 KiB.
        unit = b"the quick brown fox %d " % seed
        return (unit * (256 * 1024 // len(unit) + 1))[: 256 * 1024]
    if name == "scientific":
        # A 10,000-node ring-with-chords graph as an adjacency list.
        n = 10_000
        adjacency = [[] for _ in range(n)]
        for node in range(n):
            for neighbour in ((node + 1) % n, (node + 7 + seed) % n):
                adjacency[node].append(neighbour)
                adjacency[neighbour].append(node)
        return adjacency
    if name == "inference":
        # Two small matrices standing in for a model layer + activations.
        dim = 64
        a = [[(i * j + seed) % 17 / 16.0 for j in range(dim)] for i in range(dim)]
        b = [[(i + j * 3 + seed) % 23 / 22.0 for j in range(dim)] for i in range(dim)]
        return a, b
    raise KeyError(f"unknown app {name!r}")


def run_image(data):
    """Resize to a 100x100 thumbnail by box-averaging (like SeBS Image)."""
    src = 256
    dst = 100
    thumbnail = []
    scale = src / dst
    for ty in range(dst):
        row = []
        for tx in range(dst):
            x0, y0 = int(tx * scale), int(ty * scale)
            x1, y1 = int((tx + 1) * scale), int((ty + 1) * scale)
            total = 0
            count = 0
            for y in range(y0, max(y1, y0 + 1)):
                base = y * src
                for x in range(x0, max(x1, x0 + 1)):
                    total += data[base + x]
                    count += 1
            row.append(total // count)
        thumbnail.append(row)
    return thumbnail


def run_compression(data):
    """Deflate the input (like SeBS Compression)."""
    return zlib.compress(bytes(data), level=6)


def run_scientific(adjacency):
    """Breadth-first search from node 0 (like SeBS Scientific/BFS)."""
    n = len(adjacency)
    distance = [-1] * n
    distance[0] = 0
    queue = deque([0])
    while queue:
        node = queue.popleft()
        for neighbour in adjacency[node]:
            if distance[neighbour] == -1:
                distance[neighbour] = distance[node] + 1
                queue.append(neighbour)
    return distance


def run_inference(matrices):
    """A dense layer forward pass + argmax (ResNet-50 stand-in)."""
    a, b = matrices
    dim = len(a)
    out = [[0.0] * dim for _ in range(dim)]
    for i in range(dim):
        row = a[i]
        for k in range(dim):
            scale = row[k]
            if scale == 0.0:
                continue
            brow = b[k]
            orow = out[i]
            for j in range(dim):
                orow[j] += scale * brow[j]
    scores = [sum(row) for row in out]
    return scores.index(max(scores))


REFERENCE_KERNELS = {
    "image": run_image,
    "compression": run_compression,
    "scientific": run_scientific,
    "inference": run_inference,
}


def execute_reference(name, seed=0):
    """Generate input and run the real kernel for ``name``."""
    return REFERENCE_KERNELS[name](generate_input(name, seed))
