"""SeBS-style serverless applications (§6.6).

Four representative tasks, as in the paper:

=========== ================================================ =========
app          what it does                                     profile
=========== ================================================ =========
image        resize an input image to a 100x100 thumbnail     short
compression  zip a 9.7 MB input file                          medium
scientific   BFS over a 100,000-node graph                    longer
inference    ResNet-50 ImageNet classification                longest
=========== ================================================ =========

Each app downloads its input from the storage server through the
container's VF (or software NIC), touches its working set (exercising
lazy zeroing), and burns a calibrated amount of CPU.  Execution time
scales with the container's vCPU share (0.5 vCPU per 512 MiB, §3.1) up
to the app's parallelism, which is what makes Fig. 16 e–h's
resource-sweep behaviour emerge: parallel apps get faster with bigger
containers while the single-threaded ones stay flat.

For credibility (and for the examples), each app also carries a *real*
miniature reference kernel in :mod:`repro.workloads.reference` that
performs the actual computation on synthetic data.
"""

from repro.hw.memory import GIB, MIB
from repro.workloads.datapath import download_from_storage, upload_to_storage


class ServerlessApp:
    """One serverless task."""

    def __init__(self, name, input_bytes, compute_cpu_s, footprint_bytes,
                 output_bytes=64 * 1024, parallelism=1):
        self.name = name
        self.input_bytes = input_bytes
        self.compute_cpu_s = compute_cpu_s
        self.footprint_bytes = footprint_bytes
        self.output_bytes = output_bytes
        self.parallelism = parallelism

    def speedup(self, memory_bytes):
        """Effective compute speedup from the container's vCPU share."""
        vcpus = memory_bytes / GIB * 2  # 0.5 vCPU per 512 MiB
        return min(self.parallelism, max(1.0, vcpus))

    def run(self, container, host):
        """Execute inside the container (generator).

        Download -> touch working set -> compute -> upload.  The
        working-set touches are real guest memory writes, so with
        FastIOV they race the background zeroing scanner exactly as the
        design intends.
        """
        microvm = container.microvm
        yield from download_from_storage(
            container, host, self.input_bytes, tag=f"input:{self.name}"
        )
        footprint = min(
            self.footprint_bytes,
            max(microvm.layout.page_size,
                microvm.guest_free_bytes - 4 * MIB),
        )
        heap_gpa = microvm.alloc_guest_range(footprint, f"{self.name}-heap")
        yield from host.kvm.guest_touch_range(
            microvm.vm, heap_gpa, footprint,
            write=True, tag=f"{microvm.name}:{self.name}",
        )
        effective = self.compute_cpu_s / self.speedup(container.memory_bytes)
        yield host.cpu.work(effective)
        yield from upload_to_storage(container, host, self.output_bytes)

    def __repr__(self):
        return (
            f"<ServerlessApp {self.name} input={self.input_bytes >> 10} KiB "
            f"cpu={self.compute_cpu_s}s>"
        )


#: §6.6's four applications.  Input sizes follow the paper where given
#: (9.7 MB compression input); compute budgets are calibrated so task
#: completion times order and spread like Fig. 15.
APP_CATALOG = {
    "image": dict(
        input_bytes=int(1.5 * MIB), compute_cpu_s=0.10,
        footprint_bytes=24 * MIB, parallelism=1,
    ),
    "compression": dict(
        input_bytes=int(9.7 * MIB), compute_cpu_s=0.55,
        footprint_bytes=48 * MIB, parallelism=1,
    ),
    "scientific": dict(
        input_bytes=6 * MIB, compute_cpu_s=1.3,
        footprint_bytes=96 * MIB, parallelism=2,
    ),
    "inference": dict(
        input_bytes=100 * MIB, compute_cpu_s=2.4,
        footprint_bytes=192 * MIB, parallelism=4,
    ),
}


def make_app(name):
    """Instantiate one of the §6.6 applications by name."""
    try:
        params = APP_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; available: {sorted(APP_CATALOG)}"
        ) from None
    return ServerlessApp(name, **params)
