"""Shared test fixtures: a small simulated host rig.

The rig wires together the layers the way
:class:`repro.core.host.Host` does, but at reduced scale (small memory,
no jitter) so unit tests are fast and exactly deterministic.
"""

import pytest

from repro.hw.iommu import IOMMU
from repro.hw.memory import MIB, PhysicalMemory
from repro.hw.nic import SriovNic
from repro.hw.pci import PciTopology
from repro.oskernel.binding import DriverRegistry
from repro.oskernel.cgroup import CgroupManager
from repro.oskernel.fastiovd import Fastiovd
from repro.oskernel.hostnet import HostNetworkStack
from repro.oskernel.kvm import KVM
from repro.oskernel.locks import CoarseLockPolicy, HierarchicalLockPolicy
from repro.oskernel.mmu import HostMMU
from repro.oskernel.vfio import VFIO_DRIVER_NAME, VfioDriver
from repro.sim.core import Simulator
from repro.sim.cpu import FairShareCPU
from repro.sim.rng import Jitter
from repro.spec import HostSpec


class KernelRig:
    """A miniature host: every kernel module over shared hardware."""

    def __init__(self, spec=None, lock_policy="coarse", vf_count=8,
                 with_fastiovd=False, scanner=True):
        self.spec = spec or HostSpec(
            memory_bytes=512 * MIB,
            page_size=1 * MIB,
            jitter_sigma=0.0,
        )
        self.sim = Simulator()
        self.cpu = FairShareCPU(self.sim, cores=self.spec.cores)
        self.memory = PhysicalMemory(self.spec.memory_bytes, self.spec.page_size)
        self.iommu = IOMMU()
        self.topology = PciTopology()
        self.topology.add_bus(0x3B)
        self.nic = SriovNic(
            model=self.spec.nic_model,
            max_vfs=self.spec.nic_max_vfs,
            bandwidth_gbps=self.spec.nic_bandwidth_gbps,
            topology=self.topology,
            bus_number=0x3B,
            pf_bdf="3b:00.0",
        )
        self.vfs = self.nic.pf.create_vfs(vf_count, self.topology, 0x3B)
        self.jitter = Jitter(seed=7)
        factory = (
            CoarseLockPolicy if lock_policy == "coarse" else HierarchicalLockPolicy
        )
        self.fastiovd = (
            Fastiovd(self.sim, self.cpu, self.spec, start_scanner=scanner)
            if with_fastiovd
            else None
        )
        self.vfio = VfioDriver(
            self.sim,
            self.cpu,
            self.memory,
            self.iommu,
            self.spec,
            lock_policy_factory=factory,
            jitter=self.jitter,
            fastiovd=self.fastiovd,
        )
        self.kvm = KVM(self.sim, self.cpu, self.spec, fastiovd=self.fastiovd)
        self.mmu = HostMMU(self.sim, self.cpu, self.memory, self.spec)
        self.binding = DriverRegistry(self.sim, self.spec, self.jitter, self.vfio)
        self.cgroups = CgroupManager(self.sim, self.spec, self.jitter)
        self.hostnet = HostNetworkStack(self.sim, self.spec, self.jitter)
        from repro.virt.hypervisor import Hypervisor

        self.hypervisor = Hypervisor(
            self.sim, self.cpu, self.kvm, self.vfio, self.mmu,
            self.spec, self.jitter, fastiovd=self.fastiovd,
        )

    def bind_all_vfs_to_vfio(self):
        """Pre-bind every VF to vfio-pci instantly (boot-time setup)."""
        for vf in self.vfs:
            vf.driver = VFIO_DRIVER_NAME
            self.vfio.register_device(vf)

    def run(self, **kwargs):
        self.sim.run(**kwargs)
        return self.sim.now


@pytest.fixture
def rig():
    r = KernelRig()
    r.bind_all_vfs_to_vfio()
    return r


@pytest.fixture
def rig_hier():
    r = KernelRig(lock_policy="hierarchical")
    r.bind_all_vfs_to_vfio()
    return r


@pytest.fixture
def rig_fastiovd():
    r = KernelRig(lock_policy="hierarchical", with_fastiovd=True)
    r.bind_all_vfs_to_vfio()
    return r
