"""The retained heap-based future-event scheduler.

This is the pre-timing-wheel engine of ``repro.sim.core``, kept in-tree
as the *oracle* for the differential property tests
(``test_timing_wheel_differential.py``) and as the baseline the
timer-dense micro-benchmark in ``benchmarks/perf_report.py`` compares
against.

It subclasses :class:`repro.sim.core.Simulator` and overrides only the
future-event-set hooks (``_insert_future`` / ``_cancel_entry`` /
``_next_when`` / ``_pop_cohort``), so the dispatch loop, the ready
ring, process semantics, the struct-of-arrays event pool, and the
public API are shared with the real engine — any ordering difference
between the two is therefore a difference between the binary heap and
the timing wheel, which is exactly what the differential tests probe.

Events are the same pool handles the wheel uses (allocated with the
shared ``_alloc_entry``); only their *placement* differs — one global
``(when, seq, handle)`` heap instead of buckets.  ``Timer`` handles are
therefore engine-agnostic, and the pool-recycling / stale-handle
semantics are exercised identically by both engines.

Cancellation is the classic heapq recipe (lazy deletion: tombstone the
event in place, reap at pop), which also keeps the micro-benchmark
comparison honest — the heap engine is given the same O(1) ``cancel``
the wheel has, and still loses on the O(log n) inserts over a set
bloated with dead timers.
"""

from heapq import heappop, heappush

from repro.sim.core import Simulator


class ReferenceHeapSimulator(Simulator):
    """Drop-in ``Simulator`` whose future-event set is a binary heap."""

    def __init__(self, bucket_width=None):
        # bucket_width is accepted (and ignored) so factories can build
        # either engine with the same arguments.
        if bucket_width is None:
            super().__init__()
        else:
            super().__init__(bucket_width=bucket_width)
        self._heap = []

    def _insert_future(self, when, seq, callback, args):
        handle = self._alloc_entry(when, seq, callback, args)
        heappush(self._heap, (when, seq, handle))
        self._future_live += 1
        return handle

    def _cancel_entry(self, handle):
        self._ecb[handle] = None
        self._eargs[handle] = None
        self._future_live -= 1
        self._cancelled_unreaped += 1
        self._timers_cancelled += 1

    def _next_when(self):
        heap = self._heap
        ecb = self._ecb
        free = self._free
        while heap and ecb[heap[0][2]] is None:
            # The heap tuple held the handle's one reference.
            free.append(heappop(heap)[2])
            self._cancelled_unreaped -= 1
        if not heap:
            return None
        return heap[0][0]

    def _pop_cohort(self, when):
        heap = self._heap
        ready = self._ready
        ecb = self._ecb
        eargs = self._eargs
        free = self._free
        live = 0
        while heap and heap[0][0] == when:
            handle = heappop(heap)[2]
            callback = ecb[handle]
            if callback is None:
                self._cancelled_unreaped -= 1
            else:
                ready.append((callback, eargs[handle]))
                live += 1
                # Tombstone the consumed event so a stale Timer handle
                # on a fired event is a no-op (matches the wheel).
                ecb[handle] = None
            eargs[handle] = None
            free.append(handle)
        self._future_live -= live

    def wheel_stats(self):
        return {
            "engine": "reference-heap",
            "heap_len": len(self._heap),
            "timers_cancelled": self._timers_cancelled,
            "cancelled_unreaped": self._cancelled_unreaped,
            "pending_events": self.pending_events,
            "events_dispatched": self.events_dispatched,
        }
