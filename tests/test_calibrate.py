"""Tests for the calibration harness."""

from repro.experiments.calibrate import ANCHORS, main, measure


def test_measure_returns_one_value_per_anchor():
    measured, results = measure(concurrency=5)
    assert len(measured) == len(ANCHORS)
    assert set(results) == {"vanilla", "no-net", "fastiov"}
    # All anchor values parse as numbers (strip the % where present).
    for value in measured:
        float(value.rstrip("%"))


def test_cli_prints_anchor_table(capsys):
    assert main(["--concurrency", "5"]) == 0
    out = capsys.readouterr().out
    assert "Calibration anchors" in out
    assert "vfio_bus_scan_per_device_s" in out
    assert "4-vfio-dev" in out
