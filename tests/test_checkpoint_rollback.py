"""Fork-checkpoint rollback and packed wire format (repro.cluster).

The contract under test: copy-on-write fork checkpoints
(:mod:`repro.cluster.checkpoint`) and the struct-packed wire framing
(:mod:`repro.cluster.wire`) are wall-clock optimizations only.  Every
optimistic run — checkpointed, full-replay fallback, spawn-context,
adversarial rollback storm — must come back byte-identical to the
conservative single-shard run, and the journal-truncation machinery
must never drop or double-apply a committed teardown delta (the
``free_vfs_total`` invariant plus byte-identity are the oracle).
"""

import json
import multiprocessing

import pytest

from repro.cluster import cluster_arrivals, run_sharded_cluster
from repro.cluster import wire
from repro.cluster.checkpoint import (
    MIN_ADAPTIVE_INTERVAL,
    ForkCheckpointer,
    fork_checkpoints_supported,
)
from repro.spec import PAPER_TESTBED

ADVERSARIAL_ENV = "REPRO_OPTIMISTIC_ADVERSARIAL_SAFE"


def _bytes(summary):
    return json.dumps(summary, sort_keys=True)


# ----------------------------------------------------------------------
# Packed wire format: every frame round-trips to the exact tuple
# ----------------------------------------------------------------------
def test_wire_step_round_trips_exactly():
    batches = {
        0: [(0, 0.0, 3), (7, 0.12890625, 0)],
        2: [(1, 1.5e-9, 5)],
    }
    message = ("step", 0.25, 0.5, 1.75, batches)
    payload = wire.encode(message)
    assert payload[:1] == b"S"
    assert wire.decode(payload) == message


def test_wire_submit_and_run_until_round_trip():
    batches = {1: [(4, 2.25, 9)], 3: []}
    assert wire.decode(wire.encode(("submit", batches))) == (
        "submit", batches
    )
    assert wire.decode(wire.encode(("run_until", 3.0625))) == (
        "run_until", 3.0625
    )


def test_wire_delta_reply_and_ack_round_trip():
    deltas = [(0.001953125, 2), (17.5, 0), (17.5, 11)]
    payload = wire.encode(("ok", deltas))
    assert payload[:1] == b"D"
    assert wire.decode(payload) == ("ok", deltas)
    ack = wire.encode(("ok", None))
    assert ack == b"K"
    assert wire.decode(ack) == ("ok", None)
    # Empty delta list is still a packed frame, not pickle.
    empty = wire.encode(("ok", []))
    assert empty[:1] == b"D"
    assert wire.decode(empty) == ("ok", [])


def test_wire_floats_survive_without_rounding():
    """Doubles round-trip bit-exactly — the byte-identity gates depend
    on the wire never perturbing a single timestamp."""
    awkward = [0.1, 1 / 3, 2.0 ** -52, 1e300, 123456.789012345]
    message = ("ok", [(value, index) for index, value in enumerate(awkward)])
    decoded = wire.decode(wire.encode(message))
    for (got, _), expected in zip(decoded[1], awkward):
        assert got == expected  # exact, not approx


def test_wire_cold_messages_fall_back_to_pickle():
    for message in (("finish", 12.5), ("stop",), ("checkpoint",),
                    ("resume", 3.5), ("error", "boom"),
                    ("ok", {"not": "a delta list"}),
                    ("ok", [(1.0, 2), (3.0,)])):  # ragged -> not a D frame
        payload = wire.encode(message)
        assert payload[:1] == b"P"
        assert wire.decode(payload) == message


def test_wire_send_recv_over_a_real_pipe():
    parent, child = multiprocessing.Pipe()
    try:
        wire.send(parent, ("step", 0.0, 0.5, 2.5, {0: [(0, 0.0, 1)]}))
        assert wire.recv(child) == ("step", 0.0, 0.5, 2.5, {0: [(0, 0.0, 1)]})
        wire.send(child, ("ok", [(0.25, 1)]))
        assert wire.recv(parent) == ("ok", [(0.25, 1)])
    finally:
        parent.close()
        child.close()


def test_wire_rejects_unknown_tags():
    with pytest.raises(ValueError):
        wire.decode(b"Zjunk")


def test_wire_load_digest_round_trips_exactly():
    digest = [(0, 3), (7, 1), (11, 128)]
    payload = wire.encode(("loads", digest))
    assert payload[:1] == b"L"
    assert wire.decode(payload) == ("loads", digest)
    empty = wire.encode(("loads", []))
    assert empty[:1] == b"L"
    assert wire.decode(empty) == ("loads", [])


def test_wire_digest_helpers_summarize_and_merge():
    deltas = [(0.5, 3), (0.75, 1), (1.0, 3), (1.5, 3)]
    assert wire.digest_deltas(deltas) == [(1, 1), (3, 3)]
    assert wire.digest_deltas([]) == []
    merged = wire.merge_digests([[(1, 1), (3, 3)], [(0, 2), (3, 1)], []])
    assert merged == [(0, 2), (1, 1), (3, 4)]


def _pipe_round_trip(messages):
    """Round-trip each message over a real pipe; returns what arrived.

    Frames past the OS pipe buffer (64 KiB on Linux) block the writer
    until a reader drains them, so the send runs on a thread — the
    overlap a real coordinator/worker pair has for free.
    """
    import threading

    received = []
    parent, child = multiprocessing.Pipe()
    try:
        for message in messages:
            writer = threading.Thread(
                target=wire.send, args=(parent, message)
            )
            writer.start()
            try:
                received.append(wire.recv(child))
            finally:
                writer.join(timeout=10)
            assert not writer.is_alive()
    finally:
        parent.close()
        child.close()
    return received


def test_wire_large_frames_round_trip_over_a_real_pipe():
    """Frames past 64 KiB exercise multiprocessing's large-payload
    path (a length-prefixed second write on POSIX pipes); the packed
    arrays must come back intact on every hot frame shape."""
    batch = [(index, index * 0.5, index % 997) for index in range(6000)]
    messages = [
        ("step", 0.0, 0.5, 2.5, {0: batch, 1: batch}),
        ("ok", [(index * 0.25, index % 991) for index in range(9000)]),
        ("loads", [(host, host % 7 + 1) for host in range(9000)]),
    ]
    for message in messages:
        assert len(wire.encode(message)) > 64 * 1024
    assert _pipe_round_trip(messages) == messages


def test_wire_pickle_fallback_carries_non_ascii_and_nested_payloads():
    """The one-byte-tag fallback ``P`` must be transparent to anything
    picklable — unicode well outside ASCII, deep nesting, bytes — and
    must survive a real pipe, large payloads included."""
    messages = [
        ("error", "champs-élysées → 京都 → Ωμέγα\n" + "traceé " * 10),
        ("ok", {"nested": {"résumé": ["naïve", ("tuple", b"\x00\xff")],
                           "depth": [{"k": [1, 2, {"deep": "végétal"}]}]}}),
        ("finish", float("inf")),
        ("error", "🔥" * 30000),  # multi-byte runes past 64 KiB encoded
    ]
    for message in messages:
        payload = wire.encode(message)
        assert payload[:1] == b"P"
        assert wire.decode(payload) == message
    assert _pipe_round_trip(messages) == messages


# ----------------------------------------------------------------------
# ForkCheckpointer cadence (no forking: gated states never capture)
# ----------------------------------------------------------------------
class _FakeState:
    def __init__(self, window=0, safe=False, rollbacks=1):
        self.window = window
        self._safe = safe
        self.marked = 0
        self.stats = {"rollbacks": rollbacks}

    def checkpointable(self):
        return self._safe

    def mark_checkpoint(self):
        self.marked += 1


def test_checkpointer_cadence_respects_explicit_interval():
    states = {0: _FakeState(safe=False)}
    ckpt = ForkCheckpointer(states, interval=3)
    # Not due yet: after_step returns before even asking the states.
    assert ckpt.after_step() is None
    assert ckpt.after_step() is None
    # Due, but the state is not commit-safe -> no capture, no reset.
    assert ckpt.after_step() is None
    assert ckpt.confirmed == 3
    assert states[0].marked == 0


def test_checkpointer_adaptive_mode_is_reactive():
    """Without a single rollback the adaptive cadence never comes due:
    a conflict-free cell must pay zero fork overhead."""
    ckpt = ForkCheckpointer({0: _FakeState(rollbacks=0)}, interval=None)
    ckpt.confirmed = 10_000
    assert not ckpt._due()
    # An explicit interval is honored regardless of rollback history.
    armed = ForkCheckpointer({0: _FakeState(rollbacks=0)}, interval=2)
    armed.confirmed = 2
    assert armed._due()


def test_checkpointer_adaptive_interval_tracks_widest_window():
    states = {0: _FakeState(window=1), 1: _FakeState(window=6)}
    ckpt = ForkCheckpointer(states, interval=None)
    # Adaptive cadence = max(MIN_ADAPTIVE_INTERVAL, widest window) = 6.
    for _ in range(6):
        assert not ckpt._due()
        ckpt.confirmed += 1
    assert ckpt._due()
    # In slow-start (window 0) the floor keeps cadence sane.
    slow = ForkCheckpointer({0: _FakeState(window=0)}, interval=None)
    slow.confirmed = MIN_ADAPTIVE_INTERVAL - 1
    assert not slow._due()
    slow.confirmed = MIN_ADAPTIVE_INTERVAL
    assert slow._due()


def test_checkpointer_quiet_captures_back_off_exponentially():
    """Every capture that is never resumed doubles the effective
    cadence; a resume resets it.  Storms stay tight, quiet runs
    converge to (almost) no forks."""
    ckpt = ForkCheckpointer({0: _FakeState(window=0)}, interval=None)
    for quiet, expect in ((0, 2), (1, 4), (3, 16), (10, 2 << 5)):
        ckpt.quiet = quiet
        ckpt.confirmed = expect - 1
        assert not ckpt._due(), f"due early at quiet={quiet}"
        ckpt.confirmed = expect
        assert ckpt._due(), f"not due at quiet={quiet}"


def test_fork_checkpoints_supported_on_this_platform():
    # The suite runs on POSIX; the gate itself must be a plain bool.
    assert fork_checkpoints_supported() is True


# ----------------------------------------------------------------------
# Checkpointed rollback: kill the image, resume, replay the suffix
# ----------------------------------------------------------------------
def _storm(monkeypatch, **kw):
    """An adversarial rollback storm: the coordinator under-promises
    ``safe`` and pins the speculation window open, so eager workers
    conflict on nearly every batched epoch."""
    monkeypatch.setenv(ADVERSARIAL_ENV, "1")
    stats = {}
    summary = run_sharded_cluster(
        "fastiov", 40, hosts=4, seed=11, shards=2,
        arrivals=cluster_arrivals(11, 12.0), sync="optimistic",
        eager_speculation=True, engine_stats=stats, **kw,
    )
    return summary, stats


def _reference(monkeypatch):
    monkeypatch.delenv(ADVERSARIAL_ENV, raising=False)
    return run_sharded_cluster(
        "fastiov", 40, hosts=4, seed=11, shards=1,
        arrivals=cluster_arrivals(11, 12.0), sync="conservative",
    )


def test_checkpoint_kill_and_resume_is_byte_identical(monkeypatch):
    """Fork workers under a rollback storm: conflicts must be absorbed
    by killing the worker image and resuming the checkpoint child —
    zero full replays — and the bytes must match shards=1."""
    reference = _bytes(_reference(monkeypatch))
    summary, stats = _storm(monkeypatch, checkpoint_every=1,
                            worker_context="fork")
    assert _bytes(summary) == reference
    assert stats["sync_rollbacks"] >= 1
    assert stats["sync_checkpoints"] >= 1
    assert stats["sync_checkpoint_resumes"] >= 1
    assert stats["sync_full_replays"] == 0
    assert "sync_replay_distance_hist" in stats
    assert sum(stats["sync_replay_distance_hist"].values()) \
        == stats["sync_checkpoint_resumes"]


def test_checkpoints_disabled_falls_back_to_full_replay(monkeypatch):
    """``checkpoint_every=0`` turns the subsystem off: same storm, same
    bytes, but every rollback replays from t=0."""
    reference = _bytes(_reference(monkeypatch))
    summary, stats = _storm(monkeypatch, checkpoint_every=0,
                            worker_context="fork")
    assert _bytes(summary) == reference
    assert stats["sync_rollbacks"] >= 1
    assert stats["sync_checkpoints"] == 0
    assert stats["sync_checkpoint_resumes"] == 0
    assert stats["sync_full_replays"] == stats["sync_rollbacks"]


def test_spawn_context_workers_fall_back_to_full_replay(monkeypatch):
    """Spawn workers cannot fork CoW checkpoints: the group must detect
    the context, keep the full journal, and replay from t=0 — with the
    exact same bytes as the checkpointed fork run."""
    reference = _bytes(_reference(monkeypatch))
    summary, stats = _storm(monkeypatch, checkpoint_every=1,
                            worker_context="spawn")
    assert _bytes(summary) == reference
    assert stats["sync_rollbacks"] >= 1
    assert stats["sync_checkpoints"] == 0
    assert stats["sync_checkpoint_resumes"] == 0
    assert stats["sync_full_replays"] == stats["sync_rollbacks"]


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_forced_rollback_never_loses_a_teardown_delta(monkeypatch, seed):
    """The journal-truncation property: across repeated checkpoint
    resumes, every committed teardown delta is applied exactly once.
    A dropped delta leaks a VF (pool ends short); a double-applied one
    overfills it; either also shifts placement and breaks identity."""
    monkeypatch.delenv(ADVERSARIAL_ENV, raising=False)
    reference = run_sharded_cluster(
        "fastiov", 40, hosts=2, seed=seed, shards=1,
        arrivals=cluster_arrivals(seed, 10.0), sync="conservative",
    )
    monkeypatch.setenv(ADVERSARIAL_ENV, "1")
    stats = {}
    summary = run_sharded_cluster(
        "fastiov", 40, hosts=2, seed=seed, shards=2,
        arrivals=cluster_arrivals(seed, 10.0), sync="optimistic",
        eager_speculation=True, checkpoint_every=1,
        worker_context="fork", engine_stats=stats,
    )
    assert _bytes(summary) == _bytes(reference)
    # VF recycling really raced the storm, and the pool still closed
    # out exactly full: no delta lost, none applied twice.
    assert summary["free_vfs_total"] == 2 * PAPER_TESTBED.nic_max_vfs
    assert stats["sync_rollbacks"] >= 1
    assert stats["sync_checkpoint_resumes"] >= 1


def test_adversarial_env_does_not_change_bytes_in_process(monkeypatch):
    """The adversarial knob only worsens the *promises*; the committed
    grid is untouched even on the in-process full-replay path."""
    monkeypatch.delenv(ADVERSARIAL_ENV, raising=False)
    reference = run_sharded_cluster(
        "fastiov", 30, hosts=4, seed=5, shards=2, workers=0,
        arrivals=cluster_arrivals(5, 12.0), sync="optimistic",
    )
    monkeypatch.setenv(ADVERSARIAL_ENV, "1")
    stats = {}
    adversarial = run_sharded_cluster(
        "fastiov", 30, hosts=4, seed=5, shards=2, workers=0,
        arrivals=cluster_arrivals(5, 12.0), sync="optimistic",
        engine_stats=stats,
    )
    assert _bytes(adversarial) == _bytes(reference)
    assert stats["sync_rollbacks"] >= 1
