"""Tests for the CLI (__main__) and the EXPERIMENTS.md generator."""

import pathlib

import pytest

from repro.__main__ import main as cli_main
from repro.experiments.report import main as report_main


def test_cli_list(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig11" in out
    assert "fastiov" in out
    assert "vdpa" in out


def test_cli_launch(capsys):
    assert cli_main(["launch", "no-net", "-c", "3"]) == 0
    out = capsys.readouterr().out
    assert "no-net: 3 containers" in out
    assert "mean" in out


def test_cli_run_experiment(capsys):
    assert cli_main(["run", "sec65", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Tinymembench" in out
    assert "paper" in out


def test_cli_run_cluster_flags_and_json_dump(tmp_path, capsys):
    """--hosts/--placement/--shards reshape the experiment and --json
    writes its structured data for the determinism gate to diff."""
    import json

    out = tmp_path / "scale.json"
    assert cli_main([
        "run", "scale", "--quick", "--no-cache", "--hosts", "4",
        "--placement", "round-robin", "--shards", "2",
        "--json", str(out),
    ]) == 0
    text = capsys.readouterr().out
    assert "4 hosts, round-robin placement, 2 shards" in text
    data = json.loads(out.read_text())
    assert data["hosts"] == 4
    assert data["placement"] == "round-robin"
    assert set(data["series"]) == {"vanilla", "fastiov"}


def test_cli_unknown_experiment():
    with pytest.raises(KeyError):
        cli_main(["run", "fig99"])


def test_cli_rejects_unknown_preset():
    with pytest.raises(SystemExit):
        cli_main(["launch", "not-a-preset"])


def test_report_generator_subset(tmp_path):
    out = tmp_path / "EXP.md"
    report_main(["--quick", "--only", "sec65", "--out", str(out)])
    text = out.read_text()
    assert text.startswith("# EXPERIMENTS")
    assert "## sec65" in text
    assert "paper vs measured" in text
    assert "quick mode" in text


def test_repo_experiments_md_exists_and_is_full_scale():
    """The committed EXPERIMENTS.md is the full-scale artifact."""
    path = pathlib.Path(__file__).parent.parent / "EXPERIMENTS.md"
    text = path.read_text()
    assert "quick mode" not in text.splitlines()[2]
    assert "## fig11" in text
    assert "## fig16" in text
