"""Tests for the multi-host cluster layer: placement policies, shared
virtual timeline, VF-pool recycling, and cluster-scale churn."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterChurnDriver,
    LeastLoadedPlacement,
    RoundRobinPlacement,
    make_placement,
    run_cluster_cell,
)
from repro.spec import PAPER_TESTBED


# ----------------------------------------------------------------------
# Placement policies
# ----------------------------------------------------------------------
def test_round_robin_cycles_hosts():
    policy = RoundRobinPlacement()
    loads = [0, 0, 0]
    picks = [policy.pick(loads) for _ in range(7)]
    assert picks == [0, 1, 2, 0, 1, 2, 0]


def test_least_loaded_picks_minimum_with_index_tiebreak():
    policy = LeastLoadedPlacement()
    assert policy.pick([2, 1, 1, 3]) == 1  # tie between 1 and 2 -> lowest
    assert policy.pick([0, 0, 0]) == 0
    assert policy.pick([5, 4, 3]) == 2


def test_make_placement_rejects_unknown_policy():
    assert isinstance(make_placement("round-robin"), RoundRobinPlacement)
    assert isinstance(make_placement("least-loaded"), LeastLoadedPlacement)
    with pytest.raises(KeyError):
        make_placement("random")


# ----------------------------------------------------------------------
# Cluster construction
# ----------------------------------------------------------------------
def test_cluster_hosts_share_one_simulator():
    cluster = Cluster("fastiov", hosts=3)
    assert cluster.size == 3
    assert all(host.sim is cluster.sim for host in cluster.hosts)
    names = [host.name for host in cluster.hosts]
    assert names == ["host0", "host1", "host2"]


def test_cluster_rejects_nonpositive_hosts():
    with pytest.raises(ValueError):
        Cluster("fastiov", hosts=0)


def test_host_jitter_streams_are_stable_under_growth():
    """Adding hosts must not perturb existing hosts' jitter seeds."""
    small = Cluster("fastiov", hosts=2, seed=9)
    large = Cluster("fastiov", hosts=4, seed=9)
    for a, b in zip(small.hosts, large.hosts):
        assert a.seed == b.seed
    # Distinct hosts draw from distinct streams.
    assert len({host.seed for host in large.hosts}) == 4


def test_placement_tracks_load():
    cluster = Cluster("fastiov", hosts=2, placement="least-loaded")
    first = cluster.place()
    second = cluster.place()
    assert {first, second} == {0, 1}
    assert cluster.loads == [1, 1]
    cluster.unplace(first)
    assert cluster.place() == first  # went back to the emptiest host


def test_placement_tracks_per_host_peaks():
    cluster = Cluster("fastiov", hosts=2, placement="round-robin")
    for _ in range(4):
        cluster.place()
    for index in range(2):
        cluster.unplace(index)
    cluster.place()
    # Peaks hold the high-water mark, not the current load.
    assert cluster.loads == [2, 1]
    assert cluster.peak_loads == [2, 2]


# ----------------------------------------------------------------------
# Churn driver
# ----------------------------------------------------------------------
def test_churn_spreads_burst_across_hosts():
    cluster = Cluster("fastiov", hosts=4, seed=1)
    driver = ClusterChurnDriver(cluster)
    driver.submit(80)
    records = driver.run()
    assert len(records) == 80
    assert all(record.startup_time > 0 for record in records)
    # Teardown returned every placement slot.
    assert cluster.loads == [0, 0, 0, 0]
    assert driver.peak_in_flight <= 80


def test_burst_beyond_single_host_vf_pool():
    """A burst larger than one host's VF pool only fits on a cluster."""
    per_host = PAPER_TESTBED.nic_max_vfs
    concurrency = per_host + 64
    hosts = 4
    summary = run_cluster_cell("fastiov", concurrency, hosts=hosts, seed=2)
    assert summary["count"] == concurrency
    assert summary["peak_in_flight"] == concurrency  # burst: all at once
    # Every VF returned to its pool after teardown.
    assert summary["free_vfs_total"] == hosts * per_host


def test_vf_recycling_without_teardown_leaves_vfs_held():
    cluster = Cluster("fastiov", hosts=2, seed=0)
    driver = ClusterChurnDriver(cluster, teardown=False)
    driver.submit(20)
    driver.run()
    assert cluster.free_vf_total() == 2 * PAPER_TESTBED.nic_max_vfs - 20


def test_cluster_cell_is_deterministic_in_seed():
    first = run_cluster_cell("vanilla", 40, hosts=2, seed=11)
    again = run_cluster_cell("vanilla", 40, hosts=2, seed=11)
    other = run_cluster_cell("vanilla", 40, hosts=2, seed=12)
    assert first == again
    assert first != other


def test_fastiov_beats_vanilla_at_cluster_scale():
    vanilla = run_cluster_cell("vanilla", 120, hosts=2, seed=3)
    fastiov = run_cluster_cell("fastiov", 120, hosts=2, seed=3)
    assert fastiov["mean"] < vanilla["mean"]
    assert fastiov["p99"] < vanilla["p99"]


# ----------------------------------------------------------------------
# Scale experiment
# ----------------------------------------------------------------------
def test_scale_experiment_quick_structure():
    from repro.experiments import get_experiment

    result = get_experiment("scale").run(quick=True, use_cache=False)
    data = result.data
    assert data["hosts"] > 1
    series = data["series"]
    assert set(series) == {"vanilla", "fastiov"}
    bursts = [point["concurrency"] for point in series["vanilla"]]
    assert bursts == sorted(bursts)
    for van, fast in zip(series["vanilla"], series["fastiov"]):
        assert van["concurrency"] == fast["concurrency"]
        assert fast["mean"] < van["mean"]
    assert result.comparisons()
    assert "paper" in result.comparison_table()
