"""Tests for the container stack: engine, runtime, CNIs, orchestrator."""

import pytest

from repro.containers.cni.sriov import VfPoolExhausted
from repro.containers.engine import ContainerRequest
from repro.core import PRESETS, SolutionConfig, build_host, get_preset
from repro.hw.memory import MIB
from repro.metrics.timeline import StartupRecord
from repro.oskernel.vfio import VFIO_DRIVER_NAME
from repro.spec import HostSpec

SMALL_SPEC = HostSpec(
    memory_bytes=8 * 1024 * MIB,
    page_size=2 * MIB,
    rom_bytes=8 * MIB,
    image_bytes=32 * MIB,
    nic_ring_bytes=4 * MIB,
    jitter_sigma=0.0,
)
SMALL_VM = 64 * MIB


def small_host(preset, **kwargs):
    return build_host(preset, spec=SMALL_SPEC, vf_count=16, **kwargs)


# ----------------------------------------------------------------------
# presets and config
# ----------------------------------------------------------------------
def test_all_presets_are_well_formed():
    assert len(PRESETS) == 15
    fastiov = get_preset("fastiov")
    assert fastiov.optimization_flags() == {"L": True, "A": True, "S": True,
                                            "D": True}
    for variant, off in (("fastiov-l", "L"), ("fastiov-a", "A"),
                         ("fastiov-s", "S"), ("fastiov-d", "D")):
        flags = get_preset(variant).optimization_flags()
        assert not flags[off]
        assert sum(flags.values()) == 3


def test_unknown_preset_lists_catalog():
    with pytest.raises(KeyError) as excinfo:
        get_preset("nope")
    assert "fastiov" in str(excinfo.value)


def test_config_validation():
    with pytest.raises(ValueError):
        SolutionConfig(name="x", network="veth")
    with pytest.raises(ValueError):
        SolutionConfig(name="x", network="none", lock_decomposition=True)
    with pytest.raises(ValueError):
        SolutionConfig(name="x", prezeroed_fraction=2.0)


def test_prezeroing_presets_have_fractions():
    assert get_preset("pre10").prezeroed_fraction == 0.10
    assert get_preset("pre100").prezeroed_fraction == 1.00


# ----------------------------------------------------------------------
# end-to-end single container per preset
# ----------------------------------------------------------------------
@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_every_preset_starts_one_container(preset):
    host = small_host(preset)
    result = host.launch(1, memory_bytes=SMALL_VM)
    record = result.records[0]
    assert record.failed is None
    assert record.startup_time > 0
    container = host.engine.containers["c0"]
    assert container.microvm is not None
    assert container.microvm.guest.booted


def test_sriov_container_gets_vf_and_dummy_netdev():
    host = small_host("vanilla")
    host.launch(1, memory_bytes=SMALL_VM)
    container = host.engine.containers["c0"]
    vf = container.attachment.vf
    assert vf.assigned_to == "c0"
    assert vf.mac is not None
    assert container.attachment.netdev.nns == "nns-c0"
    assert container.attachment.ip_address.startswith("10.0.")
    assert vf.driver == VFIO_DRIVER_NAME


def test_no_net_container_has_no_attachment():
    host = small_host("no-net")
    host.launch(1, memory_bytes=SMALL_VM)
    container = host.engine.containers["c0"]
    assert not container.attachment.has_network
    assert container.microvm.vf is None


def test_ipvtap_container_uses_software_device():
    host = small_host("ipvtap")
    host.launch(1, memory_bytes=SMALL_VM)
    container = host.engine.containers["c0"]
    assert container.attachment.netdev.kind == "ipvtap"
    assert container.microvm.vf is None
    assert container.microvm.network_ready.triggered


# ----------------------------------------------------------------------
# step accounting
# ----------------------------------------------------------------------
def test_vanilla_records_all_paper_steps():
    host = small_host("vanilla")
    result = host.launch(2, memory_bytes=SMALL_VM)
    for record in result.records:
        for step in ("0-cgroup", "1-dma-ram", "2-virtiofs", "3-dma-image",
                     "4-vfio-dev", "5-vf-driver"):
            assert record.step_time(step) > 0, step
        assert record.vf_related_time() < record.startup_time


def test_fastiov_masks_vf_driver_and_skips_image():
    host = small_host("fastiov")
    result = host.launch(2, memory_bytes=SMALL_VM)
    for record in result.records:
        assert record.step_time("3-dma-image") == 0
        # Async VF init: either unfinished at ready-time (0) or tiny.
        assert record.step_time("5-vf-driver") < record.startup_time


def test_true_vanilla_pays_rebinding():
    host = small_host("true-vanilla")
    result = host.launch(2, memory_bytes=SMALL_VM)
    for record in result.records:
        assert record.step_time("bind-host-driver") > 0
        assert record.step_time("unbind-host-driver") > 0
        assert record.step_time("bind-vfio") > 0
    fixed = small_host("vanilla")
    fixed_result = fixed.launch(2, memory_bytes=SMALL_VM)
    assert (
        result.startup_times().mean
        > fixed_result.startup_times().mean + host.spec.host_netdev_probe_s
    )


# ----------------------------------------------------------------------
# concurrency behaviour
# ----------------------------------------------------------------------
def test_fastiov_beats_vanilla_at_concurrency():
    n = 12
    vanilla = small_host("vanilla").launch(n, memory_bytes=SMALL_VM)
    fastiov = small_host("fastiov").launch(n, memory_bytes=SMALL_VM)
    assert fastiov.startup_times().mean < vanilla.startup_times().mean * 0.8


def test_arrival_spacing_staggers_starts():
    host = small_host("no-net")
    result = host.launch(3, memory_bytes=SMALL_VM, arrival_spacing_s=1.0)
    starts = sorted(record.t_start for record in result.records)
    assert starts == pytest.approx([0.0, 1.0, 2.0])


def test_vf_pool_exhaustion_fails_loudly():
    host = small_host("vanilla")
    host.launch(16, memory_bytes=SMALL_VM)  # consumes all 16 VFs
    from repro.sim.errors import ProcessFailed

    with pytest.raises(ProcessFailed) as excinfo:
        host.launch(1, memory_bytes=SMALL_VM, name_prefix="extra")
    assert isinstance(excinfo.value.cause, VfPoolExhausted)


# ----------------------------------------------------------------------
# teardown & recycling
# ----------------------------------------------------------------------
def test_remove_container_recycles_vf_and_memory():
    host = small_host("vanilla")
    host.launch(1, memory_bytes=SMALL_VM)
    vf = host.engine.containers["c0"].attachment.vf
    allocated_before = host.memory.allocated_bytes

    def removal():
        yield from host.engine.remove_container("c0")

    host.sim.spawn(removal())
    host.sim.run()
    assert vf.assigned_to is None
    assert host.cni.free_vf_count == 16
    assert host.memory.allocated_bytes < allocated_before
    # Relaunch reuses the recycled VF without issue.
    result = host.launch(1, memory_bytes=SMALL_VM, name_prefix="again")
    assert result.records[0].failed is None


def test_recycled_dirty_memory_is_safe_for_next_tenant():
    """End-to-end multi-tenant safety: a container writes secrets, dies,
    and the next tenant (eager or lazy zeroing) never observes them."""
    for preset in ("vanilla", "fastiov"):
        host = small_host(preset)
        host.launch(1, memory_bytes=SMALL_VM)
        vm = host.engine.containers["c0"].microvm

        def write_secret(host=host, vm=vm):
            gpa = vm.alloc_guest_range(4 * MIB, "secret")
            yield from host.kvm.guest_touch_range(
                vm.vm, gpa, 4 * MIB, write=True, tag="c0-secret"
            )
            yield from host.engine.remove_container("c0")

        host.sim.spawn(write_secret())
        host.sim.run()
        # Second tenant boots and touches all its memory: any surviving
        # secret would raise ResidualDataLeak inside the simulation.
        result = host.launch(1, memory_bytes=SMALL_VM, name_prefix="t2-")
        assert result.records[0].failed is None


def test_failed_startup_is_recorded_on_the_record():
    host = small_host("vanilla", seed=3)
    # Sabotage: exhaust guest memory so boot's allocator fails.
    request = ContainerRequest("cX", memory_bytes=host.spec.rom_bytes + 2 * MIB)
    record = StartupRecord("cX")

    def flow():
        yield from host.engine.run_container(request, record)

    host.sim.spawn(flow())
    from repro.sim.errors import ProcessFailed

    with pytest.raises(ProcessFailed):
        host.sim.run()
    assert record.failed is not None


# ----------------------------------------------------------------------
# host telemetry
# ----------------------------------------------------------------------
def test_contention_report_shows_devset_locks():
    host = small_host("vanilla")
    host.launch(4, memory_bytes=SMALL_VM)
    report = host.contention_report()
    devset_keys = [key for key in report if key.startswith("bus:")]
    assert devset_keys, report.keys()
    assert "cgroup-mutex" in report
    assert 0 <= report["cpu-utilization"] <= 1


def test_deterministic_given_seed():
    spec = SMALL_SPEC.derive(jitter_sigma=0.18)  # non-zero: seeds matter

    def run(seed):
        return build_host("fastiov", spec=spec, vf_count=16, seed=seed).launch(
            5, memory_bytes=SMALL_VM
        )

    a, b, c = run(42), run(42), run(43)
    times_a = [record.startup_time for record in a.records]
    times_b = [record.startup_time for record in b.records]
    times_c = [record.startup_time for record in c.records]
    assert times_a == times_b
    assert times_a != times_c
