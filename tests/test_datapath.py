"""Tests for the network data paths and workload plumbing edges."""

import pytest

from repro.core import build_host
from repro.hw.memory import MIB
from repro.spec import HostSpec
from repro.workloads.datapath import download_from_storage, upload_to_storage

SMALL_SPEC = HostSpec(
    memory_bytes=8 * 1024 * MIB,
    rom_bytes=8 * MIB,
    image_bytes=32 * MIB,
    nic_ring_bytes=4 * MIB,
    container_image_bytes=8 * MIB,
    jitter_sigma=0.0,
)
VM = 96 * MIB


def started_container(preset):
    host = build_host(preset, spec=SMALL_SPEC, vf_count=8)
    host.launch(1, memory_bytes=VM)
    container = host.engine.containers["c0"]
    return host, container


def drive(host, generator):
    out = {}

    def flow():
        out["result"] = yield from generator
        out["at"] = host.sim.now

    host.sim.spawn(flow())
    host.sim.run()
    return out


def test_passthrough_download_lands_in_rings_with_correct_tag():
    host, container = started_container("vanilla")

    def flow():
        yield from container.microvm.guest.wait_network_ready()
        tag = yield from download_from_storage(container, host, 10 * MIB,
                                               tag="blob")
        return tag

    out = drive(host, flow())
    assert out["result"] == "blob"
    assert host.nic.dma.bytes_written == 10 * MIB


def test_software_download_charges_host_cpu():
    host, container = started_container("ipvtap")
    cpu_before = host.cpu.total_core_seconds

    def flow():
        yield from container.microvm.guest.wait_network_ready()
        yield from download_from_storage(container, host, 20 * MIB)

    drive(host, flow())
    copies = 20 * MIB / SMALL_SPEC.ipvtap_bytes_per_cpu_s
    assert host.cpu.total_core_seconds - cpu_before >= copies


def test_download_without_network_rejected():
    host, container = started_container("no-net")
    with pytest.raises(RuntimeError):
        list(download_from_storage(container, host, MIB))


def test_download_before_driver_init_rejected():
    """Passthrough downloads need the RX rings the driver allocates."""
    host, container = started_container("fastiov")
    # Do NOT wait for network_ready: rings may not exist yet.
    if getattr(container.microvm, "nic_ring_gpa", None) is not None:
        pytest.skip("driver init already finished in this schedule")
    from repro.sim.errors import ProcessFailed

    def flow():
        yield from download_from_storage(container, host, MIB)

    host.sim.spawn(flow())
    with pytest.raises(ProcessFailed):
        host.sim.run()


def test_download_validates_size():
    host, container = started_container("vanilla")
    with pytest.raises(ValueError):
        list(download_from_storage(container, host, 0))


def test_upload_is_cheap_and_optional():
    host, container = started_container("vanilla")

    def flow():
        yield from container.microvm.guest.wait_network_ready()
        yield from upload_to_storage(container, host, 64 * 1024)
        yield from upload_to_storage(container, host, 0)  # no-op

    out = drive(host, flow())
    assert out["at"] < 2.0


def test_software_buffer_is_reused_across_transfers():
    host, container = started_container("ipvtap")

    def flow():
        yield from container.microvm.guest.wait_network_ready()
        yield from download_from_storage(container, host, 2 * MIB)
        cursor_after_first = container.microvm._alloc_cursor
        yield from download_from_storage(container, host, 2 * MIB)
        assert container.microvm._alloc_cursor == cursor_after_first

    drive(host, flow())


def test_spec_helpers():
    spec = HostSpec()
    assert spec.bytes_over_network_s(25e9 / 8) == pytest.approx(1.0)
    assert spec.bytes_over_network_s(10e9 / 8, gbps=10.0) == pytest.approx(1.0)
    derived = spec.derive(cores=8)
    assert derived.cores == 8
    assert spec.cores == 56  # frozen original untouched
    assert spec.zeroing_cpu_seconds(spec.zeroing_bytes_per_cpu_s) == 1.0
    assert spec.fault_zeroing_cpu_seconds(
        spec.fault_zero_bytes_per_cpu_s
    ) == 1.0
