"""Determinism of experiment results across runs, workers, and cache.

The simulator's jitter streams are CRC-forked from the seed, so a
launch cell's numbers must not depend on *where* it ran: two in-process
runs, a multiprocessing worker, and a cache hit all have to produce
byte-identical ``ExperimentResult.data``.
"""

import json

import pytest

from repro.experiments import get_experiment
from repro.experiments.cache import ResultCache, cell_key
from repro.experiments.parallel import Cell, CellRunner, run_cell


def _data_bytes(result):
    return json.dumps(result.data, sort_keys=True).encode()


def test_same_seed_same_data_in_process():
    first = get_experiment("fig1").run(quick=True, seed=7, use_cache=False)
    second = get_experiment("fig1").run(quick=True, seed=7, use_cache=False)
    assert _data_bytes(first) == _data_bytes(second)


def test_different_seed_changes_data():
    base = get_experiment("fig1").run(quick=True, seed=7, use_cache=False)
    other = get_experiment("fig1").run(quick=True, seed=8, use_cache=False)
    assert _data_bytes(base) != _data_bytes(other)


def test_jobs_1_and_jobs_4_are_byte_identical():
    serial = get_experiment("fig1").run(
        quick=True, seed=3, jobs=1, use_cache=False
    )
    parallel = get_experiment("fig1").run(
        quick=True, seed=3, jobs=4, use_cache=False
    )
    assert _data_bytes(serial) == _data_bytes(parallel)


def test_cache_hit_is_byte_identical(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cell = Cell("vanilla", 10, None, 5)
    fresh = run_cell(cell)

    runner = CellRunner(jobs=1, cache=cache)
    runner.prefetch([cell])
    assert runner.cache_misses == 1

    rerun = CellRunner(jobs=1, cache=cache)
    rerun.prefetch([cell])
    assert rerun.cache_hits == 1 and rerun.cache_misses == 0
    cached = rerun.summary(cell.preset, cell.concurrency, seed=cell.seed)
    assert json.dumps(cached, sort_keys=True) == json.dumps(
        fresh, sort_keys=True
    )


def test_cache_key_depends_on_cell_parameters():
    from repro.spec import PAPER_TESTBED

    base = cell_key(Cell("vanilla", 10, None, 0).as_dict(), PAPER_TESTBED)
    assert base != cell_key(Cell("fastiov", 10, None, 0).as_dict(), PAPER_TESTBED)
    assert base != cell_key(Cell("vanilla", 20, None, 0).as_dict(), PAPER_TESTBED)
    assert base != cell_key(Cell("vanilla", 10, None, 1).as_dict(), PAPER_TESTBED)
    assert base == cell_key(Cell("vanilla", 10, None, 0).as_dict(), PAPER_TESTBED)


def test_scale_jobs_1_and_jobs_2_are_byte_identical():
    """Cluster cells must not depend on which worker ran them."""
    serial = get_experiment("scale").run(
        quick=True, seed=4, jobs=1, use_cache=False
    )
    parallel = get_experiment("scale").run(
        quick=True, seed=4, jobs=2, use_cache=False
    )
    assert _data_bytes(serial) == _data_bytes(parallel)


def test_cluster_cell_cache_hit_is_byte_identical(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cell = Cell("fastiov", 60, None, 5, kind="cluster", hosts=3)
    fresh = run_cell(cell)

    runner = CellRunner(jobs=1, cache=cache)
    runner.prefetch([cell])
    assert runner.cache_misses == 1

    rerun = CellRunner(jobs=1, cache=cache)
    rerun.prefetch([cell])
    assert rerun.cache_hits == 1 and rerun.cache_misses == 0
    cached = rerun.cell_summary(cell)
    assert json.dumps(cached, sort_keys=True) == json.dumps(
        fresh, sort_keys=True
    )


def test_cluster_cache_key_depends_on_kind_and_hosts():
    from repro.spec import PAPER_TESTBED

    launch = cell_key(Cell("vanilla", 10, None, 0).as_dict(), PAPER_TESTBED)
    cluster = cell_key(
        Cell("vanilla", 10, None, 0, kind="cluster", hosts=4).as_dict(),
        PAPER_TESTBED,
    )
    more_hosts = cell_key(
        Cell("vanilla", 10, None, 0, kind="cluster", hosts=8).as_dict(),
        PAPER_TESTBED,
    )
    assert len({launch, cluster, more_hosts}) == 3


def test_cache_key_covers_every_cell_field():
    """Regression guard: no Cell field may be silently dropped from the
    cache key.  A collision across different ``hosts`` (or any other
    semantic field) would serve one cluster's cached summary for
    another's — perturb each field in turn and demand a fresh key."""
    import dataclasses

    from repro.spec import PAPER_TESTBED

    base_cell = Cell("vanilla", 10, None, 0, kind="cluster", hosts=4)
    base = cell_key(base_cell.as_dict(), PAPER_TESTBED)
    perturbed = {
        "preset": "fastiov",
        "concurrency": 11,
        "memory_bytes": 1 << 20,
        "seed": 1,
        "kind": "launch",
        "hosts": 5,
        "placement": "round-robin",
        "shards": 2,
        "rate_per_s": 15.0,
        "sync": "optimistic",
        "checkpoint_every": 2,
        "trace": True,
    }
    # Every declared field must appear here — adding a Cell field
    # without extending this test (and hence the key) fails loudly.
    fields = {f.name for f in dataclasses.fields(Cell)}
    assert fields == set(perturbed), (
        "Cell fields changed; update the perturbation map"
    )
    for name, value in perturbed.items():
        changed = dataclasses.replace(base_cell, **{name: value})
        assert cell_key(changed.as_dict(), PAPER_TESTBED) != base, (
            f"cache key ignores Cell.{name}"
        )


def test_cache_key_hosts_collision_impossible_across_range():
    from repro.spec import PAPER_TESTBED

    keys = {
        cell_key(
            Cell("vanilla", 10, None, 0, kind="cluster", hosts=h).as_dict(),
            PAPER_TESTBED,
        )
        for h in range(1, 65)
    }
    assert len(keys) == 64


def test_corrupt_cache_entry_falls_back_to_fresh_run(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cell = Cell("vanilla", 10, None, 5)
    runner = CellRunner(jobs=1, cache=cache)
    runner.prefetch([cell])
    [path] = list(cache.directory.glob("*.json"))
    path.write_text("{not json")

    rerun = CellRunner(jobs=1, cache=cache)
    rerun.prefetch([cell])
    assert rerun.cache_misses == 1
    fresh = run_cell(cell)
    got = rerun.summary(cell.preset, cell.concurrency, seed=cell.seed)
    assert got == pytest.approx(fresh)
