"""Deeper container-lifecycle integration tests.

Covers paths the main container tests leave thin: repeated start/stop
cycles, teardown of every network type, churn with interleaved
removals, and the engine's failure bookkeeping.
"""

import pytest

from repro.core import build_host
from repro.hw.memory import MIB
from repro.spec import HostSpec

SMALL_SPEC = HostSpec(
    memory_bytes=8 * 1024 * MIB,
    rom_bytes=8 * MIB,
    image_bytes=32 * MIB,
    nic_ring_bytes=4 * MIB,
    container_image_bytes=8 * MIB,
    jitter_sigma=0.0,
)
VM = 96 * MIB


def small_host(preset, **kwargs):
    return build_host(preset, spec=SMALL_SPEC, vf_count=8, **kwargs)


@pytest.mark.parametrize("preset", ["vanilla", "fastiov", "ipvtap", "no-net"])
def test_full_lifecycle_leaves_host_clean(preset):
    """Start -> remove leaves memory, VFs, domains, cgroups pristine."""
    host = small_host(preset)
    host.launch(3, memory_bytes=VM)

    def removal():
        for name in ("c0", "c1", "c2"):
            yield from host.engine.remove_container(name)

    host.sim.spawn(removal())
    host.sim.run()
    assert host.engine.containers == {}
    assert host.iommu.domain_count == 0
    # The shared image page cache may legitimately stay resident.
    cache_bytes = SMALL_SPEC.image_bytes
    assert host.memory.allocated_bytes <= cache_bytes
    if preset in ("vanilla", "fastiov"):
        assert host.cni.free_vf_count == 8
        assert all(vf.assigned_to is None for vf in host.vfs)


def test_many_start_stop_cycles_reuse_the_same_vf():
    host = small_host("fastiov")
    seen_vfs = set()
    for cycle in range(5):
        name_prefix = f"cycle{cycle}-"
        host.launch(1, memory_bytes=VM, name_prefix=name_prefix)
        container = host.engine.containers[f"{name_prefix}0"]
        seen_vfs.add(container.attachment.vf.bdf)

        def removal(name=f"{name_prefix}0"):
            yield from host.engine.remove_container(name)

        host.sim.spawn(removal())
        host.sim.run()
    # The pool is FIFO: with one container at a time and 8 VFs, the
    # cycles walk the pool deterministically.
    assert len(seen_vfs) == 5
    assert host.cni.free_vf_count == 8


def test_interleaved_launch_and_removal():
    """Removals running while other containers start must not corrupt
    pool or memory accounting."""
    host = small_host("vanilla")
    host.launch(4, memory_bytes=VM)

    # Remove two while four more start.
    def removal():
        yield from host.engine.remove_container("c0")
        yield from host.engine.remove_container("c2")

    host.sim.spawn(removal())
    result = host.launch(4, memory_bytes=VM, name_prefix="late-")
    assert all(record.failed is None for record in result.records)
    assert len(host.engine.containers) == 6
    assigned = sum(1 for vf in host.vfs if vf.assigned_to is not None)
    assert assigned == 6


def test_remove_unknown_container_raises():
    host = small_host("no-net")
    with pytest.raises(KeyError):
        list(host.engine.remove_container("ghost"))


def test_guest_boot_verifies_shared_image_for_every_container():
    """All skip-image containers read through one page-cache copy."""
    host = small_host("fastiov")
    host.launch(4, memory_bytes=VM)
    cache = host.mmu.open_cached_file("microvm-image", SMALL_SPEC.image_bytes)
    assert cache.resident_pages > 0
    # Resident cache is bounded by the image size (no per-VM copies).
    assert cache.resident_pages * SMALL_SPEC.page_size <= SMALL_SPEC.image_bytes


def test_storage_and_dram_pools_exist_and_account():
    host = small_host("fastiov")
    host.launch(2, memory_bytes=VM)
    assert host.dram.total_core_seconds > 0  # ROM instant zeroing ran
    assert host.cpu.total_core_seconds > 0
    assert host.storage_link.total_core_seconds == 0  # no apps ran
