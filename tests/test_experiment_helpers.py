"""Tests for experiment plumbing: runs helpers and the base protocol."""

import pytest

from repro.experiments.base import Comparison, Experiment, pct, reduction
from repro.experiments.runs import (
    concurrency_sweep,
    fully_loaded_memory,
    launch_preset,
    main_concurrency,
    memory_sweep,
)
from repro.spec import GIB, PAPER_TESTBED


def test_fully_loaded_memory_fits_the_server():
    spec = PAPER_TESTBED
    for concurrency in (10, 50, 100, 200):
        per_container = fully_loaded_memory(concurrency, spec)
        assert per_container % spec.page_size == 0
        total = concurrency * (per_container + spec.image_bytes)
        assert total <= spec.memory_bytes
    # The low-concurrency cap keeps microVMs realistic.
    assert fully_loaded_memory(2, spec) <= 20 * GIB


def test_sweeps_quick_vs_full():
    assert concurrency_sweep(True) == (10, 50)
    assert concurrency_sweep(False)[-1] == 200
    assert memory_sweep(True)[0] == 512 * 1024 * 1024
    assert len(memory_sweep(False)) == 4
    assert main_concurrency(True) < main_concurrency(False) == 200


def test_launch_preset_returns_host_and_result():
    host, result = launch_preset("no-net", 2)
    assert host.config.name == "no-net"
    assert len(result.records) == 2


def test_reduction_and_pct_helpers():
    assert reduction(10.0, 4.0) == pytest.approx(0.6)
    assert pct(0.657) == "65.7%"
    with pytest.raises(ValueError):
        reduction(0.0, 1.0)


def test_comparison_rows():
    comparison = Comparison("metric", "1.0", "1.1", note="n")
    assert comparison.as_row() == ("metric", "1.0", "1.1", "n")
    assert "metric" in repr(comparison)


def test_base_experiment_is_abstract():
    class Incomplete(Experiment):
        experiment_id = "x"

    with pytest.raises(NotImplementedError):
        Incomplete().run(quick=True)
