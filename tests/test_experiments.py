"""Tests for the experiment harness: every figure/table runs and the
headline shape claims hold at reduced (quick) scale."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, get_experiment, list_experiments

EXPECTED_IDS = {
    "fig1", "fig5", "tab1", "fig11", "fig12", "fig13a", "fig13b",
    "fig13c", "fig14", "sec65", "fig15", "fig16", "impl_rebind",
    # extensions
    "vdpa", "churn", "dataplane", "viommu", "scale",
}


def test_registry_covers_every_paper_artifact():
    assert set(ALL_EXPERIMENTS) == EXPECTED_IDS
    assert len(list_experiments()) == len(EXPECTED_IDS)
    with pytest.raises(KeyError):
        get_experiment("fig99")


@pytest.fixture(scope="module")
def quick_results():
    """Run the cheap experiments once, shared across tests."""
    out = {}
    for exp_id in ("fig1", "tab1", "fig11", "fig12", "fig13a", "fig14",
                   "sec65", "fig5", "impl_rebind"):
        out[exp_id] = get_experiment(exp_id).run(quick=True)
    return out


def test_every_result_renders_and_compares(quick_results):
    for exp_id, result in quick_results.items():
        text = result.render()
        assert text.strip(), exp_id
        comparisons = result.comparisons()
        assert comparisons, exp_id
        table = result.comparison_table()
        assert "paper" in table and "measured" in table


def test_fig1_overhead_grows(quick_results):
    series = quick_results["fig1"].data["series"]
    overheads = [point["overhead"] for point in series]
    assert overheads[-1] > overheads[0] > 0


def test_tab1_vfio_dev_is_the_largest_step(quick_results):
    proportions = quick_results["tab1"].data["proportions"]
    largest = max(proportions, key=lambda step: proportions[step][0])
    assert largest == "4-vfio-dev"
    vf_avg, vf_p99 = quick_results["tab1"].data["vf_related"]
    assert vf_avg > 60
    assert vf_p99 > 70


def test_fig11_ordering_matches_paper(quick_results):
    results = quick_results["fig11"].data["results"]
    means = {preset: r["mean"] for preset, r in results.items()}
    # Fig. 11's qualitative ordering.
    assert means["no-net"] < means["fastiov"] < means["vanilla"]
    assert means["fastiov"] < means["fastiov-s"] < means["fastiov-l"]
    assert means["fastiov"] < means["fastiov-a"] < means["vanilla"]
    assert means["fastiov"] < means["fastiov-d"] < means["vanilla"]
    assert means["pre100"] < means["pre50"] < means["pre10"]
    # Headline: the VF-related overhead almost vanishes.
    vanilla_vf = results["vanilla"]["vf_related_mean"]
    fastiov_vf = results["fastiov"]["vf_related_mean"]
    assert fastiov_vf < vanilla_vf * 0.1


def test_fig12_fastiov_tail_collapses(quick_results):
    data = quick_results["fig12"].data["cdfs"]
    fastiov_p99 = data["fastiov"][-1][0]
    vanilla_p99 = data["vanilla"][-1][0]
    assert fastiov_p99 < vanilla_p99 * 0.45  # paper: -75.4%


def test_fig13a_reduction_grows_with_concurrency(quick_results):
    series = quick_results["fig13a"].data["series"]
    assert series[-1]["reduction"] > series[0]["reduction"]
    assert all(point["reduction"] > 0.3 for point in series)


def test_fig14_fastiov_beats_ipvtap(quick_results):
    data = quick_results["fig14"].data
    assert data["fastiov_mean"] < data["ipvtap_mean"]


def test_sec65_within_one_percent(quick_results):
    data = quick_results["sec65"].data
    assert data["throughput_drop"] < 0.01
    assert data["latency_rise"] < 0.01


def test_fig5_vfio_grows_linearly(quick_results):
    vfio_sorted = quick_results["fig5"].data["vfio_dev_sorted"]
    n = len(vfio_sorted)
    # Middle-half growth is roughly linear: the (3/4)th value is about
    # 3x the (1/4)th (FIFO queue drain).
    assert vfio_sorted[3 * n // 4] > vfio_sorted[n // 4] * 1.8


def test_impl_rebind_is_order_of_magnitude(quick_results):
    data = quick_results["impl_rebind"].data
    assert data["true_vanilla"]["mean"] > data["vanilla"]["mean"] * 3
    assert data["makespan"] > 20  # minutes-scale behaviour at full c


def test_fig13b_memory_sensitivity():
    result = get_experiment("fig13b").run(quick=True)
    series = result.data["series"]
    vanilla_rise = series[-1]["vanilla_mean"] / series[0]["vanilla_mean"]
    fastiov_rise = series[-1]["fastiov_mean"] / series[0]["fastiov_mean"]
    assert vanilla_rise > fastiov_rise
    assert vanilla_rise > 1.3


def test_fig15_reductions_decrease_with_app_length():
    result = get_experiment("fig15").run(quick=True)
    reductions = result.data["avg_reductions"]
    assert reductions["image"] > reductions["inference"]
    assert all(value > 0 for value in reductions.values())


def test_experiments_are_deterministic():
    a = get_experiment("fig11").run(quick=True, seed=5)
    b = get_experiment("fig11").run(quick=True, seed=5)
    assert a.data["results"] == b.data["results"]
