"""Unit tests for PCI topology, SR-IOV NIC, IOMMU, and EPT models."""

import pytest

from repro.hw.ept import EPT, EptFault
from repro.hw.errors import DmaTranslationFault, HardwareError
from repro.hw.iommu import IOMMU
from repro.hw.memory import PhysicalMemory
from repro.hw.nic import SriovNic
from repro.hw.pci import PciDevice, PciTopology, ResetScope

PAGE = 4096


def make_nic(vf_count=8):
    topo = PciTopology()
    topo.add_bus(0x3B)
    nic = SriovNic(
        model="intel-e810",
        max_vfs=256,
        bandwidth_gbps=25,
        topology=topo,
        bus_number=0x3B,
        pf_bdf="3b:00.0",
    )
    vfs = nic.pf.create_vfs(vf_count, topo, 0x3B)
    return topo, nic, vfs


# ----------------------------------------------------------------------
# PCI
# ----------------------------------------------------------------------
def test_topology_attach_and_find():
    topo = PciTopology()
    topo.add_bus(1)
    dev = PciDevice("01:00.0", "thing")
    topo.attach(1, dev)
    assert topo.find("01:00.0") is dev
    assert dev.bus.number == 1


def test_duplicate_bdf_rejected():
    topo = PciTopology()
    topo.add_bus(1)
    topo.attach(1, PciDevice("01:00.0", "a"))
    with pytest.raises(HardwareError):
        topo.attach(1, PciDevice("01:00.0", "b"))


def test_device_cannot_join_two_buses():
    topo = PciTopology()
    topo.add_bus(1)
    topo.add_bus(2)
    dev = PciDevice("01:00.0", "a")
    topo.attach(1, dev)
    with pytest.raises(HardwareError):
        topo.buses[2].attach(dev)


def test_find_missing_device_raises():
    topo = PciTopology()
    with pytest.raises(HardwareError):
        topo.find("ff:00.0")


# ----------------------------------------------------------------------
# SR-IOV NIC
# ----------------------------------------------------------------------
def test_vf_creation_places_vfs_on_pf_bus():
    topo, nic, vfs = make_nic(8)
    assert len(vfs) == 8
    assert all(vf.bus is nic.pf.bus for vf in vfs)
    assert topo.buses[0x3B].device_count == 9  # PF + 8 VFs
    assert len({vf.bdf for vf in vfs}) == 8


def test_vfs_have_bus_level_reset_like_e810():
    _topo, _nic, vfs = make_nic(4)
    assert all(vf.reset_scope is ResetScope.BUS for vf in vfs)


def test_vf_count_limited_by_hardware():
    topo = PciTopology()
    topo.add_bus(0)
    nic = SriovNic("n", 4, 25, topo, 0, "00:00.0")
    with pytest.raises(HardwareError):
        nic.pf.create_vfs(5, topo, 0)


def test_vfs_cannot_be_created_twice():
    topo, nic, _vfs = make_nic(2)
    with pytest.raises(HardwareError):
        nic.pf.create_vfs(2, topo, 0x3B)


def test_configure_vf_sets_parameters():
    _topo, nic, vfs = make_nic(2)
    nic.pf.configure_vf(vfs[0], mac="02:00:00:00:00:01", vlan=100)
    assert vfs[0].mac == "02:00:00:00:00:01"
    assert vfs[0].vlan == 100
    assert vfs[1].mac is None


def test_configure_foreign_vf_rejected():
    _topo1, nic1, _ = make_nic(1)
    topo2 = PciTopology()
    topo2.add_bus(0)
    nic2 = SriovNic("other", 8, 25, topo2, 0, "00:00.0")
    vf2 = nic2.pf.create_vfs(1, topo2, 0)[0]
    with pytest.raises(HardwareError):
        nic1.pf.configure_vf(vf2, mac="02:00:00:00:00:99")


# ----------------------------------------------------------------------
# IOMMU
# ----------------------------------------------------------------------
def test_iommu_map_translate_unmap_cycle():
    mem = PhysicalMemory(64 * PAGE, PAGE)
    region = mem.allocate(2 * PAGE, owner="vm0")
    for page in region.pages:
        page.pin()
    iommu = IOMMU()
    domain = iommu.create_domain("vm0")
    for i, page in enumerate(region.pages):
        domain.map_page(i * PAGE, page)
    page, offset = domain.translate(PAGE + 123)
    assert page is region.pages[1]
    assert offset == 123
    assert domain.mapped_bytes == 2 * PAGE
    domain.unmap_page(0)
    assert not domain.is_mapped(0)
    assert domain.is_mapped(PAGE)


def test_iommu_requires_pinned_pages():
    mem = PhysicalMemory(64 * PAGE, PAGE)
    region = mem.allocate(PAGE, owner="vm0")
    domain = IOMMU().create_domain("vm0")
    with pytest.raises(HardwareError):
        domain.map_page(0, region.pages[0])


def test_iommu_unmapped_access_is_hard_fault():
    domain = IOMMU().create_domain("vm0")
    with pytest.raises(DmaTranslationFault):
        domain.translate(0x1000)


def test_iommu_rejects_double_map_and_misalignment():
    mem = PhysicalMemory(64 * PAGE, PAGE)
    region = mem.allocate(PAGE, owner="vm0")
    region.pages[0].pin()
    domain = IOMMU().create_domain("vm0")
    domain.map_page(0, region.pages[0])
    with pytest.raises(HardwareError):
        domain.map_page(0, region.pages[0])
    with pytest.raises(HardwareError):
        domain.map_page(PAGE + 1, region.pages[0])


def test_iommu_domain_lifecycle():
    iommu = IOMMU()
    iommu.create_domain("a")
    with pytest.raises(HardwareError):
        iommu.create_domain("a")
    iommu.destroy_domain("a")
    with pytest.raises(HardwareError):
        iommu.destroy_domain("a")


def test_iommu_destroy_with_live_mappings_raises():
    mem = PhysicalMemory(64 * PAGE, PAGE)
    region = mem.allocate(PAGE, owner="vm0")
    region.pages[0].pin()
    iommu = IOMMU()
    domain = iommu.create_domain("vm0")
    domain.map_page(0, region.pages[0])
    with pytest.raises(HardwareError):
        iommu.destroy_domain("vm0")


# ----------------------------------------------------------------------
# DMA engine
# ----------------------------------------------------------------------
def make_mapped_domain(npages=4):
    mem = PhysicalMemory(64 * PAGE, PAGE)
    region = mem.allocate(npages * PAGE, owner="vm0")
    domain = IOMMU().create_domain("vm0")
    for i, page in enumerate(region.pages):
        page.pin()
        domain.map_page(i * PAGE, page)
    return region, domain


def test_dma_write_marks_pages_with_writer_tag():
    _topo, nic, _vfs = make_nic(1)
    region, domain = make_mapped_domain()
    pages = nic.dma.write(domain, 0, 2 * PAGE + 100, writer_tag="nic-rx")
    assert len(pages) == 3
    assert all(p.content_tag == "nic-rx" for p in pages)
    assert nic.dma.bytes_written == 2 * PAGE + 100


def test_dma_to_unmapped_iova_faults():
    _topo, nic, _vfs = make_nic(1)
    _region, domain = make_mapped_domain(npages=2)
    with pytest.raises(DmaTranslationFault):
        nic.dma.write(domain, PAGE, 2 * PAGE, writer_tag="nic-rx")


def test_dma_read_of_residual_page_is_a_leak():
    from repro.hw.errors import ResidualDataLeak

    _topo, nic, _vfs = make_nic(1)
    _region, domain = make_mapped_domain(npages=1)
    with pytest.raises(ResidualDataLeak):
        nic.dma.read(domain, 0, PAGE, reader_tag="nic-tx")


def test_dma_rejects_nonpositive_length():
    _topo, nic, _vfs = make_nic(1)
    _region, domain = make_mapped_domain(npages=1)
    with pytest.raises(ValueError):
        nic.dma.write(domain, 0, 0, writer_tag="x")


# ----------------------------------------------------------------------
# EPT
# ----------------------------------------------------------------------
def test_ept_miss_faults_and_counts():
    ept = EPT("vm0", PAGE)
    with pytest.raises(EptFault) as excinfo:
        ept.translate(PAGE + 5)
    assert excinfo.value.gpa == PAGE
    assert ept.fault_count == 1


def test_ept_insert_then_translate():
    mem = PhysicalMemory(64 * PAGE, PAGE)
    region = mem.allocate(PAGE, owner="vm0")
    ept = EPT("vm0", PAGE)
    ept.insert(0, region.pages[0])
    page, offset = ept.translate(42)
    assert page is region.pages[0]
    assert offset == 42
    assert ept.fault_count == 0


def test_ept_duplicate_insert_and_bad_size_rejected():
    mem = PhysicalMemory(64 * PAGE, PAGE)
    region = mem.allocate(PAGE, owner="vm0")
    ept = EPT("vm0", PAGE)
    ept.insert(0, region.pages[0])
    with pytest.raises(HardwareError):
        ept.insert(0, region.pages[0])
    bad_ept = EPT("vm1", 2 * PAGE)
    with pytest.raises(HardwareError):
        bad_ept.insert(0, region.pages[0])


def test_ept_invalidate():
    mem = PhysicalMemory(64 * PAGE, PAGE)
    region = mem.allocate(PAGE, owner="vm0")
    ept = EPT("vm0", PAGE)
    ept.insert(0, region.pages[0])
    ept.invalidate(0)
    assert not ept.has_entry(0)
    with pytest.raises(HardwareError):
        ept.invalidate(0)


def test_ept_fault_fires_once_per_page_when_serviced():
    """The §6.5 claim's mechanism: one interception per page, ever."""
    mem = PhysicalMemory(64 * PAGE, PAGE)
    region = mem.allocate(2 * PAGE, owner="vm0")
    ept = EPT("vm0", PAGE)
    for gpa in (0, 100, PAGE, PAGE + 1, 300, PAGE * 2 - 1):
        try:
            ept.translate(gpa)
        except EptFault as fault:
            ept.insert(fault.gpa, region.pages[fault.gpa // PAGE])
    assert ept.fault_count == 2
