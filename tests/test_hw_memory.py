"""Unit tests for the physical-memory model."""

import pytest

from repro.hw.errors import HardwareError, OutOfMemory, ResidualDataLeak
from repro.hw.memory import (
    HUGE_PAGE_SIZE,
    KIB,
    MIB,
    Page,
    PageContent,
    PhysicalMemory,
)

PAGE = 4 * KIB


def make_mem(total=1 * MIB, page_size=PAGE):
    return PhysicalMemory(total, page_size)


# ----------------------------------------------------------------------
# Page state machine
# ----------------------------------------------------------------------
def test_new_page_is_residual_and_unreadable():
    page = Page(0, PAGE)
    assert page.is_residual
    with pytest.raises(ResidualDataLeak):
        page.read("guest-0")


def test_zeroed_page_reads_clean():
    page = Page(0, PAGE)
    page.zero()
    assert page.is_zeroed
    assert page.read("guest-0") is None


def test_written_page_returns_writer_tag():
    page = Page(0, PAGE)
    page.write("virtiofs")
    assert page.read("guest-0") == "virtiofs"
    assert not page.is_residual


def test_pin_unpin_refcounting():
    page = Page(0, PAGE)
    page.pin()
    page.pin()
    assert page.pin_count == 2
    page.unpin()
    assert page.pinned
    page.unpin()
    assert not page.pinned
    with pytest.raises(HardwareError):
        page.unpin()


def test_residual_leak_names_previous_owner():
    page = Page(0x1000, PAGE, PageContent.RESIDUAL, content_tag="tenant-a")
    with pytest.raises(ResidualDataLeak) as excinfo:
        page.read("tenant-b")
    assert "tenant-a" in str(excinfo.value)
    assert "tenant-b" in str(excinfo.value)


# ----------------------------------------------------------------------
# Allocator basics
# ----------------------------------------------------------------------
def test_allocate_rounds_up_to_page_multiple():
    mem = make_mem()
    region = mem.allocate(PAGE + 1, owner="vm0")
    assert region.size_bytes == 2 * PAGE
    assert region.page_count == 2


def test_allocate_rejects_nonpositive():
    mem = make_mem()
    with pytest.raises(ValueError):
        mem.allocate(0, owner="vm0")


def test_fresh_memory_allocates_in_one_batch():
    mem = make_mem()
    region = mem.allocate(16 * PAGE, owner="vm0")
    assert region.batch_count == 1


def test_out_of_memory():
    mem = make_mem(total=4 * PAGE)
    mem.allocate(3 * PAGE, owner="a")
    with pytest.raises(OutOfMemory):
        mem.allocate(2 * PAGE, owner="b")


def test_accounting_allocate_free_roundtrip():
    mem = make_mem()
    region = mem.allocate(10 * PAGE, owner="vm0")
    assert mem.allocated_bytes == 10 * PAGE
    assert mem.free_bytes == mem.total_bytes - 10 * PAGE
    mem.free(region)
    assert mem.allocated_bytes == 0
    assert mem.free_bytes == mem.total_bytes


def test_double_free_raises():
    mem = make_mem()
    region = mem.allocate(PAGE, owner="vm0")
    mem.free(region)
    with pytest.raises(HardwareError):
        mem.free(region)


def test_freeing_pinned_page_raises():
    mem = make_mem()
    region = mem.allocate(PAGE, owner="vm0")
    region.pages[0].pin()
    with pytest.raises(HardwareError):
        mem.free(region)
    region.pages[0].unpin()
    mem.free(region)


def test_page_at_finds_allocated_frame():
    mem = make_mem()
    region = mem.allocate(2 * PAGE, owner="vm0")
    page = region.pages[1]
    assert mem.page_at(page.hpa) is page
    assert mem.page_at(page.hpa + 17) is page
    with pytest.raises(HardwareError):
        mem.page_at(mem.total_bytes - 1)


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        PhysicalMemory(PAGE + 1, PAGE)
    with pytest.raises(ValueError):
        PhysicalMemory(0, PAGE)


# ----------------------------------------------------------------------
# Recycling: dirty memory is the default
# ----------------------------------------------------------------------
def test_recycled_unzeroed_pages_carry_previous_tenant_data():
    mem = make_mem()
    victim = mem.allocate(4 * PAGE, owner="tenant-a")
    for page in victim.pages:
        page.write("tenant-a-secret")
    mem.free(victim)
    attacker = mem.allocate(4 * PAGE, owner="tenant-b")
    for page in attacker.pages:
        assert page.is_residual
        with pytest.raises(ResidualDataLeak):
            page.read("tenant-b")


def test_zeroed_then_freed_pages_come_back_clean():
    mem = make_mem()
    region = mem.allocate(2 * PAGE, owner="a")
    for page in region.pages:
        page.zero()
    mem.free(region)
    fresh = mem.allocate(2 * PAGE, owner="b")
    for page in fresh.pages:
        assert not page.is_residual


# ----------------------------------------------------------------------
# Coalescing and fragmentation
# ----------------------------------------------------------------------
def test_free_coalesces_adjacent_extents():
    mem = make_mem()
    a = mem.allocate(4 * PAGE, owner="a")
    b = mem.allocate(4 * PAGE, owner="b")
    mem.free(a)
    mem.free(b)
    assert mem.free_extent_count == 1
    big = mem.allocate(mem.total_bytes, owner="c")
    assert big.batch_count == 1


def test_fragmentation_increases_batch_count():
    mem = make_mem(total=64 * PAGE)
    mem.fragment(max_run_bytes=4 * PAGE)
    region = mem.allocate(16 * PAGE, owner="vm0")
    assert region.batch_count == 4


def test_fragmentation_rejects_bad_run_size():
    mem = make_mem()
    with pytest.raises(ValueError):
        mem.fragment(max_run_bytes=3)


def test_hugepages_reduce_batch_and_page_counts():
    """The P2 mitigation: hugepages mean far fewer retrieval units."""
    small = PhysicalMemory(512 * MIB, 4 * KIB)
    huge = PhysicalMemory(512 * MIB, HUGE_PAGE_SIZE)
    r_small = small.allocate(512 * MIB, owner="vm")
    r_huge = huge.allocate(512 * MIB, owner="vm")
    assert r_small.page_count == 131072
    assert r_huge.page_count == 256
